"""Deterministic batched/parallel dispatch of multi-query waves.

The paper's MQO strategies (Algorithms 1–2) are defined over a *set* of
queries; nothing in them requires serial dispatch except that pseudo-labels
must land before the boosting rounds that read them.  This module exploits
that: a query list partitions into dependency-respecting **waves** — all of
a plain or pruned run is one wave; each boosting round is a wave whose
pseudo-label writes form the barrier — and each wave dispatches through a
:class:`QueryScheduler` in batches of up to ``max_batch_size`` queries over
``max_concurrency`` workers.

Two dispatch modes cover the two deployment realities:

``"simulated"`` (default, deterministic)
    Queries execute **in canonical order** — the exact order, LLM-call
    sequence, RNG draws, ledger charges, checkpoint flushes and observer
    spans of a serial run, making every artifact bit-identical to serial
    execution.  Concurrency is accounted *virtually*: each query's simulated
    latency (measured on the engine's ``SimulatedClock``) is assigned to the
    next-free of ``max_concurrency`` virtual workers, and the wave's
    overlapped makespan is reported alongside the serial sum.  This is how a
    deterministic run demonstrates (and tests assert) the throughput win of
    batching without sacrificing replay-exactness.

``"threads"``
    Real concurrency for real clients: prompt construction and the LLM call
    of each query run on a thread pool (phase 1), then records are
    finalized — ledger charges, parsing, degradation, spans, checkpoint
    appends — serially **in canonical order** (phase 2).  Records, token
    ledgers and checkpoints match serial execution whenever the client's
    responses are per-prompt deterministic; wall-clock-dependent internals
    (circuit-breaker timelines, usage interleavings) are totals-equal but
    not sequence-equal.  Budget-guarded waves contain per-query decisions
    that read the ledger mid-wave, so they degrade to in-order dispatch
    automatically.

Orthogonal to the mode, the **dispatch plan** picks the ordering model:

``"wave"`` (default)
    Every wave is a hard barrier — the historical behavior.

``"dag"``
    Dependency-driven readiness (see ``repro.runtime.readiness``): each
    :class:`WorkItem` may declare the exact pseudo-labels it ``reads``, and
    becomes dispatchable the moment those labels settle rather than when
    the whole previous wave drains.  Simulated dispatch stays bit-identical
    to the wave plan (execution order is unchanged; only the *virtual*
    packing honors dependencies, so overlap telemetry can exceed a single
    wave's span), while threads-mode boosting routes to the pipelined
    executor whose peak in-flight calls can exceed ``max_concurrency``.

The scheduler reports per-wave telemetry through the engine's observer
(``on_wave_start`` / ``on_wave_end``) as **metrics only** — emitting wave
spans would break the bit-identical trace contract of simulated dispatch.
See ``docs/scheduling.md`` for the full determinism contract.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable

from repro.llm.reliability import TransientLLMError
from repro.mqo.prefix_sharing import PrefixPlan, plan_prefix_batches
from repro.runtime.results import QueryRecord

if TYPE_CHECKING:
    from repro.runtime.engine import MultiQueryEngine

DISPATCH_MODES = ("simulated", "threads")
DISPATCH_PLANS = ("wave", "dag")


class WorkerCrashError(RuntimeError):
    """A dispatch worker "died" mid-wave (chaos-injected).

    Deliberately *not* a :class:`~repro.llm.reliability.TransientLLMError`:
    a crashed worker is a scheduler-level loss, not a provider error, and
    the merge phase recovers it by re-executing the item serially rather
    than by retry/degradation.
    """


@dataclass(frozen=True)
class WorkItem:
    """One query of a wave, as the engine/strategies hand it to dispatch.

    ``cached`` carries a checkpoint record to replay instead of executing.
    ``compress`` asks the engine to squeeze the neighbor prompt through its
    :class:`~repro.mqo.compression.PromptCompressor` before the call (a
    no-op on engines without one, and on zero-shot items).
    ``decide_include`` defers the include/prune decision to execution time
    (the budget guard's sequential rationing); its presence forces in-order
    dispatch.  ``on_failure`` follows
    :meth:`~repro.runtime.engine.MultiQueryEngine.execute_query`; when it is
    ``"raise"``, a transient failure defers the query (``on_defer`` fires,
    the node lands in :attr:`WaveOutcome.deferred`) instead of propagating.
    ``after_execute`` runs in canonical order after each fresh record — the
    checkpoint-append hook.  ``reads`` declares the exact set of producer
    nodes whose settled pseudo-labels this query's prompt/candidacy
    depends on (the selector's label support intersected with prior
    producers); ``None`` means "unknown / everything", which the DAG
    dispatch plan treats as a full barrier.  The wave plan ignores it.
    """

    node: int
    include_neighbors: bool = True
    compress: bool = False
    round_index: int | None = None
    on_failure: str | None = None
    cached: QueryRecord | None = None
    decide_include: Callable[[], bool] | None = None
    on_defer: Callable[[], None] | None = None
    after_execute: Callable[[QueryRecord], None] | None = None
    reads: frozenset[int] | None = None


@dataclass(frozen=True)
class WaveStats:
    """Telemetry of one dispatched wave.

    ``prefix_prompt_tokens``/``shared_prompt_tokens`` carry the wave's
    prefix-sharing plan (:mod:`repro.mqo.prefix_sharing`): the prompt tokens
    the planner examined and how many of them a prompt cache serves from a
    batch-mate's prefix.  Both stay 0 on unplanned waves.
    """

    wave_index: int
    num_queries: int
    num_replayed: int
    num_deferred: int
    num_batches: int
    serial_seconds: float
    overlapped_seconds: float
    prefix_prompt_tokens: int = 0
    shared_prompt_tokens: int = 0

    @property
    def speedup(self) -> float:
        """Serial-over-overlapped latency ratio (1.0 when latency is zero)."""
        if self.overlapped_seconds <= 0.0:
            return 1.0
        return self.serial_seconds / self.overlapped_seconds


@dataclass(frozen=True)
class WaveOutcome:
    """Dispatch result: records in canonical order plus deferral bookkeeping."""

    records: list[QueryRecord]
    deferred: list[int]
    stats: WaveStats


@dataclass
class SchedulerReport:
    """Accumulated wave telemetry across one scheduler's lifetime."""

    waves: list[WaveStats] = field(default_factory=list)

    @property
    def num_waves(self) -> int:
        return len(self.waves)

    @property
    def num_batches(self) -> int:
        return sum(w.num_batches for w in self.waves)

    @property
    def num_queries(self) -> int:
        return sum(w.num_queries for w in self.waves)

    @property
    def prefix_prompt_tokens(self) -> int:
        return sum(w.prefix_prompt_tokens for w in self.waves)

    @property
    def shared_prompt_tokens(self) -> int:
        return sum(w.shared_prompt_tokens for w in self.waves)

    @property
    def serial_seconds(self) -> float:
        return sum(w.serial_seconds for w in self.waves)

    @property
    def overlapped_seconds(self) -> float:
        return sum(w.overlapped_seconds for w in self.waves)

    @property
    def speedup(self) -> float:
        if self.overlapped_seconds <= 0.0:
            return 1.0
        return self.serial_seconds / self.overlapped_seconds


def _chunks(items: list, size: int | None) -> list[list]:
    if not items:
        return []
    if size is None or size >= len(items):
        return [items]
    return [items[i : i + size] for i in range(0, len(items), size)]


class QueryScheduler:
    """Wave dispatcher with batching and (virtual or real) concurrency.

    Parameters
    ----------
    max_batch_size:
        Upper bound on queries per dispatched batch; batches of a wave run
        one after another (the batch is the API-request granularity).
        ``None`` treats the whole wave as one batch.
    max_concurrency:
        Worker count — virtual workers overlapping simulated latency in
        ``"simulated"`` mode, real threads in ``"threads"`` mode.
    mode:
        One of :data:`DISPATCH_MODES`; see the module docstring.
    dispatch:
        One of :data:`DISPATCH_PLANS` — ``"wave"`` barriers (default) or
        ``"dag"`` dependency-driven readiness.  Under ``"dag"`` the
        scheduler keeps a :class:`~repro.runtime.readiness.ReadinessDAG`
        ledger of every dispatch/settle (``self.dag``), virtual workers
        persist across waves, and items with declared ``reads`` start as
        soon as those labels settle.
    fault_injector:
        Optional chaos hook (see :class:`repro.runtime.chaos.
        SchedulerFaultInjector`) consulted before each threads-mode phase-1
        item with ``before_item(wave_index, item_index)``.  It may sleep (a
        worker stall) or raise :class:`WorkerCrashError` (the worker dies
        *before* issuing the LLM call); crashed items are recovered by
        serial re-execution in the merge phase, so no LLM call is ever
        duplicated.  Ignored by simulated dispatch, which has no workers to
        kill.
    prefix_sharing:
        When true, every dependency-free wave is first run through the
        prefix-sharing planner (:func:`repro.mqo.prefix_sharing.
        plan_prefix_batches`): prompts are previewed span-free, batches are
        formed by longest-common-prefix grouping, and the shared prefix
        tokens are credited to the engine ledger as a prompt-cache discount.
        Planning is an **accounting overlay** — execution order, LLM calls,
        records, spans and gross ledger charges are byte-identical to an
        unplanned wave; only batch composition (threads mode), the overlap
        telemetry, the ``shared_prompt_tokens`` stats and the ledger credits
        change.  Budget-guard waves (items with ``decide_include``) skip
        planning: their prompts are decided mid-wave, so no preview exists.
        The most recent plan is exposed as :attr:`last_plan` (``None`` on
        unplanned waves) for callers that account per-request credits, e.g.
        the serving layer's per-tenant books.
    """

    def __init__(
        self,
        max_batch_size: int | None = None,
        max_concurrency: int = 1,
        mode: str = "simulated",
        fault_injector: object | None = None,
        dispatch: str = "wave",
        prefix_sharing: bool = False,
    ):
        if max_batch_size is not None and max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1 or None")
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if mode not in DISPATCH_MODES:
            raise ValueError(f"mode must be one of {DISPATCH_MODES}, got {mode!r}")
        if dispatch not in DISPATCH_PLANS:
            raise ValueError(f"dispatch must be one of {DISPATCH_PLANS}, got {dispatch!r}")
        self.max_batch_size = max_batch_size
        self.max_concurrency = max_concurrency
        self.mode = mode
        self.dispatch = dispatch
        self.fault_injector = fault_injector
        self.prefix_sharing = prefix_sharing
        self.last_plan: PrefixPlan | None = None
        self.report = SchedulerReport()
        self._next_wave = 0
        self.dag = None
        # Virtual continuous-batching state for the simulated DAG plan: C
        # persistent worker timelines, per-producer settle times, and the
        # high-water makespan that barrier items wait for.
        self._virtual_workers: list[float] = []
        self._virtual_finish: dict[int, float] = {}
        self._virtual_makespan = 0.0
        if dispatch == "dag":
            from repro.runtime.readiness import ReadinessDAG  # avoid import cycle

            self.dag = ReadinessDAG()
            self._virtual_workers = [0.0] * max_concurrency

    # ------------------------------------------------------------------ waves

    def run_wave(self, engine: "MultiQueryEngine", items: list[WorkItem]) -> WaveOutcome:
        """Dispatch one dependency-free wave and merge it canonically.

        ``items`` is the canonical order: the records list of the outcome
        lines up with it exactly (minus deferred queries), replays included.
        """
        for item in items:
            if item.on_failure not in (None, "degrade", "raise"):
                raise ValueError(f"bad on_failure {item.on_failure!r} for node {item.node}")
        wave_index = self._next_wave
        self._next_wave += 1
        fresh_items = [item for item in items if item.cached is None]
        num_batches = len(_chunks(list(range(len(fresh_items))), self.max_batch_size))
        ordered_only = any(item.decide_include is not None for item in items)
        plan = None
        if self.prefix_sharing and fresh_items and not ordered_only:
            # Span-free prompt preview: no observer events, no RNG state, no
            # ledger traffic — planning leaves every artifact byte-identical.
            prompts = [
                engine.preview_prompt(
                    item.node,
                    include_neighbors=item.include_neighbors,
                    compress=item.compress,
                )
                for item in fresh_items
            ]
            plan = plan_prefix_batches(
                prompts,
                max_batch_size=self.max_batch_size,
                tokenizer=engine.llm.tokenizer,
            )
            num_batches = plan.num_batches
        self.last_plan = plan
        if engine.observer is not None:
            engine.observer.on_wave_start(wave_index, len(items), num_batches)
        if self.mode == "threads" and not ordered_only:
            outcome = self._dispatch_threads(engine, items, wave_index, num_batches, plan)
        else:
            outcome = self._dispatch_ordered(engine, items, wave_index, num_batches, plan)
        if plan is not None:
            # Deferred queries never reached the LLM, so their planned share
            # is not realized; credit only what actually executed.
            deferred_set = set(outcome.deferred)
            shared = sum(
                plan.shared_by_prompt[i]
                for i, item in enumerate(fresh_items)
                if item.node not in deferred_set
            )
            if engine.ledger is not None and shared:
                engine.ledger.credit_shared(shared)
            outcome = WaveOutcome(
                records=outcome.records,
                deferred=outcome.deferred,
                stats=replace(
                    outcome.stats,
                    prefix_prompt_tokens=plan.report.total_tokens,
                    shared_prompt_tokens=shared,
                ),
            )
            if engine.observer is not None:
                engine.observer.on_prefix_plan(
                    wave_index, plan.report.total_tokens, shared, plan.num_batches
                )
        self.report.waves.append(outcome.stats)
        if engine.observer is not None:
            stats = outcome.stats
            engine.observer.on_wave_end(
                stats.wave_index,
                stats.num_queries,
                stats.num_batches,
                stats.serial_seconds,
                stats.overlapped_seconds,
            )
        return outcome

    # ------------------------------------------------- simulated (canonical)

    def _dispatch_ordered(
        self,
        engine: "MultiQueryEngine",
        items: list[WorkItem],
        wave_index: int,
        num_batches: int,
        plan: PrefixPlan | None = None,
    ) -> WaveOutcome:
        """Canonical-order execution with virtual-worker overlap accounting.

        Bit-identical to a serial run by construction: every side effect
        (LLM call, RNG draw, ledger charge, span, checkpoint flush) happens
        in exactly the order the serial loop would produce it.
        """
        clock = engine.clock
        records: list[QueryRecord] = []
        deferred: list[int] = []
        # (item, virtual latency, produced record or None-when-deferred)
        timeline: list[tuple[WorkItem, float, QueryRecord | None]] = []
        replayed_nodes: list[int] = []
        for item in items:
            if item.cached is not None:
                engine.observe_replay(item.cached)
                records.append(item.cached)
                replayed_nodes.append(item.node)
                continue
            include = (
                item.decide_include() if item.decide_include is not None else item.include_neighbors
            )
            started = clock.now if clock is not None else 0.0
            try:
                record = engine.execute_query(
                    item.node,
                    include_neighbors=include,
                    round_index=item.round_index,
                    on_failure=item.on_failure,
                    compress=item.compress,
                )
            except TransientLLMError:
                if item.on_failure != "raise":
                    raise
                timeline.append((item, (clock.now - started) if clock is not None else 0.0, None))
                deferred.append(item.node)
                if item.on_defer is not None:
                    item.on_defer()
                continue
            timeline.append((item, (clock.now - started) if clock is not None else 0.0, record))
            records.append(record)
            if item.after_execute is not None:
                item.after_execute(record)
        if self.dispatch == "dag":
            serial_seconds, overlapped_seconds = self._dag_pack(
                timeline, replayed_nodes, wave_index
            )
        else:
            serial_seconds, overlapped_seconds = self._overlap(
                [latency for _, latency, _ in timeline],
                groups=plan.batches if plan is not None else None,
            )
        replayed = len(replayed_nodes)
        stats = WaveStats(
            wave_index=wave_index,
            num_queries=len(items),
            num_replayed=replayed,
            num_deferred=len(deferred),
            num_batches=num_batches,
            serial_seconds=serial_seconds,
            overlapped_seconds=overlapped_seconds,
        )
        return WaveOutcome(records=records, deferred=deferred, stats=stats)

    def _overlap(
        self, latencies: list[float], groups: tuple[tuple[int, ...], ...] | None = None
    ) -> tuple[float, float]:
        """Virtual makespan of the measured latencies under this config.

        Queries are assigned in canonical order to the next-free of
        ``max_concurrency`` virtual workers, batch by batch (a batch
        barrier models one API request round per batch).  Deterministic:
        no heuristic packing, no wall clock.  ``groups`` (index tuples from
        a prefix-sharing plan) overrides the canonical-order chunking with
        the planner's batch composition — accounting only, execution order
        is untouched.
        """
        serial = sum(latencies)
        if groups is not None:
            batches = [[latencies[i] for i in group] for group in groups]
        else:
            batches = _chunks(latencies, self.max_batch_size)
        overlapped = 0.0
        for batch in batches:
            workers = [0.0] * min(self.max_concurrency, len(batch))
            for latency in batch:
                slot = workers.index(min(workers))
                workers[slot] += latency
            overlapped += max(workers, default=0.0)
        return serial, overlapped

    def _dag_pack(
        self,
        timeline: list[tuple[WorkItem, float, QueryRecord | None]],
        replayed_nodes: list[int],
        wave_index: int,
    ) -> tuple[float, float]:
        """Virtual dependency-aware packing for the simulated DAG plan.

        Execution already happened in canonical order (so every artifact is
        bit-identical to the wave plan); only the *accounting* changes: the
        ``max_concurrency`` virtual workers persist across waves, and each
        item starts at ``max(worker free, its reads' settle times)`` instead
        of behind a wave/batch barrier.  Items with ``reads=None`` (unknown
        dependencies — relaxation rounds, re-enqueued deferrals, serve
        admissions, budget-guard waves) wait for everything dispatched so
        far, i.e. the pre-wave makespan.  Every dispatch and settle is
        recorded into ``self.dag``.
        """
        base = self._virtual_makespan
        # Same-wave members are never legitimate dependencies (canonically a
        # round's labels publish only after the whole round), so reads
        # resolve against the pre-wave producer snapshot.
        producers = dict(self._virtual_finish)
        for node in replayed_nodes:
            # Replays settle instantly at the wave's admission point.
            self._virtual_finish[int(node)] = base
            producers[int(node)] = base
            if self.dag is not None:
                self.dag.record_dispatch(
                    int(node),
                    wave_index,
                    frozenset(),
                    ready_at=base,
                    dispatched_at=base,
                    blocked_by=None,
                    replayed=True,
                )
                self.dag.record_settle(int(node), base)
        serial = 0.0
        settles: list[tuple[int, float]] = []
        wave_end = base
        for item, latency, record in timeline:
            serial += latency
            if item.reads is None:
                reads: frozenset[int] = frozenset()
                ready, blocked_by, barrier = base, None, True
            else:
                reads = frozenset(int(p) for p in item.reads if int(p) in producers)
                ready, blocked_by, barrier = 0.0, None, False
                for p in sorted(reads):
                    if producers[p] > ready:
                        ready, blocked_by = producers[p], p
            slot = min(
                range(len(self._virtual_workers)),
                key=lambda s: max(self._virtual_workers[s], ready),
            )
            start = max(self._virtual_workers[slot], ready)
            finish = start + latency
            self._virtual_workers[slot] = finish
            wave_end = max(wave_end, finish)
            if record is not None:
                self._virtual_finish[int(item.node)] = finish
                settles.append((int(item.node), finish))
            if self.dag is not None:
                self.dag.record_dispatch(
                    int(item.node),
                    wave_index,
                    reads,
                    ready_at=ready,
                    dispatched_at=start,
                    blocked_by=blocked_by,
                    barrier=barrier,
                )
        if self.dag is not None:
            for node, finish in settles:
                self.dag.record_settle(node, finish)
        overlapped = max(0.0, wave_end - base)
        self._virtual_makespan = max(base, wave_end)
        return serial, overlapped

    # --------------------------------------------------------------- threads

    def _dispatch_threads(
        self,
        engine: "MultiQueryEngine",
        items: list[WorkItem],
        wave_index: int,
        num_batches: int,
        plan: PrefixPlan | None = None,
    ) -> WaveOutcome:
        """Thread-pool phase-1 calls, canonical phase-2 merge.

        With a prefix-sharing ``plan``, batch composition follows the
        planner's LCP groups (so batch-mates share cacheable prefixes at the
        provider); the merge phase is canonical either way, so records and
        ledgers match the unplanned dispatch and the LLM call count is
        identical.
        """
        fresh = [(index, item) for index, item in enumerate(items) if item.cached is None]
        if plan is not None:
            batches = [[fresh[i] for i in group] for group in plan.batches]
        else:
            batches = _chunks(fresh, self.max_batch_size)
        phase1: dict[int, tuple] = {}
        serial_seconds = 0.0
        overlapped_seconds = 0.0
        for batch in batches:
            batch_started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=min(self.max_concurrency, len(batch))) as pool:
                futures = {
                    index: pool.submit(self._phase1, engine, item, wave_index, index)
                    for index, item in batch
                }
                for index, future in futures.items():
                    phase1[index] = future.result()
            overlapped_seconds += time.perf_counter() - batch_started
        with engine.span("wave", wave_index=wave_index, queries=len(items)):
            records, deferred, replayed, serial_seconds = self._merge_threads(
                engine, items, phase1
            )
        if self.dag is not None:
            self._record_threads_wave(items, deferred, wave_index, overlapped_seconds)
        stats = WaveStats(
            wave_index=wave_index,
            num_queries=len(items),
            num_replayed=replayed,
            num_deferred=len(deferred),
            num_batches=num_batches,
            serial_seconds=serial_seconds,
            overlapped_seconds=overlapped_seconds,
        )
        return WaveOutcome(records=records, deferred=deferred, stats=stats)

    def _record_threads_wave(
        self,
        items: list[WorkItem],
        deferred: list[int],
        wave_index: int,
        wave_seconds: float,
    ) -> None:
        """Mirror one threads wave into the readiness ledger.

        The threads wave path only ever carries dependency-free items —
        ``engine.run`` batches and serve admissions declare ``reads ==
        frozenset()``, and boosted rounds take the pipelined executor
        instead — so every item is ready at the wave's admission point and
        settles by the wave's wall-clock end.  Recording keeps the DAG
        invariants (acyclicity, reads-settled-at-dispatch, canonical
        topological order) auditable across all four dispatch legs.
        """
        base = self._virtual_makespan
        end = base + max(0.0, wave_seconds)
        deferred_set = set(deferred)
        settles: list[tuple[int, float]] = []
        for item in items:
            node = int(item.node)
            replayed = item.cached is not None
            reads = (
                frozenset()
                if item.reads is None
                else frozenset(int(p) for p in item.reads if int(p) in self._virtual_finish)
            )
            self.dag.record_dispatch(
                node,
                wave_index,
                reads,
                ready_at=base,
                dispatched_at=base,
                blocked_by=None,
                barrier=item.reads is None,
                replayed=replayed,
            )
            if replayed:
                settles.append((node, base))
            elif node not in deferred_set:
                settles.append((node, end))
        for node, at in settles:
            self.dag.record_settle(node, at)
            self._virtual_finish[node] = at
        self._virtual_makespan = end

    def _phase1(
        self, engine: "MultiQueryEngine", item: WorkItem, wave_index: int, index: int
    ) -> tuple:
        """The parallel-safe slice of one query: build prompt, call the LLM.

        The node id rides along so a routed engine runs its full cascade
        (entry tier + escalations) here on the worker thread; the merge
        phase only finalizes the already-aggregated response.  A
        ``fault_injector`` crash fires *before* any work, so a "dead"
        worker's query is lost without ever reaching the LLM.
        """
        started = time.perf_counter()
        try:
            if self.fault_injector is not None:
                self.fault_injector.before_item(wave_index, index)
            prompt, selected, compressed = engine.prepare_prompt(
                item.node,
                include_neighbors=item.include_neighbors,
                compress=item.compress,
            )
            response, call_retries = engine.call_llm(prompt, node=item.node)
        except WorkerCrashError as error:
            return ("crashed", error, time.perf_counter() - started)
        except TransientLLMError as error:
            return ("error", error, time.perf_counter() - started)
        return (
            "ok",
            (response, selected, call_retries, compressed),
            time.perf_counter() - started,
        )

    def _merge_threads(
        self, engine: "MultiQueryEngine", items: list[WorkItem], phase1: dict[int, tuple]
    ) -> tuple[list[QueryRecord], list[int], int, float]:
        records: list[QueryRecord] = []
        deferred: list[int] = []
        replayed = 0
        serial_seconds = 0.0
        for index, item in enumerate(items):
            if item.cached is not None:
                engine.observe_replay(item.cached)
                records.append(item.cached)
                replayed += 1
                continue
            kind, payload, elapsed = phase1[index]
            serial_seconds += elapsed
            if kind == "crashed":
                # The worker died before its LLM call: recover by re-running
                # the item on the canonical serial path.  Nothing reached the
                # provider in phase 1, so the re-execution duplicates no call.
                started = time.perf_counter()
                try:
                    record = engine.execute_query(
                        item.node,
                        include_neighbors=item.include_neighbors,
                        round_index=item.round_index,
                        on_failure=item.on_failure,
                        compress=item.compress,
                    )
                except TransientLLMError:
                    serial_seconds += time.perf_counter() - started
                    if item.on_failure != "raise":
                        raise
                    deferred.append(item.node)
                    if item.on_defer is not None:
                        item.on_defer()
                    continue
                serial_seconds += time.perf_counter() - started
                records.append(record)
                if item.after_execute is not None:
                    item.after_execute(record)
                continue
            if kind == "ok":
                response, selected, call_retries, compressed = payload
                record = engine.finalize_prepared(
                    item.node,
                    response,
                    selected,
                    include_neighbors=item.include_neighbors,
                    round_index=item.round_index,
                    call_retries=call_retries,
                    compressed=compressed,
                )
            else:
                mode = item.on_failure or ("degrade" if engine.ladder is not None else "raise")
                if mode == "raise":
                    if item.on_failure == "raise":
                        deferred.append(item.node)
                        if item.on_defer is not None:
                            item.on_defer()
                        continue
                    raise payload
                record = engine.degrade_failed_query(
                    item.node,
                    include_neighbors=item.include_neighbors,
                    round_index=item.round_index,
                )
            records.append(record)
            if item.after_execute is not None:
                item.after_execute(record)
        return records, deferred, replayed, serial_seconds
