"""Multi-tenant serving layer: admission control, fair budgets, backpressure.

The paper's whole argument (Sec. V) is doing more classification under a
fixed token budget.  This module lifts that idea from the query dimension to
the *traffic* dimension: many named tenants submit classification requests
concurrently, each under its own token/dollar :class:`~repro.core.budget.
BudgetLedger`, and the serving layer decides — deterministically — who gets
served, at what fidelity, and who waits.

The pipeline per request::

    arrival ──admission──▶ per-tenant FIFO queue ──DRR──▶ wave ──▶ engine
                │                                          │
                ├─ rejected_queue_full / rejected_overload └─ budget gate:
                └─ rejected_budget (tenant already dry)        full prompt
                                                               → compressed prompt
                                                               → pruned prompt
                                                               → surrogate MLP
                                                               → rejected (429)

* **Admission control** (:class:`AdmissionPolicy`): per-tenant bounded
  queues plus three global watermarks — above ``compress_watermark``
  queued requests, new arrivals are admitted *compressed* (the engine's
  deterministic :class:`~repro.mqo.compression.PromptCompressor` shrinks
  their neighbor context before dispatch); above ``degrade_watermark``
  they are admitted *degraded* (pinned to the cheap zero-shot prompt);
  above ``shed_watermark`` they are rejected outright.
* **Fairness**: dispatch cycles pick requests by deficit round-robin across
  tenants — each cycle replenishes every backlogged tenant's deficit by its
  ``weight`` and drains queues in a rotating order, so a tenant with a
  non-empty queue is served at least once every ``len(tenants)`` cycles
  (no starvation), and long-run throughput is weight-proportional.
* **Budget gate**: before dispatch, the exact prompt token count (tokenizer
  only, no LLM spend — the same idiom as the engine's budget guard) is
  checked against the tenant's ledger *and* the global ceiling: full prompt
  first, then the pruned prompt, then the engine ladder's surrogate MLP at
  zero tokens, then an explicit 429-style rejection.  Charges land on both
  ledgers in canonical order after execution.
* **Determinism**: every decision runs on the engine's ``SimulatedClock``
  and pure data structures — same request stream + seed ⇒ bit-identical
  outcomes, ledgers, and trace, with or without a batched
  :class:`~repro.runtime.scheduler.QueryScheduler` (simulated dispatch),
  mirroring the scheduler's serial-equivalence contract.

See ``docs/serving.md`` for the full contract and knobs.
"""

from __future__ import annotations

import json
import zlib
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.budget import BudgetLedger, LedgerBook
from repro.io.atomic import append_line_durable, atomic_write_text
from repro.llm.pricing import PRICES_PER_1K_TOKENS, cache_discount_usd, cost_usd
from repro.runtime.results import QueryRecord
from repro.runtime.scheduler import WorkItem
from repro.utils.rng import spawn_rng

if TYPE_CHECKING:
    from repro.runtime.chaos import ChaosController
    from repro.runtime.cluster import ShardedCluster
    from repro.runtime.engine import MultiQueryEngine

#: Admission decisions, best to worst.  ``admitted`` enters the queue at
#: full fidelity; ``admitted_compress`` enters pinned to the compressed
#: neighbor prompt (the cheap MQO rung); ``admitted_degraded`` enters
#: pinned to the zero-shot prompt (overload backpressure); the
#: ``rejected_*`` tiers never queue.
ADMISSION_DECISIONS = (
    "admitted",
    "admitted_compress",
    "admitted_degraded",
    "rejected_queue_full",
    "rejected_overload",
    "rejected_budget",
)

#: Serve-level outcome statuses.  Every outcome also carries an explicit
#: ``tier`` naming its rung: a record outcome tier
#: (:data:`~repro.runtime.results.OUTCOME_TIERS`, with ``degraded_pruned``
#: for requests the gate or admission pinned zero-shot) or a rejection
#: decision from :data:`ADMISSION_DECISIONS`.
SERVE_STATUSES = ("served", "degraded", "rejected")

#: Key for the global ceiling in in-wave reservation maps (the same sentinel
#: :meth:`~repro.core.budget.LedgerBook.snapshot` uses).
_GLOBAL = "__global__"


@dataclass(frozen=True)
class ServeRequest:
    """One tenant's classification request.

    ``arrival`` is in simulated seconds on the serving clock; requests with
    equal arrivals keep their submission order.  ``include_neighbors=False``
    asks for the cheap zero-shot form up front (never counted as degraded).
    """

    tenant: str
    node: int
    arrival: float = 0.0
    include_neighbors: bool = True

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival must be >= 0")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's service contract: fairness weight, queue bound, budgets."""

    name: str
    weight: int = 1
    max_queue_depth: int = 64
    token_budget: float | None = None
    usd_budget: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight < 1:
            raise ValueError("weight must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")

    def make_ledger(self) -> BudgetLedger:
        return BudgetLedger(
            budget=self.token_budget, cost_budget_usd=self.usd_budget
        )


@dataclass(frozen=True)
class AdmissionPolicy:
    """Backpressure knobs: when arrivals queue, compress, degrade, or shed.

    Watermarks count *total queued requests across tenants*; ``None``
    disables that rung.  ``compress_watermark`` is the gentlest rung: it
    pins arrivals to the compressed neighbor prompt (requires an engine
    compressor; without one the pin falls through to full fidelity), and
    must sit at or below ``degrade_watermark``.  ``completion_reserve`` is the per-request headroom
    kept for the (pre-call unknowable) completion, exactly like the engine
    budget guard's reserve.  ``wave_quota`` caps how many requests one
    dispatch cycle drains into a scheduler wave.
    """

    degrade_watermark: int | None = None
    shed_watermark: int | None = None
    wave_quota: int = 8
    completion_reserve: int = 32
    compress_watermark: int | None = None

    def __post_init__(self) -> None:
        if self.wave_quota < 1:
            raise ValueError("wave_quota must be >= 1")
        if self.completion_reserve < 0:
            raise ValueError("completion_reserve must be >= 0")
        for name in ("compress_watermark", "degrade_watermark", "shed_watermark"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 (or None to disable)")
        if (
            self.degrade_watermark is not None
            and self.shed_watermark is not None
            and self.shed_watermark < self.degrade_watermark
        ):
            raise ValueError("shed_watermark must be >= degrade_watermark")
        tighter = self.degrade_watermark
        if tighter is None:
            tighter = self.shed_watermark
        if (
            self.compress_watermark is not None
            and tighter is not None
            and tighter < self.compress_watermark
        ):
            raise ValueError(
                "compress_watermark must be <= degrade_watermark (and "
                "shed_watermark) — compression is the gentler rung"
            )


@dataclass(frozen=True)
class ServeOutcome:
    """Final disposition of one request, with its explicit outcome tier.

    ``tier`` is a record outcome (``ok``/``retried``/``degraded_compressed``/
    ``degraded_pruned``/``degraded_surrogate``/``abstained``) for
    dispatched requests — with
    ``degraded_pruned`` standing in whenever a neighbor-bearing request was
    executed zero-shot by backpressure or the budget gate — or the
    ``rejected_*`` admission decision for requests that never dispatched.
    """

    request: ServeRequest
    status: str
    tier: str
    record: QueryRecord | None
    queued_at: float | None
    dispatched_at: float | None
    completed_at: float
    #: Index of the dispatch cycle that settled the request (``None`` for
    #: admission-time rejections) — the fairness tests' service timeline.
    cycle: int | None = None
    #: Prompt tokens this request shared with a batch-mate's prefix under
    #: the scheduler's prefix-sharing plan — credited to the tenant's
    #: ledger as a prompt-cache discount (0 without prefix sharing).
    shared_prompt_tokens: int = 0

    def __post_init__(self) -> None:
        if self.status not in SERVE_STATUSES:
            raise ValueError(f"unknown serve status {self.status!r}")

    @property
    def latency_seconds(self) -> float:
        """Arrival-to-completion simulated seconds (0 for instant rejects)."""
        return max(0.0, self.completed_at - self.request.arrival)

    @property
    def answered(self) -> bool:
        """Whether the client got a usable prediction (goodput numerator)."""
        return self.record is not None and self.record.predicted_label is not None


@dataclass
class TenantSummary:
    """Per-tenant aggregate of a serve run (the CLI's summary-table row)."""

    tenant: str
    submitted: int = 0
    served: int = 0
    degraded: int = 0
    rejected: int = 0
    answered: int = 0
    tokens: int = 0
    usd: float = 0.0
    latencies: list[float] = field(default_factory=list)

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q))


@dataclass
class ServeReport:
    """Everything one serve run produced, in request-completion order."""

    outcomes: list[ServeOutcome]
    cycles: int
    makespan_seconds: float
    book: LedgerBook

    @property
    def num_requests(self) -> int:
        return len(self.outcomes)

    @property
    def goodput(self) -> int:
        """Requests that ended with a usable prediction (any fidelity)."""
        return sum(o.answered for o in self.outcomes)

    @property
    def status_counts(self) -> dict[str, int]:
        counts = dict.fromkeys(SERVE_STATUSES, 0)
        for o in self.outcomes:
            counts[o.status] += 1
        return counts

    @property
    def tier_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for o in self.outcomes:
            counts[o.tier] = counts.get(o.tier, 0) + 1
        return counts

    def latency_percentile(self, q: float) -> float:
        values = [o.latency_seconds for o in self.outcomes]
        if not values:
            return 0.0
        return float(np.percentile(np.asarray(values), q))

    def tenant_summaries(self) -> dict[str, TenantSummary]:
        summaries: dict[str, TenantSummary] = {}
        for o in self.outcomes:
            summary = summaries.setdefault(o.request.tenant, TenantSummary(o.request.tenant))
            summary.submitted += 1
            if o.status == "served":
                summary.served += 1
            elif o.status == "degraded":
                summary.degraded += 1
            else:
                summary.rejected += 1
            summary.answered += o.answered
            if o.record is not None:
                summary.tokens += o.record.total_tokens
                summary.latencies.append(o.latency_seconds)
        for name, summary in sorted(summaries.items()):
            summary.usd = self.book.ledger(name).spent_usd
        return summaries


class JournalError(ValueError):
    """A serve request journal cannot be used for the attempted resume.

    Raised for header/stream mismatches (the journal was recorded for a
    different request stream) and for entries that disagree with the
    re-simulated dispatch — never for a torn tail, which
    :class:`ServeJournal` repairs silently on load.
    """


_JOURNAL_VERSION = 1


def _stream_crc(requests: "list[ServeRequest]") -> int:
    """CRC32 identity of a request stream (order-sensitive, content-exact)."""
    blob = json.dumps(
        [[r.tenant, r.node, r.arrival, r.include_neighbors] for r in requests],
        separators=(",", ":"),
    )
    return zlib.crc32(blob.encode("utf-8"))


class ServeJournal:
    """Crash-safe write-ahead journal of a serve run's settled cycles.

    Each completed dispatch cycle appends one fsync'd JSONL line (CRC-
    enveloped) carrying the cycle's outcomes — records included — plus the
    clock value after the cycle.  On resume, :meth:`ServingLayer.replay`
    re-simulates admission/fairness/gating deterministically but replays
    every journaled cycle from disk: the journaled requests' LLM calls are
    **never re-issued**, their charges land on the reconstructed ledgers
    identically, and the clock is advanced to the journaled timeline — so a
    crashed-and-resumed run finishes bit-identical to the uninterrupted
    one, minus only the duplicate spend.

    Durability: appends go through :func:`repro.io.atomic.
    append_line_durable` (write + fsync), so a crash can tear at most the
    final line.  On load, the first line that fails JSON or CRC validation
    marks the torn tail: it and everything after it are truncated away
    (work past the tail was committed by a process that died before its
    fsync returned — it must be re-executed, conservatively).
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.header: dict | None = None
        self.cycles: list[dict] = []
        self.dropped_lines = 0
        if self.path.exists():
            self._load()

    # ---------------------------------------------------------------- loading

    def _load(self) -> None:
        text = self.path.read_text(encoding="utf-8", errors="replace")
        good_chars = 0
        entries: list[dict] = []
        torn = False
        for line in text.splitlines(keepends=True):
            entry = self._decode(line)
            if entry is None:
                torn = True
                break
            entries.append(entry)
            good_chars += len(line)
        if torn:
            remainder = text[good_chars:]
            self.dropped_lines = sum(1 for l in remainder.splitlines() if l.strip())
            with open(self.path, "r+", encoding="utf-8") as handle:
                handle.truncate(len(text[:good_chars].encode("utf-8")))
        if not entries:
            return
        header = entries[0]
        if header.get("kind") != "serve_journal":
            raise JournalError(f"{self.path} is not a serve journal")
        version = header.get("format_version")
        if version != _JOURNAL_VERSION:
            raise JournalError(f"unsupported journal format version {version!r}")
        self.header = header
        for entry in entries[1:]:
            if entry.get("kind") != "cycle":
                raise JournalError(
                    f"{self.path}: unexpected journal entry kind {entry.get('kind')!r}"
                )
            self.cycles.append(entry)

    @staticmethod
    def _decode(line: str) -> dict | None:
        line = line.strip()
        if not line:
            return None
        try:
            envelope = json.loads(line)
            entry = envelope["entry"]
            stored = envelope["crc"]
        except (json.JSONDecodeError, KeyError, TypeError):
            return None
        blob = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        if zlib.crc32(blob.encode("utf-8")) != stored:
            return None
        return entry

    # ---------------------------------------------------------------- writing

    def _append(self, entry: dict) -> None:
        blob = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        envelope = {"crc": zlib.crc32(blob.encode("utf-8")), "entry": entry}
        append_line_durable(self.path, json.dumps(envelope, separators=(",", ":")))

    def begin(self, requests: "list[ServeRequest]") -> None:
        """Bind the journal to ``requests`` (write or verify the header)."""
        crc = _stream_crc(requests)
        if self.header is None:
            self.header = {
                "kind": "serve_journal",
                "format_version": _JOURNAL_VERSION,
                "num_requests": len(requests),
                "stream_crc": crc,
            }
            self._append(self.header)
            return
        if (
            self.header.get("num_requests") != len(requests)
            or self.header.get("stream_crc") != crc
        ):
            raise JournalError(
                f"{self.path} was recorded for a different request stream "
                f"({self.header.get('num_requests')} requests, "
                f"crc {self.header.get('stream_crc')}); refusing to resume "
                f"against {len(requests)} requests, crc {crc}"
            )

    def append_cycle(self, entry: dict) -> None:
        """Durably commit one settled cycle."""
        self.cycles.append(entry)
        self._append({"kind": "cycle", **entry})

    def truncate(self, keep_cycles: int) -> None:
        """Drop every journaled cycle past the first ``keep_cycles``.

        Rewrites the file as header + kept cycles — the on-disk state a
        crash at that point would have left.  The chaos CLI and tests use
        it to stage crash/resume scenarios against a real journal file.
        """
        if keep_cycles < 0:
            raise ValueError("keep_cycles must be >= 0")
        if self.header is None:
            raise JournalError("cannot truncate a journal with no header")
        self.cycles = self.cycles[:keep_cycles]
        lines = []
        for entry in [self.header] + [{"kind": "cycle", **c} for c in self.cycles]:
            blob = json.dumps(entry, sort_keys=True, separators=(",", ":"))
            envelope = {"crc": zlib.crc32(blob.encode("utf-8")), "entry": entry}
            lines.append(json.dumps(envelope, separators=(",", ":")))
        atomic_write_text(self.path, "\n".join(lines) + "\n")


class _TenantState:
    """Queue + deficit-round-robin bookkeeping for one tenant."""

    __slots__ = ("spec", "queue", "deficit")

    def __init__(self, spec: TenantSpec):
        self.spec = spec
        self.queue: deque = deque()
        self.deficit = 0


class ServingLayer:
    """Deterministic in-process request server over one engine.

    Parameters
    ----------
    engine:
        A wired :class:`~repro.runtime.engine.MultiQueryEngine`.  Its
        optional ``scheduler`` turns each dispatch cycle into a batched
        wave; its optional ``ladder`` provides the surrogate rung of the
        overload ladder; its ``clock`` is the serving timeline.  The engine
        must *not* carry its own ledger — the serving layer owns all spend
        accounting through its :class:`~repro.core.budget.LedgerBook`.
    tenants:
        The :class:`TenantSpec` contracts; request streams may only name
        these tenants.
    policy:
        The :class:`AdmissionPolicy`; defaults to unbounded watermarks.
    global_budget / global_usd_budget:
        Optional ceiling across all tenants (one shared ledger).
    price_model:
        Model name used to estimate a request's dollar cost at the budget
        gate (prompt + reserve at that model's price) and to charge actual
        records that carry no routed ``cost_usd``.  ``None`` (or an
        unpriced simulated model) disables dollar accounting for unrouted
        records.
    observer:
        Optional :class:`~repro.obs.hooks.RunObserver`; admissions,
        dispatch cycles and completions report through the ``on_serve_*``
        hooks (metrics + an ``admission`` trace event per arrival).
    chaos:
        Optional :class:`~repro.runtime.chaos.ChaosController`.  Attaching
        it makes the layer drive time-triggered faults (``chaos.poll`` each
        cycle) and, when the plan carries *tenant-scoped* LLM faults, tag
        each dispatched request's tenant on the controller so a
        :class:`~repro.runtime.chaos.ChaosLLM` downstream can scope its
        faults.  Tenant tagging requires per-request serial dispatch, so
        tenant-scoped plans bypass a batched scheduler for the wave — the
        scheduler's serial-equivalence contract keeps the records
        identical, only wave-overlap timing differs.  A ``None`` plan or a
        tenant-unscoped plan leaves the dispatch path untouched.
    cluster:
        Optional :class:`~repro.runtime.cluster.ShardedCluster`.  When set,
        each request routes to the engine owning its node's shard (gating,
        execution and surrogate answers all happen on that engine), while
        admission, fairness and the :class:`~repro.core.budget.LedgerBook`
        stay layer-global — a tenant spanning shards keeps one ledger and
        its DRR weight regardless of where its nodes live.  Every cluster
        engine must share one clock and carry no ledger; ``engine`` may be
        omitted and defaults to shard 0's engine (the serving timeline).
        At one shard the routing is the identity, so outcomes are
        bit-identical to the unclustered layer.
    """

    def __init__(
        self,
        engine: "MultiQueryEngine | None" = None,
        tenants: "list[TenantSpec] | tuple[TenantSpec, ...]" = (),
        policy: AdmissionPolicy | None = None,
        global_budget: float | None = None,
        global_usd_budget: float | None = None,
        price_model: str | None = None,
        observer: object | None = None,
        chaos: "ChaosController | None" = None,
        cluster: "ShardedCluster | None" = None,
    ):
        if not tenants:
            raise ValueError("a serving layer needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")
        if engine is None:
            if cluster is None:
                raise ValueError("a serving layer needs an engine or a cluster")
            engine = cluster.engines[0]
        if cluster is not None:
            clocks = {id(e.clock) for e in cluster.engines}
            if len(clocks) != 1:
                raise ValueError("cluster engines must share one clock")
            for shard_engine in cluster.engines:
                if shard_engine.ledger is not None:
                    raise ValueError(
                        "the serving layer owns all spend accounting; construct "
                        "cluster engines without ledgers"
                    )
        if engine.ledger is not None:
            raise ValueError(
                "the serving layer owns all spend accounting; construct the "
                "engine without a ledger"
            )
        self.engine = engine
        self.cluster = cluster
        self.policy = policy or AdmissionPolicy()
        self._tenants = {t.name: _TenantState(t) for t in tenants}
        global_ledger = None
        if global_budget is not None or global_usd_budget is not None:
            global_ledger = BudgetLedger(
                budget=global_budget, cost_budget_usd=global_usd_budget
            )
        self.book = LedgerBook(
            {t.name: t.make_ledger() for t in tenants}, global_ledger=global_ledger
        )
        self.price_model = price_model
        self.observer = observer if observer is not None else engine.observer
        self.chaos = chaos
        self._rr_index = 0
        self._cycles = 0

    # ---------------------------------------------------------------- routing

    def _engine_for(self, node: int) -> "MultiQueryEngine":
        """The engine that owns ``node`` (shard routing; identity unclustered)."""
        if self.cluster is None:
            return self.engine
        return self.cluster.engine_for(node)

    # ------------------------------------------------------------------- time

    @property
    def now(self) -> float:
        clock = self.engine.clock
        return float(clock.now) if clock is not None else 0.0

    def _advance_to(self, when: float) -> None:
        clock = self.engine.clock
        if clock is not None and when > clock.now:
            clock.advance(when - clock.now)

    # -------------------------------------------------------------- admission

    @property
    def total_queued(self) -> int:
        return sum(len(state.queue) for state in self._tenants.values())

    def queue_depth(self, tenant: str) -> int:
        return len(self._tenants[tenant].queue)

    def admit(self, request: ServeRequest) -> ServeOutcome | None:
        """Apply admission control to one arrival.

        Returns ``None`` when the request entered a queue, or the terminal
        :class:`ServeOutcome` of an immediate rejection.
        """
        state = self._tenants.get(request.tenant)
        if state is None:
            raise KeyError(
                f"unknown tenant {request.tenant!r}; known tenants: "
                + ", ".join(sorted(self._tenants))
            )
        queued = self.total_queued
        decision = "admitted"
        if self.book.exhausted(request.tenant):
            decision = "rejected_budget"
        elif (
            self.policy.shed_watermark is not None
            and queued >= self.policy.shed_watermark
        ):
            decision = "rejected_overload"
        elif len(state.queue) >= state.spec.max_queue_depth:
            decision = "rejected_queue_full"
        elif (
            self.policy.degrade_watermark is not None
            and queued >= self.policy.degrade_watermark
        ):
            decision = "admitted_degraded"
        elif (
            self.policy.compress_watermark is not None
            and queued >= self.policy.compress_watermark
        ):
            decision = "admitted_compress"
        if self.observer is not None:
            depth = queued + int(decision.startswith("admitted"))
            self.observer.on_serve_admission(request.tenant, decision, depth)
        if decision.startswith("rejected"):
            return ServeOutcome(
                request=request,
                status="rejected",
                tier=decision,
                record=None,
                queued_at=None,
                dispatched_at=None,
                completed_at=self.now,
            )
        # The queue entry carries the admission *pin*: the highest fidelity
        # the gate may consider at dispatch time.
        pin = {
            "admitted": "full",
            "admitted_compress": "compress",
            "admitted_degraded": "degrade",
        }[decision]
        state.queue.append((request, self.now, pin))
        return None

    # --------------------------------------------------------------- fairness

    def _pick_wave(self) -> list[tuple[ServeRequest, float, str]]:
        """Drain up to ``wave_quota`` requests by deficit round-robin.

        Each cycle replenishes every backlogged tenant's deficit by its
        weight (an empty tenant's deficit resets — classic DRR, so idle
        tenants cannot hoard credit), then serves tenants in rotating order.
        The rotation guarantees a backlogged tenant is first in line at
        least once every ``len(tenants)`` cycles, bounding starvation.
        """
        order = list(self._tenants)
        order = order[self._rr_index :] + order[: self._rr_index]
        self._rr_index = (self._rr_index + 1) % len(order)
        for name in order:
            state = self._tenants[name]
            if state.queue:
                state.deficit += state.spec.weight
            else:
                state.deficit = 0
        picked: list[tuple[ServeRequest, float, str]] = []
        for name in order:
            state = self._tenants[name]
            while (
                state.queue
                and state.deficit >= 1
                and len(picked) < self.policy.wave_quota
            ):
                picked.append(state.queue.popleft())
                state.deficit -= 1
            if len(picked) >= self.policy.wave_quota:
                break
        if not picked:
            # Every backlogged tenant is deficit-starved only if quotas and
            # weights are misconfigured to zero — guaranteed not to happen by
            # validation — but serve the rotation head defensively anyway.
            for name in order:
                state = self._tenants[name]
                if state.queue:
                    picked.append(state.queue.popleft())
                    break
        return picked

    # ------------------------------------------------------------ budget gate

    def _estimate_usd(self, prompt_tokens: int) -> float:
        """Pre-call dollar estimate under ``price_model`` (0 when unpriced)."""
        if self.price_model is None:
            return 0.0
        if self.price_model.lower() not in PRICES_PER_1K_TOKENS:
            return 0.0
        return cost_usd(
            self.price_model, prompt_tokens, self.policy.completion_reserve
        )

    def _affordable(
        self, tenant: str, cost: int, usd: float, pending: dict
    ) -> bool:
        """Ledger check that also counts this wave's not-yet-charged plans.

        Requests of one dispatch cycle are gated before any of them charges,
        so each check must add the wave's earlier reservations — otherwise a
        single wave could jointly overdraw a nearly-dry ledger.
        """
        t_tokens, t_usd = pending.get(tenant, (0, 0.0))
        if self.book.ledger(tenant).would_exceed(cost + t_tokens, usd + t_usd):
            return False
        if self.book.global_ledger is None:
            return True
        g_tokens, g_usd = pending.get(_GLOBAL, (0, 0.0))
        return not self.book.global_ledger.would_exceed(cost + g_tokens, usd + g_usd)

    @staticmethod
    def _reserve(pending: dict, tenant: str, cost: int, usd: float) -> None:
        for key in (tenant, _GLOBAL):
            tokens_so_far, usd_so_far = pending.get(key, (0, 0.0))
            pending[key] = (tokens_so_far + cost, usd_so_far + usd)

    def _gate(
        self, request: ServeRequest, pin: str, pending: dict
    ) -> tuple[str, bool, bool] | None:
        """Pick the cheapest affordable rung for one request.

        ``pin`` is the admission-time fidelity cap (``"full"`` /
        ``"compress"`` / ``"degrade"``).  Returns ``(tier,
        include_neighbors, compress)`` for an LLM dispatch (reserving its
        worst-case cost in ``pending`` for the rest of the wave),
        ``("surrogate", False, False)`` for a ladder answer, or ``None``
        when not even zero tokens are admissible (tenant or global ledger
        dry).  The ladder is full → compressed → pruned → surrogate; the
        compressed rung costs the *exact* deterministic compression of the
        full prompt and only exists when the engine carries a compressor.

        Under a cluster, gating runs on the engine owning the request's
        node — its shard's label state is what the prompt will render.
        """
        engine = self._engine_for(request.node)
        tokenizer = engine.llm.tokenizer
        reserve = self.policy.completion_reserve
        tenant = request.tenant
        if pin == "compress" and engine.compressor is None:
            pin = "full"
        want_full = request.include_neighbors and pin == "full"
        if want_full:
            prompt, _ = engine.build_prompt(request.node, include_neighbors=True)
            cost = tokenizer.count(prompt) + reserve
            usd = self._estimate_usd(cost - reserve)
            if self._affordable(tenant, cost, usd, pending):
                self._reserve(pending, tenant, cost, usd)
                return ("full", True, False)
        if (
            request.include_neighbors
            and pin in ("full", "compress")
            and engine.compressor is not None
        ):
            prompt = engine.preview_prompt(
                request.node, include_neighbors=True, compress=True
            )
            cost = tokenizer.count(prompt) + reserve
            usd = self._estimate_usd(cost - reserve)
            if self._affordable(tenant, cost, usd, pending):
                self._reserve(pending, tenant, cost, usd)
                return ("compressed", True, True)
        prompt, _ = engine.build_prompt(request.node, include_neighbors=False)
        cost = tokenizer.count(prompt) + reserve
        usd = self._estimate_usd(cost - reserve)
        if self._affordable(tenant, cost, usd, pending):
            self._reserve(pending, tenant, cost, usd)
            return ("pruned", False, False)
        if engine.ladder is not None:
            return ("surrogate", False, False)
        return None

    # --------------------------------------------------------------- dispatch

    def _charge(self, tenant: str, record: QueryRecord) -> None:
        usd = record.cost_usd
        if usd is None:
            usd = 0.0
            if (
                self.price_model is not None
                and self.price_model.lower() in PRICES_PER_1K_TOKENS
            ):
                usd = cost_usd(
                    self.price_model, record.prompt_tokens, record.completion_tokens
                )
        self.book.charge(tenant, record.total_tokens, usd=usd)
        if self.observer is not None:
            # Fires on journal replay too (replayed records re-charge the
            # ledgers), so observer-side tenant spend always matches the book.
            self.observer.on_serve_charge(tenant, record.total_tokens, usd)

    def _shared_discount_usd(self, shared_tokens: int) -> float:
        """Dollar value of a prompt-cache credit under ``price_model``."""
        if shared_tokens <= 0 or self.price_model is None:
            return 0.0
        if self.price_model.lower() not in PRICES_PER_1K_TOKENS:
            return 0.0
        return cache_discount_usd(self.price_model, shared_tokens)

    def _execute_items(
        self, items: list[WorkItem], item_tenants: list[str]
    ) -> tuple[list[QueryRecord], list[int]]:
        """Run a gated wave, honoring an attached chaos controller.

        Tenant-scoped fault plans need the requesting tenant visible to the
        LLM stack at call time, which only per-request serial dispatch can
        provide race-free; by the scheduler's serial-equivalence contract
        the records are identical either way.

        Returns the records in item order plus each item's
        ``shared_prompt_tokens`` under the scheduler's prefix-sharing plan
        (all zeros without a planning scheduler — serial dispatch shares
        nothing).

        Under a cluster, the wave splits by owning shard: each shard's
        sub-wave runs on its own engine (and scheduler) in shard order,
        then records stitch back into item order.  One shard reduces to
        the unclustered single-wave path exactly.
        """
        chaos = self.chaos
        serial_for_chaos = chaos is not None and chaos.plan.has_tenant_scoped_faults
        if items and not serial_for_chaos:
            if self.cluster is None:
                if self.engine.scheduler is None:
                    return self._execute_serial(items, item_tenants)
                return self._run_shard_wave(self.engine, items)
            by_shard: dict[int, list[int]] = {}
            for position, item in enumerate(items):
                shard = self.cluster.partition.part_of(item.node)
                by_shard.setdefault(shard, []).append(position)
            records: list[QueryRecord | None] = [None] * len(items)
            shared: list[int] = [0] * len(items)
            for shard in sorted(by_shard):
                positions = by_shard[shard]
                engine = self.cluster.engines[shard]
                if engine.scheduler is None:
                    sub_records, sub_shared = self._execute_serial(
                        [items[p] for p in positions],
                        [item_tenants[p] for p in positions],
                        engine=engine,
                    )
                else:
                    sub_records, sub_shared = self._run_shard_wave(
                        engine, [items[p] for p in positions]
                    )
                for position, record, tokens in zip(positions, sub_records, sub_shared):
                    records[position] = record
                    shared[position] = tokens
            return records, shared
        return self._execute_serial(items, item_tenants)

    def _run_shard_wave(
        self, engine: "MultiQueryEngine", items: list[WorkItem]
    ) -> tuple[list[QueryRecord], list[int]]:
        records = engine.scheduler.run_wave(engine, items).records
        plan = getattr(engine.scheduler, "last_plan", None)
        shared = list(plan.shared_by_prompt) if plan is not None else [0] * len(items)
        return records, shared

    def _execute_serial(
        self,
        items: list[WorkItem],
        item_tenants: list[str],
        engine: "MultiQueryEngine | None" = None,
    ) -> tuple[list[QueryRecord], list[int]]:
        chaos = self.chaos
        records: list[QueryRecord] = []
        for item, tenant in zip(items, item_tenants):
            item_engine = engine if engine is not None else self._engine_for(item.node)
            if chaos is not None:
                chaos.current_tenant = tenant
            try:
                records.append(
                    item_engine.execute_query(
                        item.node,
                        include_neighbors=item.include_neighbors,
                        compress=item.compress,
                    )
                )
            finally:
                if chaos is not None:
                    chaos.current_tenant = None
        return records, [0] * len(items)

    def _cycle(self) -> list[ServeOutcome]:
        """One dispatch cycle: pick a wave fairly, gate it, execute, charge."""
        if self.chaos is not None:
            self.chaos.poll(self.now)
        picked = self._pick_wave()
        if not picked:
            return []
        dispatched_at = self.now
        cycle_index = self._cycles
        self._cycles += 1
        plan: list[tuple[ServeRequest, float, str]] = []
        items: list[WorkItem] = []
        item_tenants: list[str] = []
        pending: dict = {}
        for request, queued_at, pin in picked:
            rung = self._gate(request, pin, pending)
            if rung is None:
                plan.append((request, queued_at, "rejected_budget"))
                continue
            tier, include, compress = rung
            plan.append((request, queued_at, tier))
            if tier != "surrogate":
                # Serve requests read no pseudo-labels (reads=∅), so under
                # the DAG dispatch plan each admitted request is immediately
                # ready: it joins the persistent in-flight worker timeline
                # the moment a slot frees instead of queueing behind the
                # previous wave's barrier.  Execution order is canonical
                # either way, so wave and DAG plans stay record-identical.
                items.append(
                    WorkItem(
                        node=request.node,
                        include_neighbors=include,
                        compress=compress,
                        reads=frozenset(),
                    )
                )
                item_tenants.append(request.tenant)
        wave_records, wave_shared = self._execute_items(items, item_tenants)
        records = iter(zip(wave_records, wave_shared))
        outcomes = []
        for request, queued_at, tier in plan:
            if tier == "rejected_budget":
                outcomes.append(
                    ServeOutcome(
                        request=request,
                        status="rejected",
                        tier="rejected_budget",
                        record=None,
                        queued_at=queued_at,
                        dispatched_at=dispatched_at,
                        completed_at=self.now,
                        cycle=cycle_index,
                    )
                )
                continue
            shared = 0
            if tier == "surrogate":
                record = self._engine_for(request.node).surrogate_query(request.node)
            else:
                record, shared = next(records)
            self._charge(request.tenant, record)
            if shared:
                self.book.credit_shared(
                    request.tenant, shared, usd=self._shared_discount_usd(shared)
                )
            # A neighbor-bearing request executed zero-shot lost fidelity to
            # backpressure or the gate: surface it as the pruned ladder rung.
            shed_neighbors = request.include_neighbors and record.pruned
            if record.outcome in ("ok", "retried") and not shed_neighbors:
                status, out_tier = "served", record.outcome
            elif record.outcome in ("ok", "retried"):
                status, out_tier = "degraded", "degraded_pruned"
            else:
                status, out_tier = "degraded", record.outcome
            outcomes.append(
                ServeOutcome(
                    request=request,
                    status=status,
                    tier=out_tier,
                    record=record,
                    queued_at=queued_at,
                    dispatched_at=dispatched_at,
                    completed_at=self.now,
                    cycle=cycle_index,
                    shared_prompt_tokens=shared,
                )
            )
        if self.observer is not None:
            self.observer.on_serve_cycle(cycle_index, self.total_queued, len(plan))
            for outcome in outcomes:
                self.observer.on_serve_complete(
                    outcome.request.tenant,
                    outcome.status,
                    outcome.tier,
                    outcome.latency_seconds,
                )
        return outcomes

    # ----------------------------------------------------------------- replay

    def _cycle_entry(self, cycle_index: int, outcomes: list[ServeOutcome]) -> dict:
        """The journal payload committing one settled cycle."""
        return {
            "cycle": cycle_index,
            "now_after": self.now,
            "outcomes": [
                {
                    "tenant": o.request.tenant,
                    "node": o.request.node,
                    "arrival": o.request.arrival,
                    "status": o.status,
                    "tier": o.tier,
                    "record": asdict(o.record) if o.record is not None else None,
                    "queued_at": o.queued_at,
                    "dispatched_at": o.dispatched_at,
                    "completed_at": o.completed_at,
                    "shared_prompt_tokens": o.shared_prompt_tokens,
                }
                for o in outcomes
            ],
        }

    def _replay_cycle(self, entry: dict) -> list[ServeOutcome]:
        """Settle one journaled cycle without touching the LLM.

        The wave is still *picked* by the live DRR machinery (so queue and
        deficit state evolve exactly as in the original run) and every
        journaled record still *charges* the ledgers; only the execution is
        replaced by the journal's outcomes, and the clock jumps to the
        journaled post-cycle time.  Any disagreement between the journal
        and the re-simulated wave raises :class:`JournalError` — resuming
        against a drifted stream must fail loudly, not serve stale answers.
        """
        if self.chaos is not None:
            self.chaos.poll(self.now)
        picked = self._pick_wave()
        cycle_index = self._cycles
        self._cycles += 1
        if entry.get("cycle") != cycle_index:
            raise JournalError(
                f"journal cycle {entry.get('cycle')!r} arrived at re-simulated "
                f"cycle {cycle_index}"
            )
        specs = entry.get("outcomes", [])
        if len(specs) != len(picked):
            raise JournalError(
                f"cycle {cycle_index}: journal settled {len(specs)} requests but "
                f"the re-simulated wave picked {len(picked)}"
            )
        outcomes: list[ServeOutcome] = []
        for (request, _queued_at, _pin), spec in zip(picked, specs):
            if (
                spec.get("tenant") != request.tenant
                or spec.get("node") != request.node
                or spec.get("arrival") != request.arrival
            ):
                raise JournalError(
                    f"cycle {cycle_index}: journal entry for "
                    f"{spec.get('tenant')}/{spec.get('node')} does not match the "
                    f"re-simulated pick {request.tenant}/{request.node}"
                )
            record = (
                QueryRecord(**spec["record"]) if spec.get("record") is not None else None
            )
            shared = int(spec.get("shared_prompt_tokens", 0) or 0)
            if record is not None:
                self._charge(request.tenant, record)
                if shared:
                    # Re-credit the journaled prompt-cache discount so the
                    # reconstructed ledgers match the original run exactly.
                    self.book.credit_shared(
                        request.tenant,
                        shared,
                        usd=self._shared_discount_usd(shared),
                    )
                self._engine_for(request.node).observe_replay(record)
            outcomes.append(
                ServeOutcome(
                    request=request,
                    status=spec["status"],
                    tier=spec["tier"],
                    record=record,
                    queued_at=spec["queued_at"],
                    dispatched_at=spec["dispatched_at"],
                    completed_at=spec["completed_at"],
                    cycle=cycle_index,
                    shared_prompt_tokens=shared,
                )
            )
        self._advance_to(float(entry["now_after"]))
        if self.observer is not None:
            self.observer.on_serve_cycle(cycle_index, self.total_queued, len(picked))
            for outcome in outcomes:
                self.observer.on_serve_complete(
                    outcome.request.tenant,
                    outcome.status,
                    outcome.tier,
                    outcome.latency_seconds,
                )
        return outcomes

    def replay(
        self, requests: "list[ServeRequest]", journal: "ServeJournal | None" = None
    ) -> ServeReport:
        """Serve a whole recorded request stream (batch-replay mode).

        Arrivals are ingested in ``(arrival, submission-order)`` order on
        the simulated clock; when every queue is empty the clock jumps to
        the next arrival, otherwise dispatch cycles run back-to-back (time
        passes only through the engine's simulated latencies).  The result
        is bit-reproducible: same stream + same engine seedings ⇒ identical
        outcomes, ledgers, and trace.

        With a :class:`ServeJournal`, every settled cycle is durably
        committed as it completes, and a journal carrying prior cycles
        replays them instead of re-executing: an interrupted run resumed on
        a fresh layer finishes with identical outcomes and ledgers while
        re-issuing **zero** LLM calls for journaled work.
        """
        started = self.now
        if journal is not None:
            journal.begin(requests)
        pending = sorted(
            enumerate(requests), key=lambda pair: (pair[1].arrival, pair[0])
        )
        queue = deque(request for _, request in pending)
        outcomes: list[ServeOutcome] = []
        while queue or self.total_queued:
            if not self.total_queued and queue:
                # Jump idle time to the next arrival and ingest it
                # unconditionally (float advance can land one ULP short of
                # the arrival stamp; gating the head on ``<= now`` could
                # stall forever).
                self._advance_to(queue[0].arrival)
                rejected = self.admit(queue.popleft())
                if rejected is not None:
                    outcomes.append(rejected)
            while queue and queue[0].arrival <= self.now:
                rejected = self.admit(queue.popleft())
                if rejected is not None:
                    outcomes.append(rejected)
            if self.total_queued:
                if journal is not None and self._cycles < len(journal.cycles):
                    outcomes.extend(self._replay_cycle(journal.cycles[self._cycles]))
                    continue
                before = self._cycles
                cycle_outcomes = self._cycle()
                if journal is not None and self._cycles > before:
                    journal.append_cycle(self._cycle_entry(before, cycle_outcomes))
                outcomes.extend(cycle_outcomes)
        return ServeReport(
            outcomes=outcomes,
            cycles=self._cycles,
            makespan_seconds=self.now - started,
            book=self.book,
        )


def load_requests(path: str | Path, on_error: str = "raise") -> list[ServeRequest]:
    """Read a JSONL request stream (one ``{"tenant", "node", ...}`` per line).

    ``arrival`` (simulated seconds) and ``include_neighbors`` are optional
    per line.  A malformed line — broken JSON, unknown or missing fields,
    out-of-domain values — is *detected* and either raises a ``ValueError``
    naming the exact line (``on_error="raise"``, the default) or is skipped
    while the valid remainder loads (``on_error="skip"``, the recovery mode
    for streams damaged by a partial write).
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    requests = []
    known = {"tenant", "node", "arrival", "include_neighbors"}
    for line_no, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValueError("request line is not a JSON object")
            extra = set(payload) - known
            if extra:
                raise ValueError(f"unknown request fields {sorted(extra)}")
            request = ServeRequest(
                tenant=payload["tenant"],
                node=int(payload["node"]),
                arrival=float(payload.get("arrival", 0.0)),
                include_neighbors=bool(payload.get("include_neighbors", True)),
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
            if on_error == "skip":
                continue
            raise ValueError(
                f"{path}:{line_no}: malformed request line: {error}"
            ) from error
        requests.append(request)
    return requests


def save_requests(requests: "list[ServeRequest]", path: str | Path) -> Path:
    """Write a request stream as JSONL readable by :func:`load_requests`.

    Uses the same atomic tmp + fsync + rename path as every other persistent
    artifact (:func:`repro.io.atomic.atomic_write_text`), so a crash cannot
    leave a truncated stream behind.
    """
    lines = [
        json.dumps(
            {
                "tenant": r.tenant,
                "node": r.node,
                "arrival": r.arrival,
                "include_neighbors": r.include_neighbors,
            }
        )
        for r in requests
    ]
    return atomic_write_text(path, "\n".join(lines) + "\n")


def synthetic_stream(
    tenants: "list[TenantSpec] | tuple[TenantSpec, ...]",
    nodes: np.ndarray,
    num_requests: int,
    arrival_window: float = 0.0,
    seed: int = 0,
) -> list[ServeRequest]:
    """Deterministic multi-tenant request stream over a query population.

    Tenants are drawn weight-proportionally, nodes uniformly from
    ``nodes``, arrivals uniformly over ``[0, arrival_window]`` (all at t=0
    when the window is 0) and sorted.  Everything derives from ``seed``.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if arrival_window < 0:
        raise ValueError("arrival_window must be >= 0")
    rng = spawn_rng(seed, "serve-stream")
    nodes = np.asarray(nodes, dtype=np.int64)
    weights = np.asarray([t.weight for t in tenants], dtype=np.float64)
    tenant_draws = rng.choice(len(tenants), size=num_requests, p=weights / weights.sum())
    node_draws = rng.choice(nodes, size=num_requests)
    if arrival_window > 0:
        arrivals = np.sort(rng.uniform(0.0, arrival_window, size=num_requests))
    else:
        arrivals = np.zeros(num_requests)
    return [
        ServeRequest(
            tenant=tenants[int(t)].name, node=int(v), arrival=float(a)
        )
        for t, v, a in zip(tenant_draws, node_draws, arrivals)
    ]
