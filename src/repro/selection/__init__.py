"""Neighbor-selection methods of the "LLMs as predictors" paradigm.

The benchmark methods the paper optimizes differ only in how they pick the
up-to-``M`` neighbors whose text enters the prompt (paper Table I): vanilla
zero-shot picks none, k-hop random samples within a hop range preferring
labeled nodes, and SNS ranks labeled neighbors by text similarity.
"""

from repro.selection.base import NeighborSelector, SelectedNeighbor, VanillaSelector
from repro.selection.random_khop import KHopRandomSelector
from repro.selection.sns import SNSSelector
from repro.selection.registry import METHOD_NAMES, make_selector

__all__ = [
    "NeighborSelector",
    "SelectedNeighbor",
    "VanillaSelector",
    "KHopRandomSelector",
    "SNSSelector",
    "make_selector",
    "METHOD_NAMES",
]
