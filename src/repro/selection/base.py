"""Neighbor selector interface.

A selector receives the graph, the query node, and the *current* label map —
ground-truth labels of ``V_L`` plus any pseudo-labels added so far by the
query-boosting strategy.  It returns the neighbors whose text will enter the
prompt, each tagged with its label if one is known at selection time.  This
"refresh against the latest label map" is exactly the enrichment step of
Algorithm 2 line 5.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.graph.tag import TextAttributedGraph


@dataclass(frozen=True)
class SelectedNeighbor:
    """One neighbor chosen for a prompt.

    ``label`` is the class index known for this neighbor at selection time
    (gold or pseudo), or ``None`` when unlabeled.
    """

    node: int
    label: int | None


class NeighborSelector(abc.ABC):
    """Strategy interface for choosing prompt neighbors."""

    #: Whether prompts should announce similarity ranking (SNS header suffix).
    similarity_ranked: bool = False

    @abc.abstractmethod
    def select(
        self,
        graph: TextAttributedGraph,
        node: int,
        label_map: dict[int, int],
        max_neighbors: int,
        rng: np.random.Generator,
    ) -> list[SelectedNeighbor]:
        """Choose up to ``max_neighbors`` neighbors for ``node``'s prompt."""

    def label_support(self, graph: TextAttributedGraph, node: int) -> frozenset[int] | None:
        """Every node whose label-map entry can influence ``select(node)``.

        The readiness DAG (``repro.runtime.readiness``) uses this to derive
        which pseudo-labels a query *reads*: restricting the label map to
        this set must leave the selection — and hence candidacy stats and
        the rendered prompt — unchanged.  ``None`` means "unknown" (reads
        everything), which disables dependency-driven dispatch for the
        selector but never its correctness.
        """
        return None

    @staticmethod
    def _attach_labels(nodes: list[int], label_map: dict[int, int]) -> list[SelectedNeighbor]:
        return [SelectedNeighbor(node=v, label=label_map.get(v)) for v in nodes]


class VanillaSelector(NeighborSelector):
    """Vanilla zero-shot: no neighbor text at all (``N_i = ∅``)."""

    def label_support(self, graph: TextAttributedGraph, node: int) -> frozenset[int]:
        return frozenset()  # reads no labels at all

    def select(
        self,
        graph: TextAttributedGraph,
        node: int,
        label_map: dict[int, int],
        max_neighbors: int,
        rng: np.random.Generator,
    ) -> list[SelectedNeighbor]:
        return []
