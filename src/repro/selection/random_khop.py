"""k-hop random neighbor selection (paper Table I / Sec. VI-A2).

Neighbors are drawn from the k-hop neighborhood with a preference for
labeled nodes: labeled candidates are sampled first (randomly among
themselves), then unlabeled candidates fill the remaining slots, up to the
per-prompt limit ``M``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.tag import TextAttributedGraph
from repro.selection.base import NeighborSelector, SelectedNeighbor


class KHopRandomSelector(NeighborSelector):
    """Random selection within ``k`` hops, labeled neighbors first."""

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k

    def label_support(self, graph: TextAttributedGraph, node: int) -> frozenset[int]:
        # select() reads label_map only to split the k-hop candidates into
        # labeled vs unlabeled, so the k-hop neighborhood is the exact
        # support (the node itself rides along for conservatism).
        return frozenset(int(v) for v in graph.k_hop(node, self.k)) | {int(node)}

    def select(
        self,
        graph: TextAttributedGraph,
        node: int,
        label_map: dict[int, int],
        max_neighbors: int,
        rng: np.random.Generator,
    ) -> list[SelectedNeighbor]:
        if max_neighbors < 0:
            raise ValueError("max_neighbors must be >= 0")
        if max_neighbors == 0:
            return []
        candidates = graph.k_hop(node, self.k)
        if candidates.size == 0:
            return []
        labeled = [int(v) for v in candidates if v in label_map]
        unlabeled = [int(v) for v in candidates if v not in label_map]
        chosen: list[int] = []
        if labeled:
            take = min(max_neighbors, len(labeled))
            chosen.extend(int(v) for v in rng.choice(labeled, size=take, replace=False))
        remaining = max_neighbors - len(chosen)
        if remaining > 0 and unlabeled:
            take = min(remaining, len(unlabeled))
            chosen.extend(int(v) for v in rng.choice(unlabeled, size=take, replace=False))
        return self._attach_labels(chosen, label_map)
