"""Registry mapping the paper's method names to selector instances."""

from __future__ import annotations

from repro.selection.base import NeighborSelector, VanillaSelector
from repro.selection.random_khop import KHopRandomSelector
from repro.selection.sns import SNSSelector

#: Method names in the paper's presentation order.
METHOD_NAMES: tuple[str, ...] = ("vanilla", "1-hop", "2-hop", "sns")


def make_selector(name: str) -> NeighborSelector:
    """Create the selector for a benchmark method name.

    Accepted names (case-insensitive): ``vanilla`` (zero-shot), ``1-hop``,
    ``2-hop`` (random k-hop), and ``sns``.
    """
    key = name.lower().replace("_", "-")
    if key in ("vanilla", "zero-shot", "vanilla-zero-shot"):
        return VanillaSelector()
    if key in ("1-hop", "1-hop-random", "1hop"):
        return KHopRandomSelector(k=1)
    if key in ("2-hop", "2-hop-random", "2hop"):
        return KHopRandomSelector(k=2)
    if key == "sns":
        return SNSSelector()
    raise ValueError(f"unknown method {name!r}; known: {METHOD_NAMES}")
