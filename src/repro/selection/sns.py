"""Similarity-based Neighbor Selection (SNS) [Li et al., 2024].

SNS explores progressively farther hops (up to five) until it has gathered
enough *labeled* neighbors, then ranks them by the similarity between the
query node's text and each candidate's text, keeping the top ``M``.  The
original uses SimCSE embeddings; here similarity is cosine over the graph's
encoded features (see DESIGN.md's substitution table).  When no labeled
node is reachable within five hops, SNS falls back to random unlabeled
1-hop neighbors so the query still gets some context.
"""

from __future__ import annotations

import numpy as np

from repro.graph.tag import TextAttributedGraph
from repro.selection.base import NeighborSelector, SelectedNeighbor
from repro.text.similarity import top_k_similar


class SNSSelector(NeighborSelector):
    """Progressive-hop labeled-neighbor search with similarity ranking."""

    similarity_ranked = True

    def __init__(self, max_hops: int = 5):
        if max_hops < 1:
            raise ValueError(f"max_hops must be >= 1, got {max_hops}")
        self.max_hops = max_hops

    def label_support(self, graph: TextAttributedGraph, node: int) -> frozenset[int]:
        # Every label_map read — the per-layer labeled test, the stop
        # condition, and the unlabeled-1-hop fallback — touches only nodes
        # inside the BFS layers; similarity ranking reads features, not
        # labels.
        support = {int(node)}
        for layer in graph.bfs_layers(node, self.max_hops).values():
            support.update(int(v) for v in layer)
        return frozenset(support)

    def select(
        self,
        graph: TextAttributedGraph,
        node: int,
        label_map: dict[int, int],
        max_neighbors: int,
        rng: np.random.Generator,
    ) -> list[SelectedNeighbor]:
        if max_neighbors < 0:
            raise ValueError("max_neighbors must be >= 0")
        if max_neighbors == 0:
            return []
        layers = graph.bfs_layers(node, self.max_hops)
        labeled: list[int] = []
        first_hop: np.ndarray | None = layers.get(1)
        for hop in sorted(layers):
            labeled.extend(int(v) for v in layers[hop] if v in label_map)
            if len(labeled) >= max_neighbors:
                break
        if not labeled:
            if first_hop is None or first_hop.size == 0:
                return []
            take = min(max_neighbors, int(first_hop.size))
            fallback = [int(v) for v in rng.choice(first_hop, size=take, replace=False)]
            return self._attach_labels(fallback, label_map)
        candidates = np.asarray(labeled, dtype=np.int64)
        ranked = top_k_similar(
            graph.features[node], graph.features[candidates], k=max_neighbors
        )
        chosen = [int(candidates[i]) for i in ranked]
        return self._attach_labels(chosen, label_map)
