"""Text substrate: tokenization, synthetic vocabularies and corpora, encoders.

This package stands in for the text tooling the paper relies on (tiktoken
token counting, raw paper text, SimCSE sentence embeddings).  Everything is
deterministic given a seed so experiments are exactly reproducible.
"""

from repro.text.encoders import BagOfWordsEncoder, HashingEncoder, TfidfEncoder
from repro.text.similarity import cosine_similarity, pairwise_cosine, top_k_similar
from repro.text.tokenizer import Tokenizer, count_tokens
from repro.text.vocabulary import ClassVocabulary, WordFactory
from repro.text.corpus import NodeText, TextSynthesizer

__all__ = [
    "Tokenizer",
    "count_tokens",
    "WordFactory",
    "ClassVocabulary",
    "TextSynthesizer",
    "NodeText",
    "BagOfWordsEncoder",
    "TfidfEncoder",
    "HashingEncoder",
    "cosine_similarity",
    "pairwise_cosine",
    "top_k_similar",
]
