"""Synthesis of node text (titles and abstracts) for synthetic TAGs.

Each node's text is a mixture of three word sources:

* its **own class keywords**, with mixing weight proportional to the node's
  *clarity* — the knob that makes a node saturated (text alone suffices) or
  non-saturated;
* **confuser keywords** from one other class, which create genuinely
  ambiguous nodes (the hard cases where neighbor information helps);
* **background words**, topic-neutral filler that pads the text to a
  realistic length (and realistic token cost).

Titles are short and denser in keywords than abstracts, matching how the
paper's prompt templates use neighbor *titles* as cheap-but-informative cues.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.text.vocabulary import ClassVocabulary


@dataclass(frozen=True)
class NodeText:
    """Text attribute of one node: a title and an abstract."""

    title: str
    abstract: str

    @property
    def full(self) -> str:
        return f"{self.title}. {self.abstract}"


class TextSynthesizer:
    """Generate titles/abstracts with controllable label signal.

    Parameters
    ----------
    vocabulary:
        The class/background vocabulary to draw words from.
    title_words:
        Mean number of words in a title.
    abstract_words:
        Mean number of words in an abstract.
    title_keyword_density:
        Fraction of title words that are keyword slots (the rest are
        background) before clarity weighting.
    abstract_keyword_density:
        Same for abstracts; lower, since abstracts are mostly filler.
    """

    def __init__(
        self,
        vocabulary: ClassVocabulary,
        title_words: int = 10,
        abstract_words: int = 110,
        title_keyword_density: float = 0.55,
        abstract_keyword_density: float = 0.28,
    ):
        if title_words < 1 or abstract_words < 1:
            raise ValueError("title/abstract lengths must be >= 1")
        for name, value in (
            ("title_keyword_density", title_keyword_density),
            ("abstract_keyword_density", abstract_keyword_density),
        ):
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        self.vocabulary = vocabulary
        self.title_words = title_words
        self.abstract_words = abstract_words
        self.title_keyword_density = title_keyword_density
        self.abstract_keyword_density = abstract_keyword_density

    def _keyword_pool(self, label: int, confuser: int, clarity: float, rng: np.random.Generator, n: int) -> list[str]:
        """Draw ``n`` keyword-slot words: own-class w.p. ``clarity`` else confuser."""
        vocab = self.vocabulary
        own = vocab.class_words[label]
        other = vocab.class_words[confuser]
        own_mask = rng.random(n) < clarity
        own_idx = rng.integers(len(own), size=n)
        other_idx = rng.integers(len(other), size=n)
        return [own[own_idx[i]] if own_mask[i] else other[other_idx[i]] for i in range(n)]

    def _compose(
        self,
        label: int,
        confuser: int,
        clarity: float,
        rng: np.random.Generator,
        length: int,
        keyword_density: float,
    ) -> str:
        n_keywords = max(1, int(round(length * keyword_density)))
        n_background = max(0, length - n_keywords)
        words = self._keyword_pool(label, confuser, clarity, rng, n_keywords)
        background = self.vocabulary.background_words
        bg_idx = rng.integers(len(background), size=n_background)
        words.extend(background[i] for i in bg_idx)
        rng.shuffle(words)
        return " ".join(words)

    def synthesize(
        self,
        label: int,
        clarity: float,
        rng: np.random.Generator,
        length_jitter: float = 0.2,
        title_clarity_shift: float = 0.0,
        confuser: int | None = None,
    ) -> NodeText:
        """Generate one node's text.

        Parameters
        ----------
        label:
            Ground-truth class of the node.
        clarity:
            In ``[0, 1]``; probability that each keyword slot uses the node's
            own class vocabulary instead of the confuser class.
        rng:
            Node-scoped generator (determinism is the caller's concern).
        length_jitter:
            Relative +/- range applied to the mean lengths.
        title_clarity_shift:
            Added to ``clarity`` for the *title only* (clamped to [0, 1]).
            Domains like Pubmed/Ogbn-Arxiv have titles that index poorly onto
            their fine-grained classes; a negative shift reproduces that, and
            with it the paper's observation that neighbor titles can be noise.
        confuser:
            Class whose keywords fill the non-own keyword slots.  ``None``
            draws a uniform other class; generators with sibling-confusion
            structure pass a fixed related class instead (cs.AI texts confuse
            toward cs.LG, not toward cs.OS).
        """
        if not 0.0 <= clarity <= 1.0:
            raise ValueError(f"clarity must be in [0, 1], got {clarity}")
        title_clarity = min(1.0, max(0.0, clarity + title_clarity_shift))
        num_classes = self.vocabulary.num_classes
        if not 0 <= label < num_classes:
            raise ValueError(f"label {label} out of range for {num_classes} classes")
        if confuser is None:
            if num_classes == 1:
                confuser = label
            else:
                confuser = int(rng.integers(num_classes - 1))
                if confuser >= label:
                    confuser += 1
        elif not 0 <= confuser < num_classes:
            raise ValueError(f"confuser {confuser} out of range for {num_classes} classes")

        def jittered(mean: int) -> int:
            low = max(1, int(mean * (1 - length_jitter)))
            high = max(low + 1, int(mean * (1 + length_jitter)) + 1)
            return int(rng.integers(low, high))

        title = self._compose(
            label, confuser, title_clarity, rng, jittered(self.title_words), self.title_keyword_density
        )
        abstract = self._compose(
            label, confuser, clarity, rng, jittered(self.abstract_words), self.abstract_keyword_density
        )
        return NodeText(title=title, abstract=abstract)
