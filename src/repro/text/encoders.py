"""Text-to-feature encoders (BoW, TF-IDF, feature hashing).

These replace the shallow encoders the paper's datasets ship with (Cora's
1433-dim bag-of-words, Pubmed's TF-IDF, OGB's fixed-width embeddings).  Every
encoder maps a list of documents to a dense ``(n_docs, dim)`` float32 matrix,
which feeds both the surrogate MLP classifier of the token-pruning strategy
and the similarity ranking of the SNS neighbor selector.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.text.tokenizer import Tokenizer


class BagOfWordsEncoder:
    """Binary/count bag-of-words over the ``dim`` most frequent words.

    Parameters
    ----------
    dim:
        Feature dimensionality (vocabulary is truncated to the ``dim`` most
        frequent corpus words, ties broken alphabetically for determinism).
    binary:
        If true (the default, matching Cora-style features), entries are 0/1;
        otherwise raw counts.
    """

    def __init__(self, dim: int, binary: bool = True, tokenizer: Tokenizer | None = None):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = dim
        self.binary = binary
        self.tokenizer = tokenizer or Tokenizer()
        self.vocabulary_: dict[str, int] | None = None

    def fit(self, documents: list[str]) -> "BagOfWordsEncoder":
        """Learn the truncated vocabulary from ``documents``."""
        counts: Counter[str] = Counter()
        for doc in documents:
            counts.update(self.tokenizer.words(doc))
        # Sort by (-frequency, word) for a deterministic vocabulary.
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[: self.dim]
        self.vocabulary_ = {word: i for i, (word, _) in enumerate(ranked)}
        return self

    def transform(self, documents: list[str]) -> np.ndarray:
        """Encode ``documents`` into a ``(n, dim)`` float32 matrix."""
        if self.vocabulary_ is None:
            raise RuntimeError("encoder is not fitted; call fit() first")
        out = np.zeros((len(documents), self.dim), dtype=np.float32)
        for row, doc in enumerate(documents):
            for word in self.tokenizer.words(doc):
                col = self.vocabulary_.get(word)
                if col is not None:
                    if self.binary:
                        out[row, col] = 1.0
                    else:
                        out[row, col] += 1.0
        return out

    def fit_transform(self, documents: list[str]) -> np.ndarray:
        return self.fit(documents).transform(documents)


class TfidfEncoder:
    """TF-IDF over the ``dim`` most frequent words, L2-normalized rows."""

    def __init__(self, dim: int, tokenizer: Tokenizer | None = None):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = dim
        self.tokenizer = tokenizer or Tokenizer()
        self.vocabulary_: dict[str, int] | None = None
        self.idf_: np.ndarray | None = None

    def fit(self, documents: list[str]) -> "TfidfEncoder":
        counts: Counter[str] = Counter()
        doc_freq: Counter[str] = Counter()
        for doc in documents:
            words = self.tokenizer.words(doc)
            counts.update(words)
            doc_freq.update(set(words))
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[: self.dim]
        self.vocabulary_ = {word: i for i, (word, _) in enumerate(ranked)}
        n_docs = max(1, len(documents))
        idf = np.zeros(self.dim, dtype=np.float32)
        for word, i in self.vocabulary_.items():
            idf[i] = np.log((1.0 + n_docs) / (1.0 + doc_freq[word])) + 1.0
        self.idf_ = idf
        return self

    def transform(self, documents: list[str]) -> np.ndarray:
        if self.vocabulary_ is None or self.idf_ is None:
            raise RuntimeError("encoder is not fitted; call fit() first")
        out = np.zeros((len(documents), self.dim), dtype=np.float32)
        for row, doc in enumerate(documents):
            for word in self.tokenizer.words(doc):
                col = self.vocabulary_.get(word)
                if col is not None:
                    out[row, col] += 1.0
        out *= self.idf_[None, :]
        norms = np.linalg.norm(out, axis=1, keepdims=True)
        np.divide(out, norms, out=out, where=norms > 0)
        return out

    def fit_transform(self, documents: list[str]) -> np.ndarray:
        return self.fit(documents).transform(documents)


class LSAEncoder:
    """Latent semantic analysis: TF-IDF over the full vocabulary, then
    truncated SVD down to ``dim`` components.

    This is the closest offline stand-in for the dense embedding features
    the OGB datasets ship (averaged word embeddings): a low-dimensional
    topical projection that preserves class structure far better than
    feature hashing at the same dimensionality.

    Parameters
    ----------
    dim:
        Output dimensionality.
    min_df:
        Minimum document frequency for a word to enter the vocabulary.
        Rare words (idiosyncratic jargon, typos) carry no topical structure
        but would blow the decomposition up quadratically; 3 drops them.
    max_vocab:
        Hard cap on vocabulary size (most-frequent-first), bounding the
        dense gram matrix the decomposition runs on.
    """

    def __init__(
        self,
        dim: int,
        tokenizer: Tokenizer | None = None,
        min_df: int = 3,
        max_vocab: int = 8192,
    ):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if min_df < 1:
            raise ValueError(f"min_df must be >= 1, got {min_df}")
        if max_vocab < dim:
            raise ValueError("max_vocab must be >= dim")
        self.dim = dim
        self.min_df = min_df
        self.max_vocab = max_vocab
        self.tokenizer = tokenizer or Tokenizer()
        self.vocabulary_: dict[str, int] | None = None
        self.idf_: np.ndarray | None = None
        self.components_: np.ndarray | None = None

    def _tfidf_sparse(self, documents: list[str], fitting: bool):
        import scipy.sparse as sp

        if fitting:
            counts: Counter[str] = Counter()
            doc_freq: Counter[str] = Counter()
            for doc in documents:
                words = self.tokenizer.words(doc)
                counts.update(words)
                doc_freq.update(set(words))
            ranked = sorted(
                (kv for kv in counts.items() if doc_freq[kv[0]] >= self.min_df),
                key=lambda kv: (-kv[1], kv[0]),
            )[: self.max_vocab]
            self.vocabulary_ = {word: i for i, (word, _) in enumerate(ranked)}
            n_docs = max(1, len(documents))
            idf = np.zeros(len(self.vocabulary_), dtype=np.float64)
            for word, i in self.vocabulary_.items():
                idf[i] = np.log((1.0 + n_docs) / (1.0 + doc_freq[word])) + 1.0
            self.idf_ = idf
        rows, cols, vals = [], [], []
        for r, doc in enumerate(documents):
            local: Counter[str] = Counter(self.tokenizer.words(doc))
            for word, count in local.items():
                c = self.vocabulary_.get(word)
                if c is not None:
                    rows.append(r)
                    cols.append(c)
                    vals.append(float(count) * self.idf_[c])
        matrix = sp.csr_matrix(
            (vals, (rows, cols)), shape=(len(documents), len(self.vocabulary_))
        )
        norms = np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=1))).ravel()
        norms[norms == 0] = 1.0
        return sp.diags(1.0 / norms) @ matrix

    def fit_transform(self, documents: list[str]) -> np.ndarray:
        matrix = self._tfidf_sparse(documents, fitting=True)
        if not self.vocabulary_:
            raise ValueError(
                f"no word appears in >= {self.min_df} documents; corpus too small for LSA"
            )
        k = min(self.dim, min(matrix.shape) - 1)
        if k < 1:
            raise ValueError("corpus too small for LSA")
        # Deterministic LSA via the (m, m) gram matrix: the top-k
        # eigenvectors of XᵀX are the right singular vectors of X.  (svds
        # would be faster but is start-vector dependent run to run.)
        gram = np.asarray((matrix.T @ matrix).todense(), dtype=np.float64)
        eigvals, eigvecs = np.linalg.eigh(gram)
        top = np.argsort(eigvals)[::-1][:k]
        components = eigvecs[:, top].T
        # Fix each component's sign so encoding is unambiguous.
        for row in components:
            pivot = np.argmax(np.abs(row))
            if row[pivot] < 0:
                row *= -1.0
        self.components_ = components
        out = np.asarray(matrix @ components.T, dtype=np.float32)
        if out.shape[1] < self.dim:
            out = np.pad(out, ((0, 0), (0, self.dim - out.shape[1])))
        return out

    def fit(self, documents: list[str]) -> "LSAEncoder":
        self.fit_transform(documents)
        return self

    def transform(self, documents: list[str]) -> np.ndarray:
        if self.components_ is None:
            raise RuntimeError("encoder is not fitted; call fit() first")
        matrix = self._tfidf_sparse(documents, fitting=False)
        out = np.asarray(matrix @ self.components_.T, dtype=np.float32)
        if out.shape[1] < self.dim:
            out = np.pad(out, ((0, 0), (0, self.dim - out.shape[1])))
        return out


class HashingEncoder:
    """Stateless feature hashing into ``dim`` buckets with sign hashing.

    Needs no fit pass, so it suits large corpora (the Ogbn-scale replicas)
    where building an explicit vocabulary would be wasteful.
    """

    def __init__(self, dim: int, tokenizer: Tokenizer | None = None, seed: int = 0):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = dim
        self.seed = seed
        self.tokenizer = tokenizer or Tokenizer()

    def _bucket(self, word: str) -> tuple[int, float]:
        from repro.utils.rng import stable_hash

        h = stable_hash(self.seed, word)
        return h % self.dim, 1.0 if (h >> 32) & 1 else -1.0

    def transform(self, documents: list[str]) -> np.ndarray:
        out = np.zeros((len(documents), self.dim), dtype=np.float32)
        for row, doc in enumerate(documents):
            for word in self.tokenizer.words(doc):
                col, sign = self._bucket(word)
                out[row, col] += sign
        norms = np.linalg.norm(out, axis=1, keepdims=True)
        np.divide(out, norms, out=out, where=norms > 0)
        return out

    def fit(self, documents: list[str]) -> "HashingEncoder":
        """No-op, for API parity with the fitted encoders."""
        return self

    def fit_transform(self, documents: list[str]) -> np.ndarray:
        return self.transform(documents)
