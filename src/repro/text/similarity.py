"""Cosine-similarity utilities (the SimCSE substitute for SNS ranking).

The SNS neighbor selector [27] ranks candidate labeled neighbors by the
similarity of their text to the query node's text.  The paper uses SimCSE
embeddings; this module provides the same ranking primitive over any vector
representation (TF-IDF by default in this repo).
"""

from __future__ import annotations

import numpy as np


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two 1-D vectors (0.0 if either is zero)."""
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(a @ b / (na * nb))


def pairwise_cosine(query: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Cosine similarity of one query vector against rows of ``candidates``.

    Zero rows (empty documents) get similarity 0.
    """
    query = np.asarray(query, dtype=float).ravel()
    candidates = np.asarray(candidates, dtype=float)
    if candidates.ndim != 2 or candidates.shape[1] != query.shape[0]:
        raise ValueError(f"candidates must be (n, {query.shape[0]}), got {candidates.shape}")
    qn = np.linalg.norm(query)
    if qn == 0.0:
        return np.zeros(candidates.shape[0])
    cn = np.linalg.norm(candidates, axis=1)
    sims = candidates @ query
    out = np.zeros(candidates.shape[0])
    nonzero = cn > 0
    out[nonzero] = sims[nonzero] / (cn[nonzero] * qn)
    return out


def top_k_similar(query: np.ndarray, candidates: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` most similar candidate rows, best first.

    Ties are broken by candidate index for determinism.  ``k`` larger than the
    candidate count returns all candidates ranked.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    sims = pairwise_cosine(query, candidates)
    order = np.lexsort((np.arange(sims.shape[0]), -sims))
    return order[:k]
