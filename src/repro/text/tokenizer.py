"""Deterministic tokenizer used for all token accounting.

The paper budgets queries in GPT BPE tokens.  We cannot ship tiktoken in an
offline build, so this module implements a small deterministic tokenizer with
the same coarse behaviour: words are split on whitespace/punctuation,
punctuation marks count as their own tokens, and long words are broken into
sub-word pieces (real BPE splits rare long words into several tokens).  On
English-like text this averages roughly four characters per token, matching
the rule of thumb used for GPT models.
"""

from __future__ import annotations

import re
from functools import lru_cache

_WORD_RE = re.compile(r"[A-Za-z0-9]+|[^\sA-Za-z0-9]")

#: Maximum characters per sub-word piece.  Words longer than this are split
#: into consecutive chunks, mimicking byte-pair encodings of rare words.
_MAX_PIECE_LEN = 6


class Tokenizer:
    """Word/sub-word tokenizer with deterministic output.

    Parameters
    ----------
    max_piece_len:
        Longest sub-word piece emitted; longer alphanumeric runs are split
        into consecutive chunks of at most this length.
    lowercase:
        Whether tokens are lower-cased (the default, since class-keyword
        matching in the simulated LLM is case-insensitive).
    """

    def __init__(self, max_piece_len: int = _MAX_PIECE_LEN, lowercase: bool = True):
        if max_piece_len < 1:
            raise ValueError(f"max_piece_len must be >= 1, got {max_piece_len}")
        self.max_piece_len = max_piece_len
        self.lowercase = lowercase

    def tokenize(self, text: str) -> list[str]:
        """Split ``text`` into tokens (sub-word pieces and punctuation)."""
        if self.lowercase:
            text = text.lower()
        tokens: list[str] = []
        for match in _WORD_RE.finditer(text):
            piece = match.group(0)
            if len(piece) <= self.max_piece_len:
                tokens.append(piece)
            else:
                for start in range(0, len(piece), self.max_piece_len):
                    tokens.append(piece[start : start + self.max_piece_len])
        return tokens

    def words(self, text: str) -> list[str]:
        """Split ``text`` into whole alphanumeric words (no sub-word pieces).

        Used by the simulated LLM for vocabulary matching, where splitting a
        keyword into pieces would destroy the match.
        """
        if self.lowercase:
            text = text.lower()
        return [m.group(0) for m in _WORD_RE.finditer(text) if m.group(0)[0].isalnum()]

    def count(self, text: str) -> int:
        """Number of tokens in ``text``."""
        return len(self.tokenize(text))


@lru_cache(maxsize=1)
def _default_tokenizer() -> Tokenizer:
    return Tokenizer()


def count_tokens(text: str) -> int:
    """Count tokens with the library-default :class:`Tokenizer`."""
    return _default_tokenizer().count(text)
