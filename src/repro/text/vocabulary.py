"""Synthetic vocabularies with class-conditional keywords.

Real TAG datasets carry label signal in their node text: a paper about
reinforcement learning uses RL jargon, a diabetes paper uses medical terms.
The synthetic corpora reproduce this by giving every class its own keyword
vocabulary plus a shared background vocabulary.  A node's *clarity* (how much
of its text is drawn from its own class vocabulary) then controls how
predictable its label is from its text alone — the quantity the paper's
saturated/non-saturated distinction rests on.

Words are synthesized from syllables so corpora of any size can be built
offline while remaining pronounceable and, importantly, collision-free across
vocabularies (each word belongs to exactly one vocabulary).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import spawn_rng

_ONSETS = [
    "b", "br", "c", "ch", "cl", "d", "dr", "f", "fl", "g", "gr", "h", "j",
    "k", "kr", "l", "m", "n", "p", "pl", "pr", "qu", "r", "s", "sc", "sh",
    "sl", "sp", "st", "str", "t", "th", "tr", "v", "w", "z",
]
_NUCLEI = ["a", "e", "i", "o", "u", "ai", "ea", "ee", "io", "oa", "ou"]
_CODAS = ["", "b", "ck", "d", "g", "l", "m", "n", "nd", "ng", "nt", "p", "r", "rd", "s", "st", "t", "x"]


class WordFactory:
    """Deterministic generator of unique pseudo-English words.

    Parameters
    ----------
    seed:
        Base seed; two factories with the same seed emit the same words.
    min_syllables, max_syllables:
        Inclusive range of syllables per word.
    """

    def __init__(self, seed: int, min_syllables: int = 2, max_syllables: int = 4):
        if not 1 <= min_syllables <= max_syllables:
            raise ValueError("require 1 <= min_syllables <= max_syllables")
        self._rng = spawn_rng(seed, "word-factory")
        self._seen: set[str] = set()
        self.min_syllables = min_syllables
        self.max_syllables = max_syllables

    def _syllable(self) -> str:
        rng = self._rng
        return (
            _ONSETS[rng.integers(len(_ONSETS))]
            + _NUCLEI[rng.integers(len(_NUCLEI))]
            + _CODAS[rng.integers(len(_CODAS))]
        )

    def make_word(self) -> str:
        """Return a new word not produced by this factory before."""
        for _ in range(1000):
            n = int(self._rng.integers(self.min_syllables, self.max_syllables + 1))
            word = "".join(self._syllable() for _ in range(n))
            if word not in self._seen:
                self._seen.add(word)
                return word
        raise RuntimeError("word factory exhausted; increase syllable range")

    def make_words(self, count: int) -> list[str]:
        """Return ``count`` fresh unique words."""
        return [self.make_word() for _ in range(count)]


@dataclass
class ClassVocabulary:
    """Per-class keyword vocabularies plus a shared background vocabulary.

    Attributes
    ----------
    class_names:
        Human-readable label names (e.g. Cora's ``Case_Based`` ... ``Theory``).
    class_words:
        ``class_words[k]`` is the keyword list of class ``k``.
    background_words:
        Topic-neutral filler words shared by all classes.
    """

    class_names: list[str]
    class_words: list[list[str]]
    background_words: list[str]
    _word_class: dict[str, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.class_names) != len(self.class_words):
            raise ValueError("class_names and class_words must align")
        self._word_class = {}
        for k, words in enumerate(self.class_words):
            for w in words:
                if w in self._word_class:
                    raise ValueError(f"keyword {w!r} assigned to two classes")
                self._word_class[w] = k
        overlap = set(self.background_words) & set(self._word_class)
        if overlap:
            raise ValueError(f"background words overlap class keywords: {sorted(overlap)[:3]}")

    @property
    def num_classes(self) -> int:
        return len(self.class_names)

    def class_of_word(self, word: str) -> int | None:
        """Class index owning ``word``, or ``None`` for background/unknown."""
        return self._word_class.get(word)

    def evidence(self, words: list[str]) -> np.ndarray:
        """Count class-keyword occurrences in ``words``.

        Returns a ``(num_classes,)`` float vector of raw keyword counts; this
        is the "semantic comprehension" primitive the simulated LLM builds on.
        """
        counts = np.zeros(self.num_classes, dtype=float)
        for w in words:
            k = self._word_class.get(w)
            if k is not None:
                counts[k] += 1.0
        return counts

    @classmethod
    def build(
        cls,
        class_names: list[str],
        seed: int,
        words_per_class: int = 60,
        background_size: int = 400,
    ) -> "ClassVocabulary":
        """Synthesize a vocabulary with the given shape."""
        if not class_names:
            raise ValueError("need at least one class")
        factory = WordFactory(seed)
        class_words = [factory.make_words(words_per_class) for _ in class_names]
        background = factory.make_words(background_size)
        return cls(list(class_names), class_words, background)
