"""Shared utilities: deterministic RNG derivation, validation, logging."""

from repro.utils.rng import derive_seed, spawn_rng, stable_hash
from repro.utils.validation import (
    check_fraction,
    check_in,
    check_nonnegative,
    check_positive,
    check_probability_vector,
)

__all__ = [
    "derive_seed",
    "spawn_rng",
    "stable_hash",
    "check_fraction",
    "check_in",
    "check_nonnegative",
    "check_positive",
    "check_probability_vector",
]
