"""Deterministic random-number helpers.

All stochastic components in this library (graph generation, text synthesis,
the simulated LLM's per-query noise) must be reproducible run-to-run and
independent of each other.  Python's built-in ``hash`` is salted per process,
so we derive child seeds from a stable BLAKE2 digest instead.
"""

from __future__ import annotations

import hashlib

import numpy as np

_SEED_MASK = (1 << 63) - 1


def stable_hash(*parts: object) -> int:
    """Return a process-stable 63-bit hash of the given parts.

    Parts are converted with ``repr`` and joined with an unlikely separator,
    so ``stable_hash("ab", "c") != stable_hash("a", "bc")``.
    """
    payload = "\x1f".join(repr(p) for p in parts).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") & _SEED_MASK


def derive_seed(base_seed: int, *scope: object) -> int:
    """Derive a child seed from ``base_seed`` and a scope description.

    Distinct scopes yield (with overwhelming probability) distinct seeds, and
    the same scope always yields the same seed.
    """
    return stable_hash(int(base_seed), *scope)


def spawn_rng(base_seed: int, *scope: object) -> np.random.Generator:
    """Create an independent ``numpy`` generator for ``scope``."""
    return np.random.default_rng(derive_seed(base_seed, *scope))
