"""Small argument-validation helpers used across the library.

These raise ``ValueError`` with consistent, descriptive messages so that
misuse fails at the public API boundary rather than deep inside numpy code.
"""

from __future__ import annotations

from collections.abc import Collection

import numpy as np


def check_positive(name: str, value: float) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    """Require ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_fraction(name: str, value: float) -> None:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")


def check_in(name: str, value: object, allowed: Collection[object]) -> None:
    """Require ``value`` to be one of ``allowed``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {sorted(map(str, allowed))}, got {value!r}")


def check_probability_vector(name: str, vector: np.ndarray, atol: float = 1e-6) -> None:
    """Require a 1-D vector of non-negative entries summing to one."""
    arr = np.asarray(vector, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if (arr < -atol).any():
        raise ValueError(f"{name} must be non-negative")
    total = float(arr.sum())
    if abs(total - 1.0) > atol:
        raise ValueError(f"{name} must sum to 1, got {total}")
