"""Terminal visualization: ASCII bar charts, line plots, sparklines."""

from repro.viz.ascii_charts import bar_chart, line_plot, sparkline

__all__ = ["bar_chart", "line_plot", "sparkline"]
