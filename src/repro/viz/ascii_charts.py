"""Dependency-free ASCII charts for experiment output.

The paper's Figs. 3, 7 and 8 are bar and line charts; these helpers render
their reproduced series directly in the terminal so benchmark output can be
eyeballed against the paper without a plotting stack.
"""

from __future__ import annotations

from collections.abc import Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_BAR_CHAR = "█"


def _check_series(values: Sequence[float]) -> list[float]:
    out = [float(v) for v in values]
    if not out:
        raise ValueError("series must be non-empty")
    return out


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline, e.g. ``▁▃▆█▆▃``."""
    vals = _check_series(values)
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _SPARK_LEVELS[0] * len(vals)
    span = hi - lo
    chars = []
    for v in vals:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[idx])
    return "".join(chars)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart with aligned labels and value annotations."""
    vals = _check_series(values)
    if len(labels) != len(vals):
        raise ValueError("labels and values must align")
    if width < 1:
        raise ValueError("width must be >= 1")
    peak = max(max(vals), 0.0)
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, vals):
        if value < 0:
            raise ValueError("bar_chart requires non-negative values")
        filled = 0 if peak == 0 else int(round(value / peak * width))
        lines.append(f"{str(label).rjust(label_width)} | {_BAR_CHAR * filled} {value:g}{unit}")
    return "\n".join(lines)


def line_plot(
    series: dict[str, Sequence[float]],
    x_labels: Sequence[str] | None = None,
    height: int = 10,
    title: str | None = None,
) -> str:
    """Multi-series character plot (one glyph per series).

    All series must share a length; the y-axis spans the pooled min/max.
    Points from different series landing on the same cell show the later
    series' glyph.
    """
    if not series:
        raise ValueError("need at least one series")
    if height < 2:
        raise ValueError("height must be >= 2")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must share a length")
    (n,) = lengths
    if n == 0:
        raise ValueError("series must be non-empty")
    if x_labels is not None and len(x_labels) != n:
        raise ValueError("x_labels must align with the series length")

    glyphs = "ox*+#@"
    pooled = [float(v) for vals in series.values() for v in vals]
    lo, hi = min(pooled), max(pooled)
    span = hi - lo if hi > lo else 1.0
    grid = [[" "] * n for _ in range(height)]
    for gi, (name, vals) in enumerate(series.items()):
        glyph = glyphs[gi % len(glyphs)]
        for x, v in enumerate(vals):
            y = int(round((float(v) - lo) / span * (height - 1)))
            grid[height - 1 - y][x] = glyph

    lines = [title] if title else []
    for row_index, row in enumerate(grid):
        y_value = hi - span * row_index / (height - 1)
        lines.append(f"{y_value:8.1f} | " + "  ".join(row))
    if x_labels is not None:
        lines.append(" " * 11 + "  ".join(str(x)[:2].ljust(1) for x in x_labels))
    legend = "   ".join(f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(series))
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
