"""Shared fixtures: a small, fast synthetic TAG plus wired engines.

The ``tiny`` fixtures use a purpose-built 320-node graph (not a dataset
replica) so unit tests run in milliseconds; the session scope means the
graph is generated once per test run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import GeneratedTag, GeneratorConfig, generate_tag
from repro.graph.splits import LabeledSplit, make_split
from repro.llm.simulated import SimulatedLLM
from repro.prompts.builder import PromptBuilder
from repro.runtime.engine import MultiQueryEngine
from repro.selection.registry import make_selector

TINY_CLASSES = ("Alpha", "Beta", "Gamma", "Delta")


@pytest.fixture(scope="session")
def tiny_config() -> GeneratorConfig:
    return GeneratorConfig(
        class_names=TINY_CLASSES,
        num_nodes=320,
        num_edges=900,
        homophily=0.8,
        clear_fraction=0.6,
        feature_dim=96,
        title_words=8,
        abstract_words=40,
        name="tiny",
    )


@pytest.fixture(scope="session")
def tiny_tag(tiny_config: GeneratorConfig) -> GeneratedTag:
    return generate_tag(tiny_config, seed=42)


@pytest.fixture(scope="session")
def tiny_graph(tiny_tag: GeneratedTag):
    return tiny_tag.graph


@pytest.fixture(scope="session")
def tiny_split(tiny_graph) -> LabeledSplit:
    return make_split(tiny_graph, num_queries=80, labeled_per_class=10, seed=3)


@pytest.fixture(scope="session")
def tiny_builder(tiny_graph) -> PromptBuilder:
    return PromptBuilder(tiny_graph.class_names, "paper", "citation", "Abstract")


@pytest.fixture()
def tiny_llm(tiny_tag: GeneratedTag) -> SimulatedLLM:
    return SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5)


@pytest.fixture()
def make_tiny_engine(tiny_graph, tiny_split, tiny_builder, tiny_tag):
    """Factory for fresh engines on the tiny graph."""

    def factory(method: str = "1-hop", llm: SimulatedLLM | None = None, **kwargs) -> MultiQueryEngine:
        return MultiQueryEngine(
            graph=tiny_graph,
            llm=llm or SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5),
            selector=make_selector(method),
            builder=tiny_builder,
            labeled=tiny_split.labeled,
            max_neighbors=kwargs.pop("max_neighbors", 4),
            seed=kwargs.pop("seed", 9),
            **kwargs,
        )

    return factory


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
