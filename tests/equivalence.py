"""Reusable serial-vs-batched equivalence harness.

The batched scheduler's core promise is that simulated-mode dispatch is
**bit-identical to serial execution**: same records, same round structure,
same ledger charges, same checkpoint bytes, same trace spans, same metrics
(minus the scheduler's own ``repro_scheduler_*`` families, which only exist
when a scheduler runs).  This module turns that promise into a reusable
assertion:

- :class:`Scenario` describes one execution configuration — strategy,
  query count, failure injection, budget slack, cache, ladder, checkpoint,
  instrumentation — as plain data, so property-based tests can draw them.
- :func:`run_scenario` builds the full stack (flaky → retry → breaker →
  cache → engine, all on one :class:`SimulatedClock`) on the tiny test
  graph and executes it, returning a :class:`Capture` of every comparable
  artifact.
- :func:`assert_equivalent` compares two captures field by field with
  failure messages that name the first diverging artifact.

Tests use it as::

    serial  = run_scenario(scenario, tag, split, builder)
    batched = run_scenario(scenario, tag, split, builder,
                           scheduler=QueryScheduler(max_batch_size=4,
                                                    max_concurrency=3))
    assert_equivalent(serial, batched)

Thread-mode dispatch is *records/totals*-equal but not trace-equal (phase-1
calls interleave on real threads); pass ``compare_traces=False`` for it.
"""

from __future__ import annotations

import copy
import math
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.core.boosting import QueryBoostingStrategy
from repro.core.budget import BudgetLedger
from repro.graph.generators import GeneratedTag
from repro.graph.splits import LabeledSplit
from repro.io.runs import RunCheckpointer
from repro.llm.caching import CachingLLM
from repro.llm.reliability import FlakyLLM, LatencyLLM, SimulatedClock, resilient
from repro.llm.simulated import SimulatedLLM
from repro.mqo.compression import PromptCompressor
from repro.obs import Instrumentation, instrument_stack
from repro.prompts.builder import PromptBuilder
from repro.llm.profiles import make_model
from repro.runtime.chaos import ChaosController, FaultPlan
from repro.runtime.engine import MultiQueryEngine
from repro.runtime.fallback import DegradationLadder
from repro.runtime.router import CascadeRouter, EscalationPolicy, RouterTier
from repro.runtime.scheduler import QueryScheduler
from repro.runtime.serve import (
    AdmissionPolicy,
    ServeJournal,
    ServeReport,
    ServingLayer,
    TenantSpec,
    synthetic_stream,
)
from repro.selection.registry import make_selector

#: Metric families emitted only by the scheduler; stripped before comparing
#: a batched run's metrics snapshot against a serial run's.  The prefix-plan
#: counters exist only when a prefix-sharing scheduler runs, so they belong
#: to the same scheduler-own family set.
SCHEDULER_METRIC_PREFIXES = (
    "repro_scheduler_",
    "repro_prefix_prompt_tokens_total",
    "repro_shared_prompt_tokens_total",
)

#: Backward-compatible alias (the original single-prefix constant).
SCHEDULER_METRIC_PREFIX = "repro_scheduler_"


@dataclass(frozen=True)
class Scenario:
    """One execution configuration, as drawable plain data.

    ``strategy`` is one of ``"none"`` (plain run), ``"guard"``
    (:meth:`MultiQueryEngine.run_with_budget_guard`), ``"boost"``
    (Algorithm 2) — with ``prune_fraction > 0`` the plain/boosted runs see a
    pruned set, which for boosting is the joint strategy's wiring.
    ``budget_slack`` (guard only) sets the budget to
    ``floor * (1 + budget_slack)`` where ``floor`` is the all-zero-shot
    token floor, so every drawn scenario is feasible by construction.
    ``compress_fraction`` (plain runs only) marks the *last* fraction of
    the queries for the compressed MQO rung — disjoint from ``prune_set``'s
    first-fraction convention, so pruning and compression compose — and
    arms the engine with a seeded :class:`PromptCompressor` at
    ``compress_ratio``.
    """

    strategy: str = "none"
    num_queries: int = 12
    method: str = "1-hop"
    prune_fraction: float = 0.0
    budget_slack: float = 0.5
    failure_rate: float = 0.0
    max_attempts: int = 3
    use_ladder: bool = False
    use_cache: bool = False
    checkpoint: bool = False
    observe: bool = True
    route: bool = False
    compress_fraction: float = 0.0
    compress_ratio: float = 0.6

    def __post_init__(self):
        if self.strategy not in ("none", "guard", "boost"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if not 0.0 <= self.prune_fraction <= 1.0:
            raise ValueError("prune_fraction must be in [0, 1]")
        if not 0.0 <= self.compress_fraction <= 1.0:
            raise ValueError("compress_fraction must be in [0, 1]")
        if self.compress_fraction > 0 and self.strategy != "none":
            # Only engine.run() threads a ``compressed`` set through; the
            # guard and boosting own their include decisions.
            raise ValueError("compression scenarios require strategy 'none'")
        if self.failure_rate > 0 and not self.use_ladder and self.strategy != "boost":
            # Plain/guarded runs have no deferral path; without a ladder an
            # injected failure aborts the run and there is nothing to compare.
            raise ValueError("failure injection outside boosting needs a ladder")
        if self.route and (self.failure_rate > 0 or self.use_cache):
            # Flaky/cache wrappers sit on the engine's base llm, which routed
            # queries bypass — combining them would compare dead wrappers.
            raise ValueError("routing cannot combine with failure injection or cache")


@dataclass
class Capture:
    """Every comparable artifact of one executed scenario."""

    records: list[dict]
    rounds: list[list[int]] | None
    ledger: tuple[int, int] | None
    usage: tuple[int, int, int]
    clock_now: float | None
    trace: list[dict] | None
    trace_raw: list[dict] | None
    metrics: dict | None
    checkpoint_text: str | None
    cache_stats: dict | None
    flaky: tuple[int, int, int] | None
    scheduler_report: object | None
    router_stats: dict | None


def _normalize_trace(lines: list[dict]) -> list[dict]:
    """Strip the run id — the one field allowed to differ between runs."""
    out = []
    for line in lines:
        line = copy.deepcopy(line)
        line.pop("run_id", None)
        out.append(line)
    return out


def strip_readiness_attributes(lines: list[dict]) -> list[dict]:
    """Copy of trace lines minus the v3 ``dag_*`` readiness span attributes.

    The DAG dispatch plan's pipelined executor annotates batched query spans
    with ``dag_ready``/``dag_dispatched``/``dag_settled``/``dag_blocked_by``
    and wave spans with ``dag_pipelined`` — the *only* additive difference
    from a wave-threads trace.  Stripping them lets the differential oracle
    compare the two thread traces structurally, span for span.
    """
    out = []
    for line in lines:
        line = copy.deepcopy(line)
        attributes = line.get("attributes")
        if isinstance(attributes, dict):
            line["attributes"] = {
                key: value
                for key, value in attributes.items()
                if not key.startswith("dag_")
            }
        out.append(line)
    return out


def readiness_attribute_count(lines: list[dict]) -> int:
    """How many ``dag_*`` span attributes a trace carries (0 for wave traces)."""
    return sum(
        1
        for line in lines
        for key in (line.get("attributes") or {})
        if key.startswith("dag_")
    )


def strip_scheduler_metrics(snapshot: dict) -> dict:
    """Drop the scheduler-only families from a metrics snapshot."""
    snapshot = copy.deepcopy(snapshot)
    families = snapshot.get("families")
    if isinstance(families, dict):
        snapshot["families"] = {
            name: fam
            for name, fam in families.items()
            if not name.startswith(SCHEDULER_METRIC_PREFIXES)
        }
        return snapshot
    return {
        name: fam
        for name, fam in snapshot.items()
        if not name.startswith(SCHEDULER_METRIC_PREFIXES)
    }


def _zero_shot_floor(engine: MultiQueryEngine, nodes: list[int], reserve: int = 16) -> int:
    """Token floor of an all-pruned run (tokenizer only, no LLM calls)."""
    total = 0
    for node in nodes:
        prompt, _ = engine.build_prompt(node, include_neighbors=False)
        total += engine.llm.tokenizer.count(prompt) + reserve
    return total


def prune_set(queries: np.ndarray, fraction: float) -> frozenset[int]:
    """Deterministic pruned subset: the first ``fraction`` of the queries."""
    nodes = [int(v) for v in queries]
    return frozenset(nodes[: int(round(fraction * len(nodes)))])


def compress_set(queries: np.ndarray, fraction: float) -> frozenset[int]:
    """Deterministic compressed subset: the *last* ``fraction`` of the
    queries, so it never overlaps :func:`prune_set` unless the fractions sum
    past one (and ``pruned`` wins on overlap anyway)."""
    nodes = [int(v) for v in queries]
    return frozenset(nodes[len(nodes) - int(round(fraction * len(nodes))) :])


def run_scenario(
    scenario: Scenario,
    tag: GeneratedTag,
    split: LabeledSplit,
    builder: PromptBuilder,
    scheduler: QueryScheduler | None = None,
    checkpoint_path: str | Path | None = None,
    run_id: str = "equivalence",
    chaos_plan: FaultPlan | None = None,
) -> Capture:
    """Build the scenario's full stack on the tiny graph and execute it.

    Every piece of randomness is seeded identically across calls, so two
    invocations differ only in the ``scheduler`` argument — exactly the
    variable under test.  ``chaos_plan`` inserts a
    :class:`~repro.runtime.chaos.ChaosLLM` at the base of the stack; the
    chaos transparency contract says an **empty** plan must leave every
    captured artifact bit-identical to the unwrapped baseline.
    """
    if scenario.checkpoint and checkpoint_path is None:
        raise ValueError("scenario.checkpoint requires a checkpoint_path")
    queries = split.queries[: scenario.num_queries]
    nodes = [int(v) for v in queries]
    pruned = prune_set(queries, scenario.prune_fraction)
    compressed = compress_set(queries, scenario.compress_fraction)
    compressor = (
        PromptCompressor(target_ratio=scenario.compress_ratio, seed=23)
        if scenario.compress_fraction > 0
        else None
    )

    clock = SimulatedClock()
    base = SimulatedLLM(tag.vocabulary, name="gpt-3.5", seed=5)
    llm = base
    if chaos_plan is not None:
        controller = ChaosController(chaos_plan, clock=clock)
        llm = controller.wrap_llm(llm, model="gpt-3.5")
    flaky = None
    if scenario.failure_rate > 0:
        flaky = FlakyLLM(
            base,
            failure_rate=scenario.failure_rate,
            seed=13,
            charge_failed_prompts=True,
            key="prompt",  # order/thread-stable injection pattern
        )
        llm = resilient(
            flaky, max_attempts=scenario.max_attempts, seed=17, clock=clock
        )
    cache = None
    if scenario.use_cache:
        cache = CachingLLM(llm)
        llm = cache

    instr = None
    if scenario.observe:
        instr = Instrumentation(
            run_id=run_id,
            clock=clock,
            labels={"dataset": "tiny", "strategy": scenario.strategy, "model": "gpt-3.5"},
        )
        instrument_stack(llm, instr)

    router = None
    if scenario.route:
        # Cheap tier below the shared strong tier (``base``), so the strong
        # model's usage counters still witness every escalated call.  The
        # synthetic ``D(t_i)`` map is a pure function of the node id:
        # deterministic, spread across the entry threshold.
        cheap = make_model("gpt-4o-mini", tag.vocabulary, seed=21)
        router = CascadeRouter(
            [RouterTier("gpt-4o-mini", cheap), RouterTier("gpt-3.5", llm)],
            policy=EscalationPolicy(
                escalate_on="both",
                inadequacy_threshold=0.7,
                confidence_threshold=0.6,
            ),
            inadequacy={node: (node % 10) / 10.0 for node in nodes},
            class_names=list(tag.graph.class_names),
            observer=instr,
        )

    ledger = None
    ladder = DegradationLadder() if scenario.use_ladder else None
    engine = MultiQueryEngine(
        graph=tag.graph,
        llm=llm,
        selector=make_selector(scenario.method),
        builder=builder,
        labeled=split.labeled,
        max_neighbors=4,
        seed=9,
        ladder=ladder,
        observer=instr,
        clock=clock,
        scheduler=scheduler,
        router=router,
        compressor=compressor,
    )
    if scenario.strategy == "guard":
        floor = _zero_shot_floor(engine, nodes)
        budget = float(math.ceil(floor * (1.0 + scenario.budget_slack)))
        ledger = BudgetLedger(budget=budget)
        engine.ledger = ledger

    checkpointer = None
    if scenario.checkpoint:
        checkpointer = RunCheckpointer(checkpoint_path, observer=instr)

    rounds = None
    if scenario.strategy == "none":
        result = engine.run(
            queries, pruned=pruned, checkpointer=checkpointer, compressed=compressed
        )
    elif scenario.strategy == "guard":
        result = engine.run_with_budget_guard(
            queries, pruned=pruned, checkpointer=checkpointer
        )
    else:  # boost
        boosted = QueryBoostingStrategy(max_deferrals=2).execute(
            engine, queries, pruned=pruned, checkpointer=checkpointer
        )
        result = boosted.run
        rounds = boosted.rounds

    return Capture(
        records=[asdict(r) for r in result.records],
        rounds=rounds,
        ledger=(ledger.spent, ledger.charges) if ledger is not None else None,
        usage=(base.usage.num_queries, base.usage.prompt_tokens, base.usage.completion_tokens),
        clock_now=clock.now,
        trace=_normalize_trace(instr.trace_lines()) if instr is not None else None,
        trace_raw=instr.trace_lines() if instr is not None else None,
        metrics=instr.registry.snapshot() if instr is not None else None,
        checkpoint_text=Path(checkpoint_path).read_text() if scenario.checkpoint else None,
        cache_stats=cache.stats() if cache is not None else None,
        flaky=(flaky.calls, flaky.failures, flaky.wasted_prompt_tokens)
        if flaky is not None
        else None,
        scheduler_report=scheduler.report if scheduler is not None else None,
        router_stats=router.stats() if router is not None else None,
    )


def assert_equivalent(
    serial: Capture, batched: Capture, compare_traces: bool = True
) -> None:
    """Assert two captures describe the same execution, artifact by artifact.

    ``compare_traces=False`` relaxes the comparison to records/totals for
    thread-mode dispatch, whose span sequence legitimately differs (condensed
    ``query`` spans, a ``wave`` span) even though every record, token count
    and checkpoint byte still matches.
    """
    assert [r["node"] for r in batched.records] == [
        r["node"] for r in serial.records
    ], "record order diverged"
    assert batched.records == serial.records, "per-query records diverged"
    assert batched.rounds == serial.rounds, "boosting round structure diverged"
    assert batched.ledger == serial.ledger, "budget ledger diverged"
    assert batched.usage == serial.usage, "base-model usage diverged"
    assert batched.checkpoint_text == serial.checkpoint_text, "checkpoint bytes diverged"
    assert batched.cache_stats == serial.cache_stats, "cache statistics diverged"
    assert batched.flaky == serial.flaky, "failure-injection counters diverged"
    if serial.router_stats is None or batched.router_stats is None:
        assert batched.router_stats == serial.router_stats, "cascade router stats diverged"
    else:
        # The router's aggregate dollar counter sums in execution order, so
        # thread dispatch may differ by float associativity (one ULP); the
        # per-record costs above already compared exactly.
        s, b = dict(serial.router_stats), dict(batched.router_stats)
        s_cost, b_cost = s.pop("cost_usd"), b.pop("cost_usd")
        assert b == s, "cascade router stats diverged"
        assert math.isclose(b_cost, s_cost, rel_tol=1e-9, abs_tol=1e-12), (
            "cascade router dollar totals diverged"
        )
    if not compare_traces:
        return
    assert batched.clock_now == serial.clock_now, "simulated clocks diverged"
    if serial.trace is not None and batched.trace is not None:
        serial_spans = [line for line in serial.trace if line.get("kind") != "metrics"]
        batched_spans = [line for line in batched.trace if line.get("kind") != "metrics"]
        assert batched_spans == serial_spans, "trace spans diverged"
    if serial.metrics is not None and batched.metrics is not None:
        assert strip_scheduler_metrics(batched.metrics) == strip_scheduler_metrics(
            serial.metrics
        ), "metrics snapshots diverged (beyond repro_scheduler_*)"


# --------------------------------------------------------------------- serving

#: Tenant roster the serve scenarios draw from, widest weight spread first so
#: even two-tenant scenarios exercise weighted (not uniform) round-robin.
SERVE_TENANTS = (("alpha", 2), ("beta", 1), ("gamma", 3), ("delta", 1))


@dataclass(frozen=True)
class ServeScenario:
    """One serving-layer configuration, as drawable plain data.

    ``token_budget``/``usd_budget`` apply to every tenant alike (``None``
    disables that currency); the admission knobs mirror
    :class:`~repro.runtime.serve.AdmissionPolicy`.  ``seconds_per_call > 0``
    wraps the model in a :class:`LatencyLLM` so outcomes carry non-trivial
    simulated latencies — set it to 0 for thread-mode comparisons, whose
    interleaved calls would otherwise stamp different clock readings.
    ``compress_watermark`` arms the compressed admission rung; it needs
    ``compress_ratio``, which builds the engine's seeded compressor.
    """

    num_requests: int = 16
    num_tenants: int = 3
    arrival_window: float = 0.0
    token_budget: float | None = None
    usd_budget: float | None = None
    global_budget: float | None = None
    degrade_watermark: int | None = None
    shed_watermark: int | None = None
    max_queue_depth: int = 64
    wave_quota: int = 4
    use_ladder: bool = True
    seconds_per_call: float = 0.25
    observe: bool = True
    seed: int = 0
    compress_watermark: int | None = None
    compress_ratio: float | None = None

    def __post_init__(self):
        if not 1 <= self.num_tenants <= len(SERVE_TENANTS):
            raise ValueError(f"num_tenants must be in [1, {len(SERVE_TENANTS)}]")
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.compress_watermark is not None and self.compress_ratio is None:
            raise ValueError("compress_watermark requires compress_ratio")

    def make_tenants(self) -> list[TenantSpec]:
        return [
            TenantSpec(
                name,
                weight=weight,
                max_queue_depth=self.max_queue_depth,
                token_budget=self.token_budget,
                usd_budget=self.usd_budget,
            )
            for name, weight in SERVE_TENANTS[: self.num_tenants]
        ]


@dataclass
class ServeCapture:
    """Every comparable artifact of one executed serve scenario.

    ``report`` and ``tenants`` are live objects for invariant checks (ledger
    inspection, fairness timelines); :func:`assert_serve_equivalent` compares
    only the serialized fields.
    """

    outcomes: list[dict]
    cycles: int
    makespan_seconds: float
    book: dict
    usage: tuple[int, int, int]
    clock_now: float
    trace: list[dict] | None
    metrics: dict | None
    report: ServeReport
    tenants: list[TenantSpec]


def run_serve_scenario(
    scenario: ServeScenario,
    tag: GeneratedTag,
    split: LabeledSplit,
    builder: PromptBuilder,
    scheduler: QueryScheduler | None = None,
    run_id: str = "serve-equivalence",
    chaos_plan: FaultPlan | None = None,
    journal_path: str | Path | None = None,
) -> ServeCapture:
    """Build the scenario's serving stack on the tiny graph and replay it.

    Same seeding discipline as :func:`run_scenario`: two invocations differ
    only in the ``scheduler`` argument.  ``chaos_plan`` threads a
    :class:`~repro.runtime.chaos.ChaosController` through the stack (wrapping
    the LLM and observing the serving layer); an **empty** plan must be fully
    transparent.  ``journal_path`` writes a request journal during the
    replay, which must likewise leave every captured artifact unchanged.
    """
    clock = SimulatedClock()
    base = SimulatedLLM(tag.vocabulary, name="gpt-3.5", seed=5)
    llm = base
    if scenario.seconds_per_call > 0:
        llm = LatencyLLM(base, clock=clock, seconds_per_call=scenario.seconds_per_call)
    chaos = None
    if chaos_plan is not None:
        chaos = ChaosController(chaos_plan, clock=clock)
        llm = chaos.wrap_llm(llm, model="gpt-3.5")
    instr = None
    if scenario.observe:
        instr = Instrumentation(
            run_id=run_id,
            clock=clock,
            labels={"dataset": "tiny", "strategy": "serve", "model": "gpt-3.5"},
        )
        instrument_stack(llm, instr)
    engine = MultiQueryEngine(
        graph=tag.graph,
        llm=llm,
        selector=make_selector("1-hop"),
        builder=builder,
        labeled=split.labeled,
        max_neighbors=4,
        seed=9,
        ladder=DegradationLadder() if scenario.use_ladder else None,
        observer=instr,
        clock=clock,
        scheduler=scheduler,
        compressor=(
            PromptCompressor(target_ratio=scenario.compress_ratio, seed=23)
            if scenario.compress_ratio is not None
            else None
        ),
    )
    tenants = scenario.make_tenants()
    layer = ServingLayer(
        engine,
        tenants,
        policy=AdmissionPolicy(
            degrade_watermark=scenario.degrade_watermark,
            shed_watermark=scenario.shed_watermark,
            wave_quota=scenario.wave_quota,
            compress_watermark=scenario.compress_watermark,
        ),
        global_budget=scenario.global_budget,
        price_model="gpt-3.5",
        observer=instr,
        chaos=chaos,
    )
    stream = synthetic_stream(
        tenants,
        split.queries,
        scenario.num_requests,
        arrival_window=scenario.arrival_window,
        seed=scenario.seed,
    )
    journal = ServeJournal(journal_path) if journal_path is not None else None
    report = layer.replay(stream, journal=journal)
    return ServeCapture(
        outcomes=[asdict(o) for o in report.outcomes],
        cycles=report.cycles,
        makespan_seconds=report.makespan_seconds,
        book=report.book.snapshot(),
        usage=(
            base.usage.num_queries,
            base.usage.prompt_tokens,
            base.usage.completion_tokens,
        ),
        clock_now=clock.now,
        trace=_normalize_trace(instr.trace_lines()) if instr is not None else None,
        metrics=instr.registry.snapshot() if instr is not None else None,
        report=report,
        tenants=tenants,
    )


def assert_serve_equivalent(
    serial: ServeCapture, batched: ServeCapture, compare_traces: bool = True
) -> None:
    """Assert two serve captures describe the same run, artifact by artifact.

    As with :func:`assert_equivalent`, ``compare_traces=False`` relaxes the
    check to outcomes/ledgers/usage for thread-mode dispatch.
    """
    serial_keys = [(o["request"]["tenant"], o["request"]["node"]) for o in serial.outcomes]
    batched_keys = [(o["request"]["tenant"], o["request"]["node"]) for o in batched.outcomes]
    assert batched_keys == serial_keys, "outcome order diverged"
    assert batched.outcomes == serial.outcomes, "serve outcomes diverged"
    assert batched.cycles == serial.cycles, "dispatch cycle counts diverged"
    assert batched.book == serial.book, "ledger book diverged"
    assert batched.usage == serial.usage, "base-model usage diverged"
    if not compare_traces:
        return
    assert batched.makespan_seconds == serial.makespan_seconds, "makespans diverged"
    assert batched.clock_now == serial.clock_now, "simulated clocks diverged"
    if serial.trace is not None and batched.trace is not None:
        serial_spans = [line for line in serial.trace if line.get("kind") != "metrics"]
        batched_spans = [line for line in batched.trace if line.get("kind") != "metrics"]
        assert batched_spans == serial_spans, "trace spans diverged"
    if serial.metrics is not None and batched.metrics is not None:
        assert strip_scheduler_metrics(batched.metrics) == strip_scheduler_metrics(
            serial.metrics
        ), "metrics snapshots diverged (beyond repro_scheduler_*)"
