"""Tests for the analysis package (breakdowns, comparisons, costs)."""

from __future__ import annotations

import pytest

from repro.analysis.breakdowns import (
    accuracy_by_class,
    accuracy_by_neighbor_count,
    accuracy_by_round,
    token_histogram,
)
from repro.analysis.comparison import compare_runs, mcnemar_counts
from repro.analysis.costs import cost_summary, extrapolate_cost
from repro.runtime.results import QueryRecord, RunResult


def record(node, true=0, pred=0, pt=100, ct=5, labels=0, rnd=None):
    return QueryRecord(
        node=node,
        true_label=true,
        predicted_label=pred,
        prompt_tokens=pt,
        completion_tokens=ct,
        num_neighbors=labels,
        num_neighbor_labels=labels,
        num_pseudo_labels=0,
        round_index=rnd,
    )


@pytest.fixture()
def run() -> RunResult:
    return RunResult(
        [
            record(0, true=0, pred=0, labels=0, rnd=0),
            record(1, true=0, pred=1, labels=1, rnd=0),
            record(2, true=1, pred=1, labels=1, rnd=1),
            record(3, true=1, pred=1, labels=2, rnd=1),
        ]
    )


class TestBreakdowns:
    def test_accuracy_by_class(self, run):
        by_class = accuracy_by_class(run, ["zero", "one"])
        assert by_class["zero"] == (0.5, 2)
        assert by_class["one"] == (1.0, 2)

    def test_accuracy_by_neighbor_count(self, run):
        by_count = accuracy_by_neighbor_count(run)
        assert by_count[0] == (1.0, 1)
        assert by_count[1] == (0.5, 2)
        assert by_count[2] == (1.0, 1)

    def test_accuracy_by_round(self, run):
        by_round = accuracy_by_round(run)
        assert by_round[0] == (0.5, 2)
        assert by_round[1] == (1.0, 2)

    def test_accuracy_by_round_requires_rounds(self):
        with pytest.raises(ValueError):
            accuracy_by_round(RunResult([record(0)]))

    def test_token_histogram(self, run):
        bins = token_histogram(run, num_bins=2)
        assert len(bins) == 2
        assert sum(count for _, _, count in bins) == 4

    def test_empty_run_rejected(self):
        with pytest.raises(ValueError):
            accuracy_by_class(RunResult(), ["a"])


class TestComparison:
    def test_mcnemar_counts(self, run):
        candidate = RunResult(
            [
                record(0, true=0, pred=1),  # broken
                record(1, true=0, pred=0),  # fixed
                record(2, true=1, pred=1),  # both correct
                record(3, true=1, pred=0),  # broken
            ]
        )
        fixed, broken, both_correct, both_wrong = mcnemar_counts(run, candidate)
        assert (fixed, broken, both_correct, both_wrong) == (1, 2, 1, 0)

    def test_compare_runs(self, run):
        candidate = RunResult(
            [record(i, true=r.true_label, pred=r.true_label, pt=50) for i, r in enumerate(run.records)]
        )
        comparison = compare_runs(run, candidate)
        assert comparison.candidate_accuracy == 1.0
        assert comparison.fixed == 1 and comparison.broken == 0
        assert comparison.net_fixed == 1
        assert comparison.token_delta < 0
        assert comparison.accuracy_delta == pytest.approx(0.25)

    def test_mismatched_query_sets_rejected(self, run):
        other = RunResult([record(99)])
        with pytest.raises(ValueError, match="different query sets"):
            mcnemar_counts(run, other)


class TestCosts:
    def test_cost_summary(self, run):
        summary = cost_summary(run, "gpt-3.5")
        assert summary.num_queries == 4
        assert summary.prompt_tokens == 400
        assert summary.total_usd == pytest.approx(
            400 / 1000 * 0.0005 + 20 / 1000 * 0.0015
        )
        assert summary.tokens_per_query == pytest.approx(105.0)

    def test_extrapolation_matches_paper_magnitudes(self):
        """1,200-token queries at GPT-3.5 pricing -> $6,000 for 10M queries."""
        run = RunResult([record(0, pt=1200, ct=0)])
        summary = cost_summary(run, "gpt-3.5")
        assert extrapolate_cost(summary, 10_000_000) == pytest.approx(6000.0)

    def test_extrapolation_rejects_negative(self, run):
        with pytest.raises(ValueError):
            extrapolate_cost(cost_summary(run, "gpt-3.5"), -1)

    def test_empty_run(self):
        with pytest.raises(ValueError):
            cost_summary(RunResult(), "gpt-3.5")
