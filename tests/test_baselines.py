"""Tests for baseline strategies (random pruning, random rounds)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.baselines import random_prune_set, random_round_schedule


class TestRandomPrune:
    def test_size_matches_tau(self):
        queries = np.arange(100)
        assert len(random_prune_set(queries, 0.2)) == 20
        assert len(random_prune_set(queries, 0.0)) == 0
        assert len(random_prune_set(queries, 1.0)) == 100

    def test_subset_of_queries(self):
        queries = np.arange(50, 80)
        pruned = random_prune_set(queries, 0.5)
        assert pruned <= set(queries.tolist())

    def test_deterministic_per_seed(self):
        queries = np.arange(40)
        assert random_prune_set(queries, 0.5, seed=1) == random_prune_set(queries, 0.5, seed=1)
        assert random_prune_set(queries, 0.5, seed=1) != random_prune_set(queries, 0.5, seed=2)

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            random_prune_set(np.arange(5), 1.2)


class TestRandomRounds:
    def test_partition(self):
        queries = np.arange(53)
        rounds = random_round_schedule(queries, 10, seed=0)
        flat = np.concatenate(rounds)
        assert sorted(flat.tolist()) == list(range(53))

    def test_round_count(self):
        rounds = random_round_schedule(np.arange(100), 10, seed=0)
        assert len(rounds) == 10

    def test_more_rounds_than_queries(self):
        rounds = random_round_schedule(np.arange(3), 10, seed=0)
        assert len(rounds) == 3
        assert all(r.size == 1 for r in rounds)

    def test_shuffled(self):
        rounds = random_round_schedule(np.arange(100), 1, seed=0)
        assert not np.array_equal(rounds[0], np.arange(100))

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            random_round_schedule(np.arange(5), 0)


class TestUnscheduledBoosting:
    def test_covers_all_queries(self, make_tiny_engine, tiny_split):
        from repro.runtime.baselines import run_unscheduled_boosting

        result = run_unscheduled_boosting(make_tiny_engine(), tiny_split.queries, num_rounds=8)
        assert result.num_queries == tiny_split.num_queries
        assert {r.node for r in result.records} == {int(v) for v in tiny_split.queries}

    def test_pseudo_labels_published(self, make_tiny_engine, tiny_split):
        from repro.runtime.baselines import run_unscheduled_boosting

        engine = make_tiny_engine()
        run_unscheduled_boosting(engine, tiny_split.queries, num_rounds=8)
        assert len(engine.pseudo_labeled) == tiny_split.num_queries

    def test_uses_pseudo_labels_across_rounds(self, make_tiny_engine, tiny_split):
        from repro.runtime.baselines import run_unscheduled_boosting

        result = run_unscheduled_boosting(
            make_tiny_engine(method="2-hop"), tiny_split.queries, num_rounds=8
        )
        assert result.pseudo_label_uses > 0

    def test_respects_prune_set(self, make_tiny_engine, tiny_split):
        from repro.runtime.baselines import run_unscheduled_boosting

        pruned = {int(v) for v in tiny_split.queries[:10]}
        result = run_unscheduled_boosting(
            make_tiny_engine(), tiny_split.queries, num_rounds=5, pruned=pruned
        )
        for record in result.records:
            assert record.pruned == (record.node in pruned)

    def test_round_indices_assigned(self, make_tiny_engine, tiny_split):
        from repro.runtime.baselines import run_unscheduled_boosting

        result = run_unscheduled_boosting(make_tiny_engine(), tiny_split.queries, num_rounds=8)
        assert result.num_rounds == 8
