"""Tests for the benchmark regression gate's comparison logic.

The gate's measurement side is exercised by CI's ``bench-regression`` job
(it runs the real 48-query workload); here we pin the pure comparison
semantics: what counts as a >tolerance regression, and that the committed
baseline artifact actually passes its own gate shape.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_regression", REPO / "benchmarks" / "check_regression.py"
)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)

BASELINE = {
    "speedup": 4.0,
    "overlapped_seconds": 12.0,
    "llm_calls_batched": 48,
}


def current(**overrides) -> dict:
    state = dict(BASELINE)
    state.update(overrides)
    return state


class TestEvaluate:
    def test_identical_run_passes(self):
        assert check_regression.evaluate(BASELINE, current(), 0.2) == []

    def test_within_tolerance_passes(self):
        ok = current(speedup=3.3, overlapped_seconds=14.0)
        assert check_regression.evaluate(BASELINE, ok, 0.2) == []

    def test_speedup_regression_fails(self):
        problems = check_regression.evaluate(BASELINE, current(speedup=3.1), 0.2)
        assert len(problems) == 1 and "speedup regressed" in problems[0]

    def test_overlap_regression_fails(self):
        problems = check_regression.evaluate(
            BASELINE, current(overlapped_seconds=14.5), 0.2
        )
        assert len(problems) == 1 and "overlap regressed" in problems[0]

    def test_extra_llm_calls_fail_at_any_tolerance(self):
        problems = check_regression.evaluate(
            BASELINE, current(llm_calls_batched=49), 0.5
        )
        assert len(problems) == 1 and "extra LLM calls" in problems[0]

    def test_multiple_regressions_all_reported(self):
        bad = current(speedup=1.0, overlapped_seconds=48.0, llm_calls_batched=96)
        assert len(check_regression.evaluate(BASELINE, bad, 0.2)) == 3

    def test_tighter_tolerance_catches_smaller_slips(self):
        slipped = current(speedup=3.7)
        assert check_regression.evaluate(BASELINE, slipped, 0.2) == []
        assert check_regression.evaluate(BASELINE, slipped, 0.05) != []


class TestGateWiring:
    def test_missing_baseline_fails_without_measuring(self, tmp_path, capsys):
        code = check_regression.main(["--baseline", str(tmp_path / "nope.json")])
        assert code == 1
        assert "no baseline" in capsys.readouterr().err

    def test_committed_baseline_has_gate_fields(self):
        baseline = json.loads((REPO / "BENCH_scheduler.json").read_text())
        for field in ("speedup", "overlapped_seconds", "llm_calls_batched"):
            assert field in baseline
        assert check_regression.evaluate(baseline, baseline, 0.2) == []
