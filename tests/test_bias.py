"""Tests for per-class bias profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.llm.bias import BiasProfile


class TestGenerate:
    def test_deterministic(self):
        a = BiasProfile.generate(10, seed=1, model_name="m")
        b = BiasProfile.generate(10, seed=1, model_name="m")
        assert np.array_equal(a.penalties, b.penalties)

    def test_models_differ(self):
        a = BiasProfile.generate(10, seed=1, model_name="m1")
        b = BiasProfile.generate(10, seed=1, model_name="m2")
        assert not np.array_equal(a.penalties, b.penalties)

    def test_weak_fraction_respected(self):
        profile = BiasProfile.generate(20, seed=0, model_name="m", weak_fraction=0.25)
        assert profile.penalized_classes().size == 5

    def test_zero_fraction(self):
        profile = BiasProfile.generate(10, seed=0, model_name="m", weak_fraction=0.0)
        assert profile.penalized_classes().size == 0

    def test_penalties_nonpositive(self):
        profile = BiasProfile.generate(10, seed=0, model_name="m")
        assert (profile.penalties <= 0).all()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BiasProfile.generate(0, seed=0, model_name="m")
        with pytest.raises(ValueError):
            BiasProfile.generate(5, seed=0, model_name="m", weak_fraction=2.0)
        with pytest.raises(ValueError):
            BiasProfile.generate(5, seed=0, model_name="m", penalty=-1.0)


class TestValidation:
    def test_positive_penalties_rejected(self):
        with pytest.raises(ValueError):
            BiasProfile(penalties=np.array([0.1, 0.0]))

    def test_matrix_rejected(self):
        with pytest.raises(ValueError):
            BiasProfile(penalties=np.zeros((2, 2)))
