"""Tests for the query boosting strategy (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.boosting import QueryBoostingStrategy


class TestExecute:
    def test_every_query_executed_exactly_once(self, make_tiny_engine, tiny_split):
        strategy = QueryBoostingStrategy(gamma1=2, gamma2=2)
        result = strategy.execute(make_tiny_engine(), tiny_split.queries)
        executed = [r.node for r in result.run.records]
        assert sorted(executed) == sorted(int(v) for v in tiny_split.queries)

    def test_rounds_partition_queries(self, make_tiny_engine, tiny_split):
        strategy = QueryBoostingStrategy()
        result = strategy.execute(make_tiny_engine(), tiny_split.queries)
        flat = [v for round_nodes in result.rounds for v in round_nodes]
        assert sorted(flat) == sorted(int(v) for v in tiny_split.queries)
        assert result.num_rounds >= 1

    def test_round_indices_recorded(self, make_tiny_engine, tiny_split):
        strategy = QueryBoostingStrategy()
        result = strategy.execute(make_tiny_engine(), tiny_split.queries)
        for round_idx, round_nodes in enumerate(result.rounds):
            nodes = set(round_nodes)
            for record in result.run.records:
                if record.node in nodes:
                    assert record.round_index == round_idx

    def test_pseudo_labels_published(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine()
        QueryBoostingStrategy().execute(engine, tiny_split.queries)
        # Every executed query with a parseable answer becomes pseudo-labeled.
        assert len(engine.pseudo_labeled) == tiny_split.num_queries

    def test_pseudo_labels_used_across_rounds(self, make_tiny_engine, tiny_split):
        strategy = QueryBoostingStrategy(gamma1=2)
        result = strategy.execute(make_tiny_engine(), tiny_split.queries)
        assert result.run.pseudo_label_uses > 0

    def test_terminates_with_impossible_thresholds(self, make_tiny_engine, tiny_split):
        """γ1 far above any node degree must still terminate via relaxation."""
        strategy = QueryBoostingStrategy(gamma1=50, gamma2=0)
        result = strategy.execute(make_tiny_engine(), tiny_split.queries)
        assert result.run.num_queries == tiny_split.num_queries

    def test_terminates_on_isolated_queries(self, tiny_graph, tiny_builder, tiny_tag):
        """Queries with zero neighbors execute through full relaxation."""
        from repro.runtime.engine import MultiQueryEngine
        from repro.selection.registry import make_selector
        from repro.llm.simulated import SimulatedLLM

        isolated = np.array(
            [v for v in range(tiny_graph.num_nodes) if tiny_graph.degree(v) == 0][:3]
        )
        if isolated.size == 0:
            pytest.skip("fixture graph has no isolated nodes")
        engine = MultiQueryEngine(
            tiny_graph,
            SimulatedLLM(tiny_tag.vocabulary, seed=5),
            make_selector("1-hop"),
            tiny_builder,
            labeled=np.array([], dtype=np.int64),
            max_neighbors=4,
        )
        result = QueryBoostingStrategy().execute(engine, isolated)
        assert result.run.num_queries == isolated.size

    def test_duplicate_queries_rejected(self, make_tiny_engine, tiny_split):
        q = int(tiny_split.queries[0])
        with pytest.raises(ValueError, match="duplicates"):
            QueryBoostingStrategy().execute(make_tiny_engine(), np.array([q, q]))

    def test_early_rounds_have_more_neighbor_labels(self, make_tiny_engine, tiny_split):
        """Scheduling puts label-rich queries first (the algorithm's core)."""
        result = QueryBoostingStrategy(gamma1=3, gamma2=2).execute(
            make_tiny_engine(method="2-hop"), tiny_split.queries
        )
        by_round: dict[int, list[int]] = {}
        for record in result.run.records:
            by_round.setdefault(record.round_index, []).append(record.num_neighbor_labels)
        if len(by_round) >= 2:
            first_mean = np.mean(by_round[0])
            last_mean = np.mean(by_round[max(by_round)])
            assert first_mean >= last_mean

    def test_boost_improves_over_plain_run(self, make_tiny_engine, tiny_split):
        """On a homophilous graph with boost-friendly weights, boosting helps."""
        from repro.llm.simulated import SimulatedLLM

        def engine():
            return make_tiny_engine(
                method="2-hop",
                llm=None,
            )

        base = engine().run(tiny_split.queries)
        boosted = QueryBoostingStrategy().execute(engine(), tiny_split.queries)
        assert boosted.run.accuracy >= base.accuracy - 0.02


class TestValidation:
    def test_negative_gammas(self):
        with pytest.raises(ValueError):
            QueryBoostingStrategy(gamma1=-1)
        with pytest.raises(ValueError):
            QueryBoostingStrategy(gamma2=-1)
