"""Tests for token-budget arithmetic (Sec. V-C1)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.budget import BudgetLedger, budget_for_tau, tau_for_budget


class TestTauForBudget:
    def test_full_budget_needs_no_pruning(self):
        assert tau_for_budget(100, 500, 200, budget=50_000) == 0.0

    def test_exact_interior_point(self):
        # 100 queries, full 500, neighbor 200: pruning half saves 100*200*0.5
        budget = 100 * 500 - 0.5 * 100 * 200
        assert tau_for_budget(100, 500, 200, budget) == pytest.approx(0.5)

    def test_minimum_feasible_budget(self):
        budget = 100 * (500 - 200)
        assert tau_for_budget(100, 500, 200, budget) == pytest.approx(1.0)

    def test_infeasible_budget_raises(self):
        with pytest.raises(ValueError, match="below the fully-pruned cost"):
            tau_for_budget(100, 500, 200, budget=100 * 300 - 1)

    def test_invalid_costs(self):
        with pytest.raises(ValueError):
            tau_for_budget(100, 500, 600, budget=1)  # neighbor >= full
        with pytest.raises(ValueError):
            tau_for_budget(0, 500, 200, budget=1)

    def test_budget_one_ulp_below_minimum_is_feasible(self):
        # A budget equal to the fully-pruned cost minus float rounding noise
        # must clamp to τ=1, not raise: the caller's arithmetic cannot be
        # expected to land exactly on the representable minimum.
        import numpy as np

        min_cost = 100 * (500.3 - 200.1)
        nudged = float(np.nextafter(min_cost, 0.0))
        assert nudged < min_cost
        assert tau_for_budget(100, 500.3, 200.1, nudged) == 1.0

    @given(
        st.integers(min_value=1, max_value=10_000),
        st.floats(min_value=10, max_value=5_000),
        st.floats(min_value=0.01, max_value=0.99),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_roundtrip(self, n, full, neighbor_share, tau):
        """budget_for_tau and tau_for_budget are inverse on feasible inputs."""
        neighbor = full * neighbor_share
        budget = budget_for_tau(n, full, neighbor, tau)
        recovered = tau_for_budget(n, full, neighbor, budget)
        assert recovered == pytest.approx(tau, abs=1e-6)

    @given(
        st.integers(min_value=1, max_value=10_000),
        st.floats(min_value=10, max_value=5_000),
        st.floats(min_value=0.01, max_value=0.99),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_budget_monotone_decreasing_in_tau(self, n, full, neighbor_share, tau):
        neighbor = full * neighbor_share
        assert budget_for_tau(n, full, neighbor, tau) <= budget_for_tau(n, full, neighbor, 0.0)


class TestBudgetLedger:
    def test_unlimited_by_default(self):
        ledger = BudgetLedger()
        assert not ledger.would_exceed(10**12)
        assert ledger.remaining == float("inf")

    def test_charging_accumulates(self):
        ledger = BudgetLedger(budget=100)
        ledger.charge(40)
        ledger.charge(30)
        assert ledger.spent == 70
        assert ledger.charges == 2
        assert ledger.remaining == 30

    def test_would_exceed(self):
        ledger = BudgetLedger(budget=100)
        ledger.charge(90)
        assert ledger.would_exceed(11)
        assert not ledger.would_exceed(10)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            BudgetLedger(budget=0)

    def test_negative_charge(self):
        with pytest.raises(ValueError):
            BudgetLedger().charge(-1)
