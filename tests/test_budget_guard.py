"""Tests for budget-enforcing execution (the hard constraint of Eq. 2)."""

from __future__ import annotations

import pytest

from repro.core.budget import BudgetLedger


def guarded_engine(make_tiny_engine, budget: float):
    return make_tiny_engine(ledger=BudgetLedger(budget=budget))


class TestBudgetGuard:
    def test_requires_budgeted_ledger(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine()  # no ledger
        with pytest.raises(ValueError, match="ledger"):
            engine.run_with_budget_guard(tiny_split.queries[:2])

    def test_generous_budget_behaves_like_run(self, make_tiny_engine, tiny_split):
        free = make_tiny_engine().run(tiny_split.queries[:15])
        guarded = guarded_engine(make_tiny_engine, budget=10**9).run_with_budget_guard(
            tiny_split.queries[:15]
        )
        assert [r.predicted_label for r in guarded.records] == [
            r.predicted_label for r in free.records
        ]

    @staticmethod
    def _midpoint_budget(make_tiny_engine, queries) -> int:
        """A budget between the all-zero-shot floor and the full cost."""
        full = make_tiny_engine().run(queries).total_tokens
        floor = make_tiny_engine().run(queries, pruned=set(int(v) for v in queries)).total_tokens
        assert floor < full
        return (floor + full) // 2

    def test_budget_never_exceeded(self, make_tiny_engine, tiny_split):
        queries = tiny_split.queries[:30]
        budget = self._midpoint_budget(make_tiny_engine, queries)
        engine = guarded_engine(make_tiny_engine, budget=budget)
        result = engine.run_with_budget_guard(queries)
        assert engine.ledger.spent <= budget
        assert result.num_queries == 30

    def test_downgrades_to_zero_shot_under_pressure(self, make_tiny_engine, tiny_split):
        queries = tiny_split.queries[:30]
        budget = self._midpoint_budget(make_tiny_engine, queries)
        engine = guarded_engine(make_tiny_engine, budget=budget)
        result = engine.run_with_budget_guard(queries)
        downgraded = sum(r.pruned for r in result.records)
        assert downgraded > 0

    def test_raises_when_floor_does_not_fit(self, make_tiny_engine, tiny_split):
        engine = guarded_engine(make_tiny_engine, budget=600)  # ~1-2 queries worth
        with pytest.raises(RuntimeError, match="zero-shot floor"):
            engine.run_with_budget_guard(tiny_split.queries[:30])
        # Guard refuses before spending a single token.
        assert engine.ledger.spent == 0

    def test_negative_reserve_rejected(self, make_tiny_engine, tiny_split):
        engine = guarded_engine(make_tiny_engine, budget=10**6)
        with pytest.raises(ValueError):
            engine.run_with_budget_guard(tiny_split.queries[:2], completion_reserve=-1)
