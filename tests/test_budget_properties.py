"""Property-based checks of the budget algebra and the spend ledger.

Hypothesis sweeps the τ↔budget conversion over arbitrary feasible cost
shapes and drives :class:`BudgetLedger` with arbitrary charge sequences,
pinning three invariants the rest of the stack leans on:

* the budget↔τ algebra round-trips (Eq. 2 is invertible on its domain),
* ledger spend is monotone in both currencies — a charge never un-spends,
* ``remaining``/``remaining_usd`` never go negative, however far a charge
  sequence overshoots the budget.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.budget import BudgetLedger, budget_for_tau, tau_for_budget

SETTINGS = dict(max_examples=100, deadline=None)

#: Feasible cost shapes: neighbor text strictly cheaper than the full query.
cost_shapes = st.tuples(
    st.integers(min_value=1, max_value=10_000),          # num_queries
    st.floats(min_value=1.0, max_value=5_000.0),         # avg_tokens_full
    st.floats(min_value=0.01, max_value=0.99),           # neighbor fraction of full
)

charges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=100_000),                  # tokens
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),    # usd
    ),
    max_size=50,
)


def unpack(shape):
    n, full, fraction = shape
    return n, full, full * fraction


class TestBudgetTauAlgebra:
    @given(shape=cost_shapes, tau=st.floats(min_value=0.0, max_value=1.0))
    @settings(**SETTINGS)
    def test_tau_round_trips_through_budget(self, shape, tau):
        n, full, neighbor = unpack(shape)
        budget = budget_for_tau(n, full, neighbor, tau)
        recovered = tau_for_budget(n, full, neighbor, budget)
        assert math.isclose(recovered, tau, rel_tol=1e-6, abs_tol=1e-6)

    @given(shape=cost_shapes, tau=st.floats(min_value=0.0, max_value=1.0))
    @settings(**SETTINGS)
    def test_budget_decreases_as_pruning_increases(self, shape, tau):
        n, full, neighbor = unpack(shape)
        assert budget_for_tau(n, full, neighbor, tau) <= budget_for_tau(
            n, full, neighbor, 0.0
        )
        assert budget_for_tau(n, full, neighbor, 1.0) <= budget_for_tau(
            n, full, neighbor, tau
        )

    @given(shape=cost_shapes, slack=st.floats(min_value=0.0, max_value=10.0))
    @settings(**SETTINGS)
    def test_generous_budgets_need_no_pruning(self, shape, slack):
        n, full, neighbor = unpack(shape)
        budget = n * full * (1.0 + slack)
        assert tau_for_budget(n, full, neighbor, budget) == 0.0

    @given(shape=cost_shapes, budget_fraction=st.floats(min_value=0.0, max_value=1.0))
    @settings(**SETTINGS)
    def test_recovered_tau_is_always_a_fraction(self, shape, budget_fraction):
        n, full, neighbor = unpack(shape)
        lo = budget_for_tau(n, full, neighbor, 1.0)
        hi = budget_for_tau(n, full, neighbor, 0.0)
        budget = lo + budget_fraction * (hi - lo)
        if budget <= 0:
            return  # check_positive guards zero budgets; nothing to invert
        tau = tau_for_budget(n, full, neighbor, budget)
        assert 0.0 <= tau <= 1.0


class TestLedgerProperties:
    @given(seq=charges)
    @settings(**SETTINGS)
    def test_spend_is_monotone_and_exact(self, seq):
        ledger = BudgetLedger()
        tokens_so_far, usd_so_far = 0, 0.0
        for tokens, usd in seq:
            prev_tokens, prev_usd = ledger.spent, ledger.spent_usd
            ledger.charge(tokens, usd=usd)
            assert ledger.spent >= prev_tokens
            assert ledger.spent_usd >= prev_usd
            tokens_so_far += tokens
            usd_so_far += usd
        assert ledger.spent == tokens_so_far
        assert math.isclose(ledger.spent_usd, usd_so_far, rel_tol=1e-9, abs_tol=1e-9)
        assert ledger.charges == len(seq)

    @given(
        seq=charges,
        budget=st.integers(min_value=1, max_value=10_000),
        cost_budget=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(**SETTINGS)
    def test_remaining_never_negative(self, seq, budget, cost_budget):
        ledger = BudgetLedger(budget=float(budget), cost_budget_usd=cost_budget)
        assert ledger.remaining == budget
        assert ledger.remaining_usd == cost_budget
        for tokens, usd in seq:
            ledger.charge(tokens, usd=usd)
            assert ledger.remaining >= 0.0
            assert ledger.remaining_usd >= 0.0

    @given(seq=charges)
    @settings(**SETTINGS)
    def test_unlimited_ledger_always_has_room(self, seq):
        ledger = BudgetLedger()
        for tokens, usd in seq:
            assert not ledger.would_exceed(tokens, usd=usd)
            ledger.charge(tokens, usd=usd)
        assert ledger.remaining == float("inf")
        assert ledger.remaining_usd == float("inf")

    @given(
        seq=charges,
        budget=st.integers(min_value=1, max_value=10_000),
        cost_budget=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(**SETTINGS)
    def test_would_exceed_predicts_the_charge(self, seq, budget, cost_budget):
        ledger = BudgetLedger(budget=float(budget), cost_budget_usd=cost_budget)
        for tokens, usd in seq:
            predicted = ledger.would_exceed(tokens, usd=usd)
            over_tokens = ledger.spent + tokens > budget
            over_usd = ledger.spent_usd + usd > cost_budget
            assert predicted == (over_tokens or over_usd)
            ledger.charge(tokens, usd=usd)
