"""Tests for the disk-backed SQLite cache store.

Three contracts: the store behaves exactly like the in-memory backend
behind :class:`~repro.llm.caching.CachingLLM` (LRU order, stats, hits);
its state — entries *and* lifetime counters — survives reopen; and a
corrupt database file (committed fixtures mirroring the checkpoint
layer's damage shapes) is detected and quarantined, never deserialized.
"""

from __future__ import annotations

import json
import shutil
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.io.cachedb import (
    CacheCorruptionError,
    SQLiteCacheStore,
    quarantine_path,
    recovery_marker_path,
)
from repro.llm.caching import CachingLLM, MemoryCacheStore, SharedFlight
from repro.llm.interface import LLMClient

DATA = Path(__file__).parent / "data"
#: A real store file with ~500 bytes of b-tree leaf pages bit-flipped —
#: syntactically openable, but ``PRAGMA integrity_check`` reports damage.
BITFLIPPED = DATA / "corrupt_cache_bitflip.db"
#: The same store cut mid-page — the shape a torn copy or crash leaves.
TRUNCATED = DATA / "corrupt_cache_truncated.db"


class StaticLLM(LLMClient):
    """Deterministic echo model: same prompt, same answer, any thread."""

    def __init__(self, delay: float = 0.0):
        super().__init__(name="static")
        self.delay = delay

    def _complete(self, prompt: str) -> str:
        if self.delay:
            time.sleep(self.delay)
        return f"answer:{prompt}"


class TestStoreContract:
    def test_roundtrip(self, tmp_path):
        store = SQLiteCacheStore(tmp_path / "cache.db")
        assert store.get("p") is None
        store.put("p", "text", 0.5)
        assert store.get("p") == ("text", 0.5)
        assert len(store) == 1

    def test_none_confidence_roundtrips(self, tmp_path):
        store = SQLiteCacheStore(tmp_path / "cache.db")
        store.put("p", "text", None)
        assert store.get("p") == ("text", None)

    def test_put_same_prompt_overwrites(self, tmp_path):
        store = SQLiteCacheStore(tmp_path / "cache.db")
        store.put("p", "old", None)
        store.put("p", "new", 0.9)
        assert store.get("p") == ("new", 0.9)
        assert len(store) == 1
        assert store.inserts == 1  # refresh is not a fresh insert

    def test_lru_eviction_order(self, tmp_path):
        store = SQLiteCacheStore(tmp_path / "cache.db", max_entries=2)
        store.put("a", "1", None)
        store.put("b", "2", None)
        store.get("a")  # refresh: now b is least recent
        assert store.put("c", "3", None) == 1
        assert store.get("b") is None
        assert store.get("a") is not None and store.get("c") is not None
        assert store.evictions == 1

    def test_clear_keeps_lifetime_counters(self, tmp_path):
        store = SQLiteCacheStore(tmp_path / "cache.db", max_entries=1)
        store.put("a", "1", None)
        store.put("b", "2", None)
        store.clear()
        assert len(store) == 0
        assert store.inserts == 2
        assert store.evictions == 1

    def test_invalid_max_entries_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_entries"):
            SQLiteCacheStore(tmp_path / "cache.db", max_entries=0)

    def test_invalid_recover_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="recover"):
            SQLiteCacheStore(tmp_path / "cache.db", recover="ignore")


class TestPersistence:
    def test_entries_and_counters_survive_reopen(self, tmp_path):
        path = tmp_path / "cache.db"
        with SQLiteCacheStore(path, max_entries=2) as store:
            store.put("a", "1", 0.1)
            store.put("b", "2", None)
            store.put("c", "3", 0.3)  # evicts a
        reopened = SQLiteCacheStore(path, max_entries=2)
        assert reopened.get("a") is None
        assert reopened.get("b") == ("2", None)
        assert reopened.get("c") == ("3", 0.3)
        assert reopened.inserts == 3
        assert reopened.evictions == 1
        assert not reopened.recovered

    def test_warm_store_serves_new_wrapper_for_free(self, tmp_path):
        path = tmp_path / "cache.db"
        first_inner = StaticLLM()
        first = CachingLLM(first_inner, store=SQLiteCacheStore(path))
        first.complete("p1")
        first.complete("p2")
        first.store.close()

        second_inner = StaticLLM()
        second = CachingLLM(second_inner, store=SQLiteCacheStore(path))
        assert second.complete("p1").text == "answer:p1"
        assert second.complete("p2").total_tokens == 0
        assert second_inner.usage.num_queries == 0
        assert second.stats()["hits"] == 2


class TestCorruptFixtures:
    """Committed damaged databases, mirroring test_corrupt_persistence."""

    def stage(self, tmp_path: Path, fixture: Path) -> Path:
        path = tmp_path / "cache.db"
        shutil.copy(fixture, path)
        return path

    @pytest.mark.parametrize(
        "fixture", [TRUNCATED, BITFLIPPED], ids=["truncated", "bitflip"]
    )
    def test_raise_mode_detects(self, tmp_path, fixture):
        path = self.stage(tmp_path, fixture)
        with pytest.raises(CacheCorruptionError):
            SQLiteCacheStore(path, recover="raise")

    @pytest.mark.parametrize(
        "fixture", [TRUNCATED, BITFLIPPED], ids=["truncated", "bitflip"]
    )
    def test_detection_is_a_value_error(self, tmp_path, fixture):
        """Callers with checkpoint-style broad handling catch it too."""
        path = self.stage(tmp_path, fixture)
        with pytest.raises(ValueError):
            SQLiteCacheStore(path, recover="raise")

    @pytest.mark.parametrize(
        "fixture", [TRUNCATED, BITFLIPPED], ids=["truncated", "bitflip"]
    )
    def test_quarantine_recovers_empty(self, tmp_path, fixture):
        path = self.stage(tmp_path, fixture)
        store = SQLiteCacheStore(path)
        assert store.recovered
        assert len(store) == 0
        store.put("p", "fresh", None)  # usable again after recovery
        assert store.get("p") == ("fresh", None)
        parked = quarantine_path(path)
        assert parked.exists()
        assert parked.read_bytes() == fixture.read_bytes()  # damage preserved

    def test_quarantine_marker_records_reason(self, tmp_path):
        path = self.stage(tmp_path, TRUNCATED)
        SQLiteCacheStore(path)
        marker = json.loads(recovery_marker_path(path).read_text())
        assert marker["quarantined"] == quarantine_path(path).name
        assert marker["reason"]

    def test_healthy_database_is_not_quarantined(self, tmp_path):
        path = tmp_path / "cache.db"
        with SQLiteCacheStore(path) as store:
            store.put("p", "text", None)
        store = SQLiteCacheStore(path)
        assert not store.recovered
        assert not quarantine_path(path).exists()
        assert not recovery_marker_path(path).exists()


class TestSingleFlightAcrossWrappers:
    """Two workers' wrappers over one store+flight: one paid call, ever."""

    def test_threads_across_wrappers_pay_once(self, tmp_path):
        store = SQLiteCacheStore(tmp_path / "cache.db")
        flight = SharedFlight()
        inners = [StaticLLM(delay=0.02) for _ in range(2)]
        wrappers = [
            CachingLLM(inner, store=store, flight=flight) for inner in inners
        ]
        barrier = threading.Barrier(8)

        def work(i):
            barrier.wait()
            return wrappers[i % 2].complete("shared prompt").text

        with ThreadPoolExecutor(max_workers=8) as pool:
            texts = [f.result() for f in [pool.submit(work, i) for i in range(8)]]
        assert set(texts) == {"answer:shared prompt"}
        paid = sum(inner.usage.num_queries for inner in inners)
        assert paid == 1  # cross-wrapper single-flight
        assert sum(w.misses for w in wrappers) == 1
        assert sum(w.hits for w in wrappers) == 7
        assert flight.coalesced == sum(w.coalesced for w in wrappers)
        assert store.inserts == 1

    def test_disjoint_prompts_all_pay(self, tmp_path):
        store = SQLiteCacheStore(tmp_path / "cache.db")
        flight = SharedFlight()
        inners = [StaticLLM(delay=0.002) for _ in range(2)]
        wrappers = [
            CachingLLM(inner, store=store, flight=flight) for inner in inners
        ]

        def work(i):
            return wrappers[i % 2].complete(f"prompt {i % 4}").text

        with ThreadPoolExecutor(max_workers=8) as pool:
            [f.result() for f in [pool.submit(work, i) for i in range(32)]]
        assert sum(inner.usage.num_queries for inner in inners) == 4
        assert store.inserts == 4


class TestParityWithMemoryStore:
    """Same traffic through both backends: identical wrapper statistics."""

    OPS = ["a", "b", "a", "c", "d", "b", "a", "e", "c", "c"]

    def run_traffic(self, cache: CachingLLM) -> list[str]:
        return [cache.complete(f"prompt {op}").text for op in self.OPS]

    def test_stats_and_texts_match(self, tmp_path):
        memory = CachingLLM(StaticLLM(), store=MemoryCacheStore(max_entries=3))
        sqlite = CachingLLM(
            StaticLLM(), store=SQLiteCacheStore(tmp_path / "cache.db", max_entries=3)
        )
        assert self.run_traffic(memory) == self.run_traffic(sqlite)
        assert memory.stats() == sqlite.stats()
        assert memory.hit_rate == sqlite.hit_rate
        assert memory.max_entries == sqlite.max_entries == 3

    def test_eviction_victims_match(self, tmp_path):
        memory = MemoryCacheStore(max_entries=3)
        sqlite = SQLiteCacheStore(tmp_path / "cache.db", max_entries=3)
        for store in (memory, sqlite):
            for op in self.OPS:
                if store.get(f"prompt {op}") is None:
                    store.put(f"prompt {op}", f"answer {op}", None)
        survivors_memory = {op for op in set(self.OPS) if memory.get(f"prompt {op}")}
        survivors_sqlite = {op for op in set(self.OPS) if sqlite.get(f"prompt {op}")}
        assert survivors_memory == survivors_sqlite
        assert len(memory) == len(sqlite) == 3
