"""Tests for the exact-prompt response cache."""

from __future__ import annotations

import pytest

from repro.llm.caching import CachingLLM
from repro.llm.simulated import SimulatedLLM
from repro.prompts.builder import PromptBuilder
from repro.text.vocabulary import ClassVocabulary


@pytest.fixture()
def setup():
    vocab = ClassVocabulary.build(["A", "B"], seed=0)
    inner = SimulatedLLM(vocab, seed=1)
    builder = PromptBuilder(["A", "B"])
    prompt = builder.zero_shot("title", " ".join(vocab.class_words[0][:10]))
    return inner, CachingLLM(inner), prompt


class TestCachingLLM:
    def test_hit_returns_same_text(self, setup):
        inner, cached, prompt = setup
        first = cached.complete(prompt)
        second = cached.complete(prompt)
        assert first.text == second.text
        assert cached.hits == 1 and cached.misses == 1

    def test_hits_cost_zero_tokens(self, setup):
        _, cached, prompt = setup
        miss = cached.complete(prompt)
        hit = cached.complete(prompt)
        assert miss.total_tokens > 0
        assert hit.total_tokens == 0
        assert cached.usage.total_tokens == miss.total_tokens

    def test_inner_called_once(self, setup):
        inner, cached, prompt = setup
        cached.complete(prompt)
        cached.complete(prompt)
        assert inner.usage.num_queries == 1

    def test_hit_rate(self, setup):
        _, cached, prompt = setup
        assert cached.hit_rate == 0.0
        cached.complete(prompt)
        cached.complete(prompt)
        cached.complete(prompt)
        assert cached.hit_rate == pytest.approx(2 / 3)

    def test_lru_eviction(self, setup):
        inner, _, _ = setup
        cached = CachingLLM(inner, max_entries=2)
        builder = PromptBuilder(["A", "B"])
        prompts = [builder.zero_shot(f"t{i}", "abc def") for i in range(3)]
        for p in prompts:
            cached.complete(p)
        cached.complete(prompts[0])  # evicted by prompts[2]; must miss
        assert cached.misses == 4
        cached.complete(prompts[2])  # still resident
        assert cached.hits == 1

    def test_clear_drops_entries_but_keeps_stats(self, setup):
        _, cached, prompt = setup
        cached.complete(prompt)
        cached.clear()
        cached.complete(prompt)  # must miss again: the entry is gone
        assert cached.misses == 2 and cached.hits == 0
        assert cached.stats()["entries"] == 1

    def test_reset_stats(self, setup):
        _, cached, prompt = setup
        cached.complete(prompt)
        cached.complete(prompt)
        cached.reset_stats()
        assert cached.stats() == {
            "hits": 0,
            "misses": 0,
            "hit_rate": 0.0,
            "evictions": 0,
            "coalesced": 0,
            "entries": 1,
        }

    def test_stats_dict(self, setup):
        inner, _, _ = setup
        cached = CachingLLM(inner, max_entries=2)
        builder = PromptBuilder(["A", "B"])
        prompts = [builder.zero_shot(f"t{i}", "abc def") for i in range(3)]
        for p in prompts:
            cached.complete(p)
        cached.complete(prompts[2])
        stats = cached.stats()
        assert stats == {
            "hits": 1,
            "misses": 3,
            "hit_rate": 0.25,
            "evictions": 1,
            "coalesced": 0,
            "entries": 2,
        }

    def test_invalid_capacity(self, setup):
        inner, _, _ = setup
        with pytest.raises(ValueError):
            CachingLLM(inner, max_entries=0)

    def test_empty_prompt(self, setup):
        _, cached, _ = setup
        with pytest.raises(ValueError):
            cached.complete("")
