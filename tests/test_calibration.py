"""Calibration regression tests.

The dataset replicas were tuned so the simulated GPT-3.5's vanilla zero-shot
accuracy approximates the paper's measured saturated-node proportions
(Table V).  These tests pin that calibration so future changes to the
generator or the scoring model cannot silently drift the reproduction.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import load_setup
from repro.graph.datasets import get_spec

#: Tolerance in accuracy points; the replicas target the paper's values
#: but sampling variance at 400 queries is a couple of points.
TOLERANCE = 6.0


@pytest.mark.parametrize("dataset", ["cora", "citeseer", "pubmed"])
def test_zero_shot_matches_paper_target(dataset):
    setup = load_setup(dataset, num_queries=400)
    run = setup.make_engine("vanilla").run(setup.queries)
    target = get_spec(dataset).zero_shot_target * 100.0
    measured = run.accuracy * 100.0
    assert abs(measured - target) < TOLERANCE, (
        f"{dataset}: zero-shot {measured:.1f}% drifted from paper target {target:.1f}%"
    )


def test_neighbor_text_helps_cora():
    """Cora's 1-hop method must beat vanilla (paper: 72.3 vs 69.0)."""
    setup = load_setup("cora", num_queries=400)
    vanilla = setup.make_engine("vanilla").run(setup.queries)
    one_hop = setup.make_engine("1-hop").run(setup.queries)
    assert one_hop.accuracy > vanilla.accuracy


def test_neighbor_text_roughly_neutral_or_harmful_pubmed():
    """Pubmed's k-hop methods must not beat vanilla meaningfully
    (paper: 87.4/88.8 vs 90.0 — neighbor text is net noise there)."""
    setup = load_setup("pubmed", num_queries=400)
    vanilla = setup.make_engine("vanilla").run(setup.queries)
    one_hop = setup.make_engine("1-hop").run(setup.queries)
    assert one_hop.accuracy <= vanilla.accuracy + 0.01


def test_sns_is_strongest_method_on_small_datasets():
    """SNS beats k-hop random on Cora (paper Table IV column ordering)."""
    setup = load_setup("cora", num_queries=400)
    sns = setup.make_engine("sns").run(setup.queries)
    one_hop = setup.make_engine("1-hop").run(setup.queries)
    assert sns.accuracy >= one_hop.accuracy


def test_gpt4o_mini_underperforms_gpt35():
    """The paper's Table VII finding: GPT-4o-mini is weaker on TAGs."""
    setup = load_setup("pubmed", num_queries=400)
    gpt35 = setup.make_engine("1-hop", model="gpt-3.5").run(setup.queries)
    mini = setup.make_engine("1-hop", model="gpt-4o-mini").run(setup.queries)
    assert mini.accuracy < gpt35.accuracy
