"""Cascade frontier experiment: the router's headline cost/accuracy claim.

The acceptance bar for the cascade: on at least one dataset, a routed
configuration lands within one accuracy point of the strong-model-only
baseline while paying at least 30% fewer simulated dollars.  The reduced
cora replica (80 queries, scale 0.15) runs the whole frontier in seconds;
every stage — D(t_i) fitting, entry routing, confidence escalation,
per-tier pricing — feeds the measured numbers, so this doubles as an
end-to-end integration test of the routed stack.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.cascade import (
    format_cascade,
    inadequacy_map,
    quantile_threshold,
    run_cascade,
)


@pytest.fixture(scope="module")
def frontier():
    return run_cascade(
        dataset="cora",
        num_queries=80,
        scale=0.15,
        confidence_thresholds=(0.5, 0.6),
    )


class TestCascadeFrontier:
    def test_routed_matches_strong_accuracy_at_30pct_lower_cost(self, frontier):
        best = frontier.best_routed()
        assert best.accuracy >= frontier.strong_only.accuracy - 0.01, (
            f"best routed point {best.label} lost more than 1 accuracy point: "
            f"{best.accuracy:.3f} vs strong-only {frontier.strong_only.accuracy:.3f}"
        )
        saving = 1.0 - best.cost_usd / frontier.strong_only.cost_usd
        assert saving >= 0.30, (
            f"best routed point {best.label} saved only {saving:.0%} vs the "
            f"strong-only baseline (needs >= 30%)"
        )

    def test_baselines_bracket_the_cascade(self, frontier):
        assert frontier.cheap_only.cost_usd < frontier.strong_only.cost_usd
        for point in frontier.routed:
            assert point.cost_usd <= frontier.strong_only.cost_usd * 1.05
            assert point.cost_usd >= frontier.cheap_only.cost_usd * 0.95

    def test_routed_points_account_every_query(self, frontier):
        n = frontier.cheap_only.tier_counts["gpt-4o-mini"]
        for point in frontier.routed:
            assert sum(point.tier_counts.values()) == n
            assert 0.0 <= point.escalated_fraction <= 1.0

    def test_format_renders_all_points(self, frontier):
        table = format_cascade(frontier)
        assert "Cascade frontier" in table
        assert "gpt-4o-mini only" in table
        assert "gpt-3.5 only" in table
        for point in frontier.routed:
            assert point.label in table


class TestHelpers:
    def test_quantile_threshold_bounds(self):
        scores = {i: i / 10 for i in range(11)}
        assert quantile_threshold(scores, 0.0) == 0.0
        assert quantile_threshold(scores, 1.0) == 1.0
        with pytest.raises(ValueError):
            quantile_threshold(scores, 1.5)

    def test_inadequacy_map_keys_are_plain_ints(self):
        class FakeScorer:
            def score(self, nodes):
                return np.asarray(nodes, dtype=np.float64) / 100.0

        mapping = inadequacy_map(FakeScorer(), np.array([3, 7], dtype=np.int64))
        assert mapping == {3: 0.03, 7: 0.07}
        assert all(type(k) is int for k in mapping)
