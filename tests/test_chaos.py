"""Tests for the deterministic chaos-injection subsystem.

Covers the fault DSL (validation, JSON round-trip, presets), every
injector (LLM faults, cache chaos, scheduler worker faults, checkpoint
crash), the transparency contract (an empty plan is an exact pass-through),
crash/resume replay-exactness through the serve journal, and the
:class:`ChaosInvariantChecker` audit — both that clean runs pass and that
seeded violations are caught.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.io.runs import RunCheckpointer
from repro.llm.caching import CachingLLM
from repro.llm.reliability import (
    InjectedFaultError,
    SimulatedClock,
    resilient,
)
from repro.llm.simulated import SimulatedLLM
from repro.runtime.chaos import (
    MUTATION_MODES,
    PRESET_NAMES,
    CacheCorruption,
    ChaosController,
    ChaosInvariantChecker,
    ChaosInvariantViolation,
    CheckpointCrash,
    ErrorBurst,
    EvictionStorm,
    FaultPlan,
    LatencyStorm,
    MalformedPayload,
    SimulatedCrash,
    TenantFlood,
    WorkerCrash,
    WorkerStall,
    mutate_text,
    preset,
)
from repro.runtime.scheduler import QueryScheduler
from repro.runtime.serve import (
    AdmissionPolicy,
    ServeRequest,
    ServingLayer,
    TenantSpec,
)
from repro.utils.rng import spawn_rng

from tests.equivalence import (
    Scenario,
    ServeScenario,
    assert_equivalent,
    assert_serve_equivalent,
    run_scenario,
    run_serve_scenario,
)


def controller(plan: FaultPlan, clock: SimulatedClock | None = None) -> ChaosController:
    return ChaosController(plan, clock=clock)


def node_prompt(tag, builder, index: int = 0) -> str:
    """A real zero-shot prompt (the simulated model parses its structure)."""
    node = tag.graph.texts[index]
    return builder.zero_shot(node.title, node.abstract)


# ------------------------------------------------------------------ fault DSL


class TestFaultValidation:
    def test_windowed_faults_reject_bad_windows(self):
        for cls in (ErrorBurst, LatencyStorm, MalformedPayload, CacheCorruption):
            with pytest.raises(ValueError, match="start"):
                cls(start=-1.0, end=5.0)
            with pytest.raises(ValueError, match="start"):
                cls(start=5.0, end=5.0)

    def test_rates_must_be_in_unit_interval(self):
        with pytest.raises(ValueError, match="failure_rate"):
            ErrorBurst(start=0.0, end=1.0, failure_rate=0.0)
        with pytest.raises(ValueError, match="failure_rate"):
            ErrorBurst(start=0.0, end=1.0, failure_rate=1.5)
        with pytest.raises(ValueError, match="rate"):
            MalformedPayload(start=0.0, end=1.0, rate=2.0)
        with pytest.raises(ValueError, match="rate"):
            CacheCorruption(start=0.0, end=1.0, rate=0.0)

    def test_unknown_mutation_modes_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            MalformedPayload(start=0.0, end=1.0, modes=("truncate", "bitflip"))
        with pytest.raises(ValueError, match="unknown mode"):
            CacheCorruption(start=0.0, end=1.0, modes=("zalgo",))
        with pytest.raises(ValueError, match="non-empty"):
            MalformedPayload(start=0.0, end=1.0, modes=())

    def test_misc_fault_validation(self):
        with pytest.raises(ValueError, match="eviction"):
            EvictionStorm(times=())
        with pytest.raises(ValueError, match=">= 0"):
            EvictionStorm(times=(-1.0,))
        with pytest.raises(ValueError, match="stall_seconds"):
            WorkerStall(stall_seconds=0.0)
        with pytest.raises(ValueError, match="flush_index"):
            CheckpointCrash(flush_index=-1)
        with pytest.raises(ValueError, match="tenant"):
            TenantFlood(tenant="")
        with pytest.raises(ValueError, match="count"):
            TenantFlood(tenant="acme", count=0)

    def test_plan_rejects_non_faults(self):
        with pytest.raises(TypeError, match="not a fault"):
            FaultPlan(faults=("surprise",))

    def test_window_matching_is_half_open_and_scoped(self):
        burst = ErrorBurst(start=10.0, end=20.0, model="gpt-3.5", tenant="acme")
        assert burst.matches(10.0, "retry(gpt-3.5)", "acme")
        assert not burst.matches(20.0, "gpt-3.5", "acme"), "end is exclusive"
        assert not burst.matches(9.9, "gpt-3.5", "acme")
        assert not burst.matches(15.0, "gpt-4", "acme"), "model substring must match"
        assert not burst.matches(15.0, "gpt-3.5", "umbrella"), "tenant is exact"
        assert ErrorBurst(start=0.0, end=1.0).matches(0.5, "anything", None)

    def test_plan_helpers(self):
        plan = preset("everything", tenant="acme")
        assert not plan.empty
        assert preset("none").empty
        assert len(plan.of_type(ErrorBurst)) == 1
        assert len(plan.of_type(ErrorBurst, LatencyStorm)) == 2
        assert not plan.has_tenant_scoped_faults, "floods do not scope LLM faults"
        scoped = FaultPlan(faults=(LatencyStorm(start=0, end=1, tenant="acme"),))
        assert scoped.has_tenant_scoped_faults


class TestPlanJSON:
    @pytest.mark.parametrize("name", PRESET_NAMES)
    def test_every_preset_round_trips(self, name):
        plan = preset(name, seed=7, tenant="acme")
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_format_version_rejected(self):
        payload = json.loads(preset("error-burst").to_json())
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            FaultPlan.from_json(json.dumps(payload))

    def test_unknown_fault_kind_rejected(self):
        payload = json.loads(preset("none").to_json())
        payload["faults"] = [{"kind": "meteor_strike"}]
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_json(json.dumps(payload))

    def test_unknown_fault_field_rejected(self):
        payload = json.loads(preset("error-burst").to_json())
        payload["faults"][0]["blast_radius"] = 3
        with pytest.raises(ValueError, match="blast_radius"):
            FaultPlan.from_json(json.dumps(payload))

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown preset"):
            preset("rainbows")


class TestMutateText:
    @pytest.mark.parametrize("mode", MUTATION_MODES)
    def test_modes_are_deterministic(self, mode):
        text = "The category is Alpha because of the title."
        a = mutate_text(text, mode, spawn_rng(0, "m", mode))
        b = mutate_text(text, mode, spawn_rng(0, "m", mode))
        assert a == b

    def test_empty_mode_empties(self):
        assert mutate_text("anything", "empty", spawn_rng(0)) == ""

    def test_truncate_shortens(self):
        text = "x" * 50
        out = mutate_text(text, "truncate", spawn_rng(0, "t"))
        assert len(out) < len(text) and text.startswith(out)

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown mutation mode"):
            mutate_text("x", "bitflip", spawn_rng(0))


# ------------------------------------------------------------------ chaos LLM


class TestChaosLLM:
    def test_empty_plan_is_transparent(self, tiny_tag, tiny_builder):
        clock = SimulatedClock()
        prompt = node_prompt(tiny_tag, tiny_builder)
        bare = SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5)
        wrapped_base = SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5)
        chaos = controller(FaultPlan(), clock=clock)
        wrapped = chaos.wrap_llm(wrapped_base)
        assert wrapped.complete(prompt) == bare.complete(prompt)
        assert clock.now == 0.0, "no clock advance outside fault windows"
        assert chaos.fault_log == []
        assert wrapped._attempts == {}, "no RNG bookkeeping outside windows"

    def test_error_burst_raises_inside_window_only(self, tiny_tag, tiny_builder):
        clock = SimulatedClock()
        plan = FaultPlan(faults=(ErrorBurst(start=0.0, end=10.0, failure_rate=1.0),))
        chaos = controller(plan, clock=clock)
        llm = chaos.wrap_llm(SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5))
        prompt = node_prompt(tiny_tag, tiny_builder)
        with pytest.raises(InjectedFaultError, match="chaos error burst"):
            llm.complete(prompt)
        assert llm.injected_errors == 1
        clock.advance(10.0)
        assert llm.complete(prompt).text, "outside the window calls succeed"
        assert chaos.fault_counts() == {"error_burst": 1}

    def test_burst_drives_production_retries(self, tiny_tag, tiny_builder):
        clock = SimulatedClock()
        plan = FaultPlan(
            faults=(ErrorBurst(start=0.0, end=10.0, failure_rate=0.6),), seed=3
        )
        chaos = controller(plan, clock=clock)
        llm = resilient(
            chaos.wrap_llm(SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5)),
            max_attempts=6,
            jitter=0.0,
            failure_threshold=10**9,
            seed=17,
            clock=clock,
        )
        response = llm.complete(node_prompt(tiny_tag, tiny_builder))
        assert response.text, "the retrier rode out the burst"

    def test_latency_storm_advances_the_clock(self, tiny_tag, tiny_builder):
        clock = SimulatedClock()
        plan = FaultPlan(faults=(LatencyStorm(start=0.0, end=5.0, extra_seconds=2.5),))
        chaos = controller(plan, clock=clock)
        llm = chaos.wrap_llm(SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5))
        llm.complete(node_prompt(tiny_tag, tiny_builder))
        assert clock.now == 2.5
        assert llm.storm_seconds == 2.5

    def test_malformed_payload_keeps_token_accounting(self, tiny_tag, tiny_builder):
        prompt = node_prompt(tiny_tag, tiny_builder)
        clean = SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5).complete(prompt)
        plan = FaultPlan(
            faults=(MalformedPayload(start=0.0, end=5.0, rate=1.0, modes=("empty",)),)
        )
        chaos = controller(plan, clock=SimulatedClock())
        llm = chaos.wrap_llm(SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5))
        mutated = llm.complete(prompt)
        assert mutated.text == ""
        assert mutated.prompt_tokens == clean.prompt_tokens
        assert mutated.completion_tokens == clean.completion_tokens
        assert llm.mutated_payloads == 1

    def test_model_and_tenant_scoping(self, tiny_tag, tiny_builder):
        prompt = node_prompt(tiny_tag, tiny_builder)
        plan = FaultPlan(
            faults=(
                ErrorBurst(start=0.0, end=5.0, model="gpt-4"),
                ErrorBurst(start=0.0, end=5.0, tenant="acme"),
            )
        )
        chaos = controller(plan, clock=SimulatedClock())
        llm = chaos.wrap_llm(
            SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5), model="gpt-3.5"
        )
        assert llm.complete(prompt).text, "wrong model and no tenant: passes"
        chaos.current_tenant = "acme"
        with pytest.raises(InjectedFaultError):
            llm.complete(prompt)

    def test_failure_draws_are_keyed_per_prompt_attempt(self, tiny_tag, tiny_builder):
        """Two controllers over the same plan inject the same failures."""
        plan = FaultPlan(
            faults=(ErrorBurst(start=0.0, end=100.0, failure_rate=0.5),), seed=11
        )
        prompts = [node_prompt(tiny_tag, tiny_builder, i) for i in range(12)]

        def burst_pattern():
            chaos = controller(plan, clock=SimulatedClock())
            llm = chaos.wrap_llm(SimulatedLLM(tiny_tag.vocabulary, name="m", seed=5))
            pattern = []
            for prompt in prompts:
                try:
                    llm.complete(prompt)
                    pattern.append("ok")
                except InjectedFaultError:
                    pattern.append("fail")
            return pattern

        first, second = burst_pattern(), burst_pattern()
        assert first == second
        assert "ok" in first and "fail" in first, "rate 0.5 mixes both"


# ---------------------------------------------------------------- cache chaos


class TestCacheChaos:
    def test_corruption_hits_only_cache_reads(self, tiny_tag, tiny_builder):
        clock = SimulatedClock()
        plan = FaultPlan(
            faults=(CacheCorruption(start=0.0, end=100.0, rate=1.0, modes=("empty",)),)
        )
        chaos = controller(plan, clock=clock)
        cache = CachingLLM(SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5))
        agent = chaos.attach_cache(cache)
        prompt = node_prompt(tiny_tag, tiny_builder)
        paid = cache.complete(prompt)
        assert paid.text, "the freshly paid response is never corrupted"
        hit = cache.complete(prompt)
        assert hit.text == ""
        assert agent.corrupted_reads == 1

    def test_eviction_storm_fires_between_polls(self, tiny_tag, tiny_builder):
        clock = SimulatedClock()
        plan = FaultPlan(faults=(EvictionStorm(times=(5.0,)),))
        chaos = controller(plan, clock=clock)
        cache = CachingLLM(SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5))
        agent = chaos.attach_cache(cache)
        prompt = node_prompt(tiny_tag, tiny_builder, 1)
        cache.complete(prompt)
        chaos.poll(4.0)
        assert agent.evictions_fired == 0
        assert cache.complete(prompt).prompt_tokens == 0, "still cached"
        chaos.poll(6.0)
        assert agent.evictions_fired == 1
        assert cache.complete(prompt).prompt_tokens > 0, "cache is cold again"
        chaos.poll(7.0)
        assert agent.evictions_fired == 1, "each storm time fires once"


# ------------------------------------------------------------ scheduler chaos


class TestSchedulerChaos:
    def test_worker_crash_recovers_to_serial_records(self, make_tiny_engine, tiny_split):
        nodes = [int(v) for v in tiny_split.queries[:8]]
        serial = make_tiny_engine().run(nodes)

        plan = FaultPlan(faults=(WorkerCrash(wave_index=0, item_index=1),))
        chaos = controller(plan)
        injector = chaos.scheduler_injector()
        scheduler = QueryScheduler(
            max_batch_size=4,
            max_concurrency=3,
            mode="threads",
            fault_injector=injector,
        )
        chaotic = make_tiny_engine(scheduler=scheduler).run(nodes)
        assert injector.crashes == 1
        assert chaos.fault_counts() == {"worker_crash": 1}
        assert [dataclasses.asdict(r) for r in chaotic.records] == [
            dataclasses.asdict(r) for r in serial.records
        ], "crashed item must be recovered with identical output"

    def test_worker_stall_does_not_change_results(self, make_tiny_engine, tiny_split):
        nodes = [int(v) for v in tiny_split.queries[:6]]
        serial = make_tiny_engine().run(nodes)
        plan = FaultPlan(faults=(WorkerStall(stall_seconds=0.005),))
        chaos = controller(plan)
        injector = chaos.scheduler_injector()
        scheduler = QueryScheduler(
            max_batch_size=3, max_concurrency=2, mode="threads", fault_injector=injector
        )
        stalled = make_tiny_engine(scheduler=scheduler).run(nodes)
        assert injector.stalls == len(nodes)
        assert stalled.records == serial.records


# ----------------------------------------------------------- checkpoint chaos


class TestCheckpointCrash:
    def test_crash_mid_write_recovers_from_backup(
        self, make_tiny_engine, tiny_split, tiny_tag, tmp_path
    ):
        nodes = [int(v) for v in tiny_split.queries[:6]]
        baseline = make_tiny_engine().run(nodes)

        path = tmp_path / "checkpoint.json"
        plan = FaultPlan(faults=(CheckpointCrash(flush_index=3),))
        chaos = controller(plan)
        checker = ChaosInvariantChecker()
        engine = make_tiny_engine()
        with pytest.raises(SimulatedCrash, match="rename pending"):
            engine.run(
                nodes,
                checkpointer=RunCheckpointer(
                    path, flush_every=1, observer=checker, crash_hook=chaos.checkpoint_crash_hook()
                ),
            )
        assert chaos.fault_counts() == {"checkpoint_crash": 1}

        # The crash hit between tmp write and rename: the main file was
        # already rotated away, so only the .bak generation survives.
        resumed_llm = SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5)
        checkpointer = RunCheckpointer(path, observer=checker)
        assert checkpointer.recovered_from_backup
        assert checkpointer.resumed_records == 3, "last verified-good generation"
        assert checker.checkpoint_recoveries, "recovery reported to the observer"

        result = make_tiny_engine(llm=resumed_llm).run(nodes, checkpointer=checkpointer)
        assert result.records == baseline.records
        assert resumed_llm.usage.num_queries == len(nodes) - 3, (
            "exactly the lost generation is re-queried"
        )
        checker.verify(checkpoint=RunCheckpointer(path).state, result=result)


# ------------------------------------------------------------- tenant floods


class TestTenantFloods:
    def test_floods_are_deterministic_and_distinct(self):
        plan = FaultPlan(
            faults=(TenantFlood(tenant="acme", start=2.0, count=5, spacing=0.5),),
            seed=4,
        )
        base = [ServeRequest("alpha", n, arrival=float(n)) for n in (1, 2, 3)]
        pool = list(range(100, 120))
        first = controller(plan).apply_floods(base, nodes=pool)
        second = controller(plan).apply_floods(base, nodes=pool)
        assert first == second, "flood draws are seeded"
        assert len(first) == len(base) + 5
        flooded = [r for r in first if r.tenant == "acme"]
        assert len({r.node for r in flooded}) == 5, "distinct nodes while pool allows"
        assert all(r.node in pool for r in flooded)
        assert [r.arrival for r in flooded] == [2.0, 2.5, 3.0, 3.5, 4.0]
        assert first[: len(base)] == base, "base stream untouched"

    def test_empty_plan_returns_copy(self):
        base = [ServeRequest("alpha", 1)]
        out = controller(FaultPlan()).apply_floods(base)
        assert out == base and out is not base


# ----------------------------------------------- transparency (equivalence)


class TestFaultFreeTransparency:
    """The acceptance criterion: a fault-free chaos run is bit-identical
    to the no-chaos baseline, for both engine runs and the serving layer."""

    def test_engine_run_with_empty_plan_is_bit_identical(
        self, tiny_tag, tiny_split, tiny_builder
    ):
        scenario = Scenario(strategy="boost", num_queries=10, use_ladder=True)
        bare = run_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        chaotic = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder, chaos_plan=FaultPlan()
        )
        assert_equivalent(bare, chaotic)

    def test_serve_run_with_empty_plan_and_journal_is_bit_identical(
        self, tiny_tag, tiny_split, tiny_builder, tmp_path
    ):
        scenario = ServeScenario(num_requests=14, arrival_window=4.0)
        bare = run_serve_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        chaotic = run_serve_scenario(
            scenario,
            tiny_tag,
            tiny_split,
            tiny_builder,
            chaos_plan=FaultPlan(),
            journal_path=tmp_path / "journal.jsonl",
        )
        assert_serve_equivalent(bare, chaotic)

    def test_chaotic_serve_replay_is_reproducible(
        self, tiny_tag, tiny_split, tiny_builder
    ):
        scenario = ServeScenario(num_requests=14, arrival_window=4.0)
        plan = FaultPlan(
            faults=(LatencyStorm(start=0.0, end=30.0, extra_seconds=1.0),), seed=2
        )
        first = run_serve_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder, chaos_plan=plan
        )
        second = run_serve_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder, chaos_plan=plan
        )
        assert_serve_equivalent(first, second)


# ----------------------------------------------------- journal crash/resume


class TestJournalCrashResume:
    def test_full_journal_resume_issues_zero_llm_calls(
        self, tiny_tag, tiny_split, tiny_builder, tmp_path
    ):
        from repro.runtime.serve import ServeJournal

        scenario = ServeScenario(num_requests=14, arrival_window=4.0)
        path = tmp_path / "journal.jsonl"
        live = run_serve_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder, journal_path=path
        )
        assert ServeJournal(path).cycles, "the live run journaled its cycles"
        resumed = run_serve_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder, journal_path=path
        )
        assert resumed.usage[0] == 0, "every cycle replayed from the journal"
        assert resumed.outcomes == live.outcomes
        assert resumed.book == live.book

    def test_half_journal_resume_is_replay_exact(
        self, tiny_tag, tiny_split, tiny_builder, tmp_path
    ):
        from repro.runtime.serve import ServeJournal

        scenario = ServeScenario(num_requests=14, arrival_window=4.0)
        path = tmp_path / "journal.jsonl"
        live = run_serve_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder, journal_path=path
        )
        journal = ServeJournal(path)
        keep = len(journal.cycles) // 2
        assert keep >= 1
        journal.truncate(keep)
        assert len(ServeJournal(path).cycles) == keep

        resumed = run_serve_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder, journal_path=path
        )
        assert resumed.outcomes == live.outcomes, "post-crash cycles replayed exactly"
        assert resumed.book == live.book
        assert resumed.usage[0] < live.usage[0], "journaled prefix issued no calls"
        assert len(ServeJournal(path).cycles) > keep, (
            "the resumed run re-journals the live suffix"
        )

    def test_truncate_validates(self, tmp_path):
        from repro.runtime.serve import JournalError, ServeJournal

        journal = ServeJournal(tmp_path / "journal.jsonl")
        with pytest.raises(ValueError, match="keep_cycles"):
            journal.truncate(-1)
        with pytest.raises(JournalError, match="header"):
            journal.truncate(0)


# --------------------------------------------------------- invariant checker


class TestInvariantChecker:
    def make_layer(self, make_tiny_engine, checker, plan=None):
        clock = SimulatedClock()
        chaos = ChaosController(plan, clock=clock, observer=checker) if plan else None
        engine = make_tiny_engine(clock=clock)
        if chaos is not None:
            engine.llm = chaos.wrap_llm(engine.llm, model="gpt-3.5")
        return ServingLayer(
            engine,
            [TenantSpec("alpha", weight=2), TenantSpec("beta")],
            policy=AdmissionPolicy(wave_quota=4),
            price_model="gpt-3.5",
            observer=checker,
            chaos=chaos,
        )

    def stream(self, tiny_split, n=10):
        nodes = [int(v) for v in tiny_split.queries[:n]]
        return [
            ServeRequest("alpha" if i % 2 else "beta", node, arrival=0.5 * i)
            for i, node in enumerate(nodes)
        ]

    def test_clean_run_passes_verification(self, make_tiny_engine, tiny_split):
        checker = ChaosInvariantChecker()
        layer = self.make_layer(make_tiny_engine, checker)
        stream = self.stream(tiny_split)
        report = layer.replay(stream)
        checker.verify(report=report, book=report.book, num_submitted=len(stream))

    def test_chaotic_run_passes_verification(self, make_tiny_engine, tiny_split):
        checker = ChaosInvariantChecker()
        plan = FaultPlan(
            faults=(LatencyStorm(start=0.0, end=10.0, extra_seconds=1.0),), seed=6
        )
        layer = self.make_layer(make_tiny_engine, checker, plan=plan)
        stream = self.stream(tiny_split)
        report = layer.replay(stream)
        assert checker.chaos_faults, "the storm was observed"
        checker.verify(report=report, book=report.book, num_submitted=len(stream))

    def test_lost_request_is_flagged(self, make_tiny_engine, tiny_split):
        checker = ChaosInvariantChecker()
        layer = self.make_layer(make_tiny_engine, checker)
        stream = self.stream(tiny_split)
        report = layer.replay(stream)
        violations = checker.check(
            report=report, book=report.book, num_submitted=len(stream) + 1
        )
        assert any("lost or duplicated" in v for v in violations)

    def test_unsettled_admission_is_flagged(self):
        checker = ChaosInvariantChecker()
        checker.on_serve_admission("alpha", "admitted_full", 1)
        assert any("never settled" in v for v in checker.check())
        with pytest.raises(ChaosInvariantViolation, match="never settled"):
            checker.verify()

    def test_bogus_events_are_flagged(self):
        checker = ChaosInvariantChecker()
        checker.on_serve_admission("alpha", "teleported", -2)
        checker.on_serve_complete("alpha", "vanished", "ok", -1.0)
        violations = checker.check()
        assert any("unknown admission decision" in v for v in violations)
        assert any("negative queue depth" in v for v in violations)
        assert any("unknown completion status" in v for v in violations)
        assert any("negative completion latency" in v for v in violations)

    def test_overdrawn_ledger_is_flagged(self, make_tiny_engine, tiny_split):
        checker = ChaosInvariantChecker()
        layer = self.make_layer(make_tiny_engine, checker)
        stream = self.stream(tiny_split, n=6)
        report = layer.replay(stream)
        # Forge an overdraft after the fact: the audit must catch it.
        ledger = report.book.tenants["alpha"]
        ledger.budget = max(0, ledger.spent - 1)
        violations = checker.check(report=report, book=report.book)
        assert any("overdrawn" in v for v in violations)

    def test_checkpoint_divergence_is_flagged(self, make_tiny_engine, tiny_split, tmp_path):
        nodes = [int(v) for v in tiny_split.queries[:4]]
        path = tmp_path / "checkpoint.json"
        result = make_tiny_engine().run(nodes, checkpointer=RunCheckpointer(path))
        state = RunCheckpointer(path).state
        checker = ChaosInvariantChecker()
        assert checker.check(checkpoint=state, result=result) == []
        mutated = dataclasses.replace(state.records[0], predicted_label=-7)
        state.records[0] = mutated
        violations = checker.check(checkpoint=state, result=result)
        assert any("disagrees with the result" in v for v in violations)
