"""Chaos injection against the DAG dispatch plan.

The readiness DAG changes *when* work dispatches, not *what* executes — so
every chaos guarantee proved for the wave scheduler must survive dispatch
through the readiness ledger:

* worker crashes against pipelined DAG workers recover to serial records
  with zero duplicate LLM calls (the crash fires before the provider);
* worker stalls reorder thread completion without changing one artifact;
* a checkpoint crash mid-run resumes replay-exactly, re-querying only the
  lost generation;
* the :class:`ChaosInvariantChecker` audits stay clean for chaotic serve
  runs dispatched through the DAG.

Every test also audits the readiness ledger itself: faults must never
produce a read-before-settle or break the canonical topological order.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.io.runs import RunCheckpointer
from repro.llm.reliability import SimulatedClock
from repro.llm.simulated import SimulatedLLM
from repro.runtime.chaos import (
    ChaosController,
    ChaosInvariantChecker,
    CheckpointCrash,
    FaultPlan,
    LatencyStorm,
    SimulatedCrash,
    WorkerCrash,
    WorkerStall,
)
from repro.runtime.scheduler import QueryScheduler
from repro.runtime.serve import AdmissionPolicy, ServeRequest, ServingLayer, TenantSpec

from tests.equivalence import Scenario, assert_equivalent, run_scenario
from tests.test_differential_oracle import audit_dag


def dag_scheduler(mode: str = "threads", injector=None) -> QueryScheduler:
    return QueryScheduler(
        max_batch_size=4,
        max_concurrency=3,
        mode=mode,
        dispatch="dag",
        fault_injector=injector,
    )


class TestWorkerFaultsUnderDag:
    def test_crash_in_pipelined_boost_recovers_to_serial(
        self, tiny_tag, tiny_split, tiny_builder
    ):
        """A DAG worker dying before its LLM call must be recovered on the
        canonical path: identical records, rounds, and base-model usage
        (usage equality *is* the zero-duplicate-calls proof)."""
        scenario = Scenario(strategy="boost", num_queries=12)
        serial = run_scenario(scenario, tiny_tag, tiny_split, tiny_builder)

        # Wave 0 of this boosted run has exactly one member: target it.
        chaos = ChaosController(FaultPlan(faults=(WorkerCrash(wave_index=0, item_index=0),)))
        injector = chaos.scheduler_injector()
        scheduler = dag_scheduler(injector=injector)
        chaotic = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder, scheduler=scheduler
        )
        assert injector.crashes == 1, "the crash must target a DAG worker"
        assert chaos.fault_counts() == {"worker_crash": 1}
        assert_equivalent(serial, chaotic, compare_traces=False)
        audit_dag(scheduler)

    def test_crash_in_plain_dag_run_recovers_to_serial(
        self, make_tiny_engine, tiny_split
    ):
        nodes = [int(v) for v in tiny_split.queries[:8]]
        serial = make_tiny_engine().run(nodes)

        chaos = ChaosController(FaultPlan(faults=(WorkerCrash(wave_index=0, item_index=1),)))
        injector = chaos.scheduler_injector()
        scheduler = dag_scheduler(injector=injector)
        chaotic = make_tiny_engine(scheduler=scheduler).run(nodes)
        assert injector.crashes == 1
        assert [dataclasses.asdict(r) for r in chaotic.records] == [
            dataclasses.asdict(r) for r in serial.records
        ], "crashed item must be recovered with identical output"
        audit_dag(scheduler)

    def test_stalls_on_every_dag_worker_change_nothing(
        self, tiny_tag, tiny_split, tiny_builder
    ):
        scenario = Scenario(strategy="boost", num_queries=10)
        serial = run_scenario(scenario, tiny_tag, tiny_split, tiny_builder)

        chaos = ChaosController(FaultPlan(faults=(WorkerStall(stall_seconds=0.002),)))
        injector = chaos.scheduler_injector()
        scheduler = dag_scheduler(injector=injector)
        stalled = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder, scheduler=scheduler
        )
        assert injector.stalls == serial.usage[0], (
            "every dispatched DAG worker passes through the stall hook"
        )
        assert_equivalent(serial, stalled, compare_traces=False)
        audit_dag(scheduler)

    def test_crash_plus_stall_with_failure_injection(
        self, tiny_tag, tiny_split, tiny_builder
    ):
        """Worker faults layered on top of LLM failure injection: deferral
        bookkeeping, degradation, and recovery all still match the
        wave-threads execution of the same chaotic plan."""
        scenario = Scenario(
            strategy="boost", num_queries=12, failure_rate=0.3, use_ladder=True
        )

        def chaotic_run(dispatch: str):
            chaos = ChaosController(
                FaultPlan(
                    faults=(
                        WorkerCrash(wave_index=0, item_index=0),
                        WorkerStall(wave_index=1, stall_seconds=0.002),
                    )
                )
            )
            injector = chaos.scheduler_injector()
            scheduler = QueryScheduler(
                max_batch_size=4,
                max_concurrency=3,
                mode="threads",
                dispatch=dispatch,
                fault_injector=injector,
            )
            capture = run_scenario(
                scenario, tiny_tag, tiny_split, tiny_builder, scheduler=scheduler
            )
            return capture, injector, scheduler

        wave, wave_injector, _ = chaotic_run("wave")
        dag, dag_injector, scheduler = chaotic_run("dag")
        assert wave_injector.crashes == dag_injector.crashes == 1
        assert_equivalent(wave, dag, compare_traces=False)
        audit_dag(scheduler)


class TestCheckpointCrashUnderDag:
    @pytest.mark.parametrize("mode", ["simulated", "threads"])
    def test_crash_resume_is_replay_exact(
        self, make_tiny_engine, tiny_split, tiny_tag, tmp_path, mode
    ):
        nodes = [int(v) for v in tiny_split.queries[:8]]
        baseline = make_tiny_engine().run(nodes)

        path = tmp_path / "checkpoint.json"
        chaos = ChaosController(FaultPlan(faults=(CheckpointCrash(flush_index=3),)))
        checker = ChaosInvariantChecker()
        engine = make_tiny_engine(scheduler=dag_scheduler(mode=mode))
        with pytest.raises(SimulatedCrash, match="rename pending"):
            engine.run(
                nodes,
                checkpointer=RunCheckpointer(
                    path,
                    flush_every=1,
                    observer=checker,
                    crash_hook=chaos.checkpoint_crash_hook(),
                ),
            )
        assert chaos.fault_counts() == {"checkpoint_crash": 1}

        resumed_llm = SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5)
        checkpointer = RunCheckpointer(path, observer=checker)
        assert checkpointer.recovered_from_backup
        assert checkpointer.resumed_records == 3, "last verified-good generation"

        resume_scheduler = dag_scheduler(mode=mode)
        result = make_tiny_engine(llm=resumed_llm, scheduler=resume_scheduler).run(
            nodes, checkpointer=checkpointer
        )
        assert result.records == baseline.records
        assert resumed_llm.usage.num_queries == len(nodes) - 3, (
            "exactly the lost generation is re-queried — zero duplicate calls"
        )
        checker.verify(checkpoint=RunCheckpointer(path).state, result=result)
        audit_dag(resume_scheduler)
        replays = [e for e in resume_scheduler.dag.events if e.replayed]
        assert len(replays) == 3, "checkpointed records replay as instant settles"


class TestServeChaosUnderDag:
    def make_layer(self, make_tiny_engine, checker, scheduler, plan=None):
        clock = SimulatedClock()
        chaos = ChaosController(plan, clock=clock, observer=checker) if plan else None
        engine = make_tiny_engine(clock=clock, scheduler=scheduler)
        if chaos is not None:
            engine.llm = chaos.wrap_llm(engine.llm, model="gpt-3.5")
        return ServingLayer(
            engine,
            [TenantSpec("alpha", weight=2), TenantSpec("beta")],
            policy=AdmissionPolicy(wave_quota=4),
            price_model="gpt-3.5",
            observer=checker,
            chaos=chaos,
        )

    def stream(self, tiny_split, n=10):
        nodes = [int(v) for v in tiny_split.queries[:n]]
        return [
            ServeRequest("alpha" if i % 2 else "beta", node, arrival=0.5 * i)
            for i, node in enumerate(nodes)
        ]

    def test_chaotic_serve_through_dag_passes_audit(self, make_tiny_engine, tiny_split):
        checker = ChaosInvariantChecker()
        scheduler = dag_scheduler(mode="simulated")
        plan = FaultPlan(
            faults=(LatencyStorm(start=0.0, end=10.0, extra_seconds=1.0),), seed=6
        )
        layer = self.make_layer(make_tiny_engine, checker, scheduler, plan=plan)
        stream = self.stream(tiny_split)
        report = layer.replay(stream)
        assert checker.chaos_faults, "the storm was observed"
        checker.verify(report=report, book=report.book, num_submitted=len(stream))
        audit_dag(scheduler)

    def test_clean_threads_serve_through_dag_passes_audit(
        self, make_tiny_engine, tiny_split
    ):
        checker = ChaosInvariantChecker()
        scheduler = dag_scheduler(mode="threads")
        layer = self.make_layer(make_tiny_engine, checker, scheduler)
        stream = self.stream(tiny_split)
        report = layer.replay(stream)
        checker.verify(report=report, book=report.book, num_submitted=len(stream))
        audit_dag(scheduler)
