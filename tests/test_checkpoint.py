"""Property tests for checkpoint/resume: interrupted ≡ uninterrupted.

The contract (for any interruption point ``k``): a run that crashes after
``k`` executed queries and resumes from its checkpoint issues *exactly*
``n − k`` further LLM calls and produces a result identical to the run that
was never interrupted.  Both plain engine runs and boosting (where resume
must reproduce the round structure through replay) are covered.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boosting import QueryBoostingStrategy
from repro.io.runs import RunCheckpointer
from repro.llm.interface import LLMClient, LLMResponse
from repro.llm.simulated import SimulatedLLM
from repro.runtime.engine import MultiQueryEngine
from repro.selection.registry import make_selector

NUM_QUERIES = 12
MAX_EXAMPLES = 8


class Interrupted(RuntimeError):
    """Simulated crash; deliberately not a TransientLLMError."""


class InterruptingLLM(LLMClient):
    """Crashes the run once ``stop_after`` calls have been answered."""

    def __init__(self, inner: LLMClient, stop_after: int | None = None):
        super().__init__(name=f"interrupt({inner.name})", tokenizer=inner.tokenizer)
        self.inner = inner
        self.stop_after = stop_after

    def _complete(self, prompt: str) -> str:
        raise AssertionError("unreachable: complete() is overridden")

    def complete(self, prompt: str) -> LLMResponse:
        if self.stop_after is not None and self.usage.num_queries >= self.stop_after:
            raise Interrupted(f"crash after {self.stop_after} calls")
        response = self.inner.complete(prompt)
        self.usage.record(response)
        return response


def build_engine(tiny_graph, tiny_split, tiny_builder, llm) -> MultiQueryEngine:
    # Built inline (not via the function-scoped factory fixture) because
    # @given re-runs the test body many times per fixture instantiation.
    return MultiQueryEngine(
        graph=tiny_graph,
        llm=llm,
        selector=make_selector("1-hop"),
        builder=tiny_builder,
        labeled=tiny_split.labeled,
        max_neighbors=4,
        seed=9,
    )


def fresh_llm(tiny_tag, stop_after: int | None = None) -> InterruptingLLM:
    return InterruptingLLM(
        SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5), stop_after=stop_after
    )


def interrupt_then_resume(tiny_graph, tiny_split, tiny_builder, tiny_tag, k, execute):
    """Run ``execute`` uninterrupted, then interrupted at ``k`` + resumed.

    Returns (uninterrupted result, resumed result, resumed llm) so callers
    can assert equivalence and the exact resumed call count.
    """
    queries = tiny_split.queries[:NUM_QUERIES]
    full = execute(build_engine(tiny_graph, tiny_split, tiny_builder, fresh_llm(tiny_tag)),
                   queries, None)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "checkpoint.json"
        crashing = fresh_llm(tiny_tag, stop_after=k)
        engine = build_engine(tiny_graph, tiny_split, tiny_builder, crashing)
        with pytest.raises(Interrupted):
            execute(engine, queries, RunCheckpointer(path))
        assert crashing.usage.num_queries == k

        resumed_llm = fresh_llm(tiny_tag)
        engine = build_engine(tiny_graph, tiny_split, tiny_builder, resumed_llm)
        checkpointer = RunCheckpointer(path)
        assert checkpointer.resumed_records == k
        result = execute(engine, queries, checkpointer)
        assert RunCheckpointer(path).state.completed is True
    return full, result, resumed_llm


@given(k=st.integers(min_value=0, max_value=NUM_QUERIES - 1))
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_resumed_plain_run_matches_uninterrupted(
    tiny_graph, tiny_split, tiny_builder, tiny_tag, k
):
    def execute(engine, queries, checkpointer):
        return engine.run(queries, checkpointer=checkpointer)

    full, resumed, llm = interrupt_then_resume(
        tiny_graph, tiny_split, tiny_builder, tiny_tag, k, execute
    )
    assert llm.usage.num_queries == NUM_QUERIES - k
    assert resumed.records == full.records


@given(k=st.integers(min_value=0, max_value=NUM_QUERIES - 1))
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_resumed_boosting_matches_uninterrupted(
    tiny_graph, tiny_split, tiny_builder, tiny_tag, k
):
    rounds: dict[int, list[list[int]]] = {}

    def execute(engine, queries, checkpointer):
        boosted = QueryBoostingStrategy().execute(engine, queries, checkpointer=checkpointer)
        rounds[id(checkpointer)] = boosted.rounds
        return boosted.run

    full, resumed, llm = interrupt_then_resume(
        tiny_graph, tiny_split, tiny_builder, tiny_tag, k, execute
    )
    # Resume replays the cached prefix through the deterministic scheduler:
    # identical records, identical round structure, zero duplicate calls.
    assert llm.usage.num_queries == NUM_QUERIES - k
    assert resumed.records == full.records
    uninterrupted_rounds, resumed_rounds = rounds[id(None)], list(rounds.values())[-1]
    assert resumed_rounds == uninterrupted_rounds
