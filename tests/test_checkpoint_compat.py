"""Backward compatibility: v2-format checkpoints load and resume today.

``tests/data/checkpoint_v2.json`` is a committed mid-run snapshot written
by the format-2 era (pre ``latency_seconds``, pre cascade provenance) over
the tiny fixture graph (generator seed 42, split seed 3, first 6 queries,
1-hop, gpt-3.5 seed 5).  The current reader must load it, default the
missing fields, and resume the run without re-issuing the 6 completed
LLM calls.  Regenerate only on a deliberate fixture-graph change — any
rewrite under the *current* format would defeat the test.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

from repro.io.runs import _FORMAT_VERSION, RunCheckpointer, load_checkpoint

FIXTURE = Path(__file__).parent / "data" / "checkpoint_v2.json"


def test_fixture_really_is_v2():
    payload = json.loads(FIXTURE.read_text())
    assert payload["format_version"] == 2
    assert not payload["completed"]
    assert all("latency_seconds" not in r for r in payload["records"])
    assert all("tier" not in r for r in payload["records"])


def test_v2_checkpoint_loads_with_defaulted_fields():
    state = load_checkpoint(FIXTURE)
    assert len(state.records) == 6
    assert not state.completed
    for record in state.records:
        assert record.latency_seconds is None
        assert record.tier is None
        assert record.escalations == 0
        assert record.cost_usd is None
        assert record.outcome == "ok"


def test_v2_checkpoint_resumes_under_current_writer(
    make_tiny_engine, tiny_split, tmp_path
):
    # Work on a copy: resuming rewrites the file in the current format.
    path = tmp_path / "ckpt.json"
    shutil.copy(FIXTURE, path)

    checkpointer = RunCheckpointer(path)
    assert checkpointer.resumed_records == 6

    engine = make_tiny_engine()
    result = engine.run(tiny_split.queries[:12], checkpointer=checkpointer)
    assert result.num_queries == 12

    # The 6 checkpointed queries replayed: only 6 fresh LLM calls were paid.
    assert engine.llm.usage.num_queries == 6

    # The rewritten file is a completed current-format checkpoint carrying
    # the union of replayed and fresh records.
    rewritten = json.loads(path.read_text())
    assert rewritten["format_version"] == _FORMAT_VERSION
    assert rewritten["completed"]
    assert len(rewritten["records"]) == 12
