"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_experiments(self):
        args = build_parser().parse_args(["experiment", "table4"])
        assert args.name == "table4"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])

    def test_classify_defaults(self):
        args = build_parser().parse_args(["classify"])
        assert args.dataset == "cora"
        assert args.strategy == "none"
        assert args.tau == 0.2
        assert args.models is None
        assert args.escalate_on == "both"
        assert args.confidence_threshold == 0.6
        assert args.inadequacy_quantile == 0.8

    def test_classify_rejects_unknown_escalation_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["classify", "--escalate-on", "sometimes"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "cora" in out and "2,449,029" in out

    def test_prices(self, capsys):
        assert main(["prices"]) == 0
        out = capsys.readouterr().out
        assert "gpt-3.5" in out and "$0.00050" in out

    def test_info_small_scale(self, capsys):
        assert main(["info", "cora", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "edge homophily" in out
        assert "cora replica" in out

    def test_classify_quick(self, capsys, tmp_path):
        run_path = tmp_path / "run.json"
        csv_path = tmp_path / "run.csv"
        code = main(
            [
                "classify",
                "--dataset", "cora",
                "--scale", "0.15",
                "--queries", "30",
                "--strategy", "none",
                "--save-run", str(run_path),
                "--csv", str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert run_path.exists() and csv_path.exists()

    def test_classify_joint_quick(self, capsys):
        code = main(
            [
                "classify",
                "--dataset", "cora",
                "--scale", "0.15",
                "--queries", "30",
                "--strategy", "joint",
            ]
        )
        assert code == 0
        assert "w/ N_i" in capsys.readouterr().out

    def test_classify_routed_cascade(self, capsys, tmp_path):
        run_path = tmp_path / "routed.json"
        code = main(
            [
                "classify",
                "--dataset", "cora",
                "--scale", "0.15",
                "--queries", "24",
                "--models", "gpt-4o-mini,gpt-3.5",
                "--escalate-on", "confidence",
                "--confidence-threshold", "0.6",
                "--save-run", str(run_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "model=gpt-4o-mini,gpt-3.5" in out
        assert "cascade" in out
        assert "Cascade tiers" in out
        assert "gpt-4o-mini" in out and "gpt-3.5" in out
        assert run_path.exists()

    def test_classify_routed_rejects_failure_injection(self, capsys):
        code = main(
            [
                "classify",
                "--dataset", "cora",
                "--scale", "0.15",
                "--queries", "8",
                "--models", "gpt-4o-mini,gpt-3.5",
                "--failure-rate", "0.1",
            ]
        )
        assert code == 2
        assert "--models" in capsys.readouterr().err

    def test_classify_traced(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.prom"
        code = main(
            [
                "classify",
                "--dataset", "cora",
                "--scale", "0.15",
                "--queries", "8",
                "--strategy", "boost",
                "--cache",
                "--trace", str(trace_path),
                "--metrics", str(metrics_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cache     :" in out and "hit rate" in out
        assert "Token/cost breakdown" in out
        assert "Boosting rounds" in out
        assert trace_path.exists()
        assert "repro_queries_total" in metrics_path.read_text()

        # The emitted file passes validation via the trace subcommand...
        assert main(["trace", str(trace_path)]) == 0
        assert "Token/cost breakdown" in capsys.readouterr().out

        # ...and traced runs stay prediction-identical to untraced ones.
        from repro.obs.tracing import read_trace

        lines = read_trace(trace_path)
        spans = [x for x in lines if x.get("kind") == "span" and x["name"] == "query"]
        assert len(spans) == 8

    def test_classify_metrics_json(self, tmp_path):
        import json

        metrics_path = tmp_path / "metrics.json"
        code = main(
            [
                "classify",
                "--dataset", "cora",
                "--scale", "0.15",
                "--queries", "8",
                "--metrics", str(metrics_path),
            ]
        )
        assert code == 0
        snapshot = json.loads(metrics_path.read_text())
        assert "repro_queries_total" in snapshot["families"]

    def test_trace_rejects_invalid_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "span"}\n')
        assert main(["trace", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--synthetic", "10"])
        assert args.tenants == "alpha:2,beta:1,gamma:1"
        assert args.wave_quota == 8
        assert args.dispatch == "simulated"
        assert args.seconds_per_call == 0.5

    def test_requires_exactly_one_stream_source(self, capsys, tmp_path):
        assert main(["serve", "--dataset", "cora", "--scale", "0.15"]) == 2
        stream = tmp_path / "s.jsonl"
        stream.write_text('{"tenant": "alpha", "node": 1}\n')
        assert (
            main(
                [
                    "serve",
                    "--dataset", "cora",
                    "--scale", "0.15",
                    "--requests", str(stream),
                    "--synthetic", "5",
                ]
            )
            == 2
        )
        assert "exactly one" in capsys.readouterr().err

    def test_rejects_bad_tenant_spec(self, capsys):
        code = main(
            [
                "serve",
                "--dataset", "cora",
                "--scale", "0.15",
                "--queries", "10",
                "--synthetic", "5",
                "--tenants", ":2",
            ]
        )
        assert code == 2
        assert "bad --tenants" in capsys.readouterr().err

    def test_serve_synthetic_quick(self, capsys, tmp_path):
        stream_path = tmp_path / "stream.jsonl"
        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "serve",
                "--dataset", "cora",
                "--scale", "0.15",
                "--queries", "30",
                "--synthetic", "12",
                "--tenants", "alpha:2:9000,beta:1:-:0.05",
                "--batch-size", "4",
                "--workers", "2",
                "--seconds-per-call", "0.25",
                "--save-requests", str(stream_path),
                "--trace", str(trace_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Per-tenant serving summary" in out
        assert "goodput" in out
        assert stream_path.exists()
        # The written trace is schema-valid and carries admission events.
        from repro.obs.schema import validate_trace_file

        stats = validate_trace_file(trace_path)
        assert stats["num_spans"] > 0
        from repro.obs.tracing import read_trace

        events = [
            x for x in read_trace(trace_path)
            if x.get("kind") == "span" and x["name"] == "admission"
        ]
        assert len(events) == 12

    def test_serve_replays_saved_stream(self, capsys, tmp_path):
        from repro.runtime.serve import ServeRequest, save_requests

        stream_path = tmp_path / "stream.jsonl"
        save_requests(
            [ServeRequest("alpha", 3), ServeRequest("beta", 5, arrival=1.0)],
            stream_path,
        )
        code = main(
            [
                "serve",
                "--dataset", "cora",
                "--scale", "0.15",
                "--queries", "10",
                "--requests", str(stream_path),
            ]
        )
        assert code == 0
        assert "requests  : 2" in capsys.readouterr().out


class TestAnalyzeCommand:
    @pytest.fixture()
    def traced_run(self, tmp_path):
        """One traced boosted classify run (quiet) for the analyzers."""
        trace_path = tmp_path / "trace.jsonl"
        args = [
            "classify",
            "--dataset", "cora",
            "--scale", "0.15",
            "--queries", "8",
            "--strategy", "boost",
            "--cache",
            "--trace", str(trace_path),
        ]
        assert main(args) == 0
        return trace_path, args

    def test_parser_defaults(self):
        args = build_parser().parse_args(["analyze", "critical-path", "t.jsonl"])
        assert args.concurrency == 4
        assert args.batch_size is None
        assert args.format == "text"
        args = build_parser().parse_args(["analyze", "diff", "a.jsonl", "b.jsonl"])
        assert args.tolerance == 0.1

    def test_requires_analysis_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze"])

    def test_critical_path_on_trace(self, capsys, traced_run):
        trace_path, _args = traced_run
        capsys.readouterr()
        assert main(["analyze", "critical-path", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "Per-wave makespan decomposition" in out
        assert "Blocking query" in out
        assert "what-if no barrier" in out

    def test_critical_path_detects_bench_artifact(self, capsys, tmp_path):
        import json

        bench = tmp_path / "BENCH_scheduler.json"
        bench.write_text(json.dumps({
            "max_concurrency": 4,
            "max_batch_size": 16,
            "seconds_per_call": 1.0,
            "waves": [{"wave_index": 0, "num_queries": 5, "num_batches": 1,
                       "serial_seconds": 5.0, "overlapped_seconds": 2.0}],
        }))
        assert main(["analyze", "critical-path", str(bench)]) == 0
        out = capsys.readouterr().out
        assert "bench artifact" in out
        assert "n/a (aggregate)" in out

    def test_costs_reports_and_exits_clean(self, capsys, traced_run):
        trace_path, _args = traced_run
        capsys.readouterr()
        assert main(["analyze", "costs", str(trace_path), "--format", "md"]) == 0
        out = capsys.readouterr().out
        assert "### Spend by outcome tier" in out

    def test_slo_json_payload(self, capsys, traced_run):
        import json

        trace_path, _args = traced_run
        capsys.readouterr()
        assert main(["analyze", "slo", str(trace_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["all_met"] is True

    def test_diff_identical_runs_verdict(self, capsys, traced_run, tmp_path):
        import json

        trace_path, args = traced_run
        second = tmp_path / "second.jsonl"
        args = list(args)
        args[args.index(str(trace_path))] = str(second)
        assert main(args) == 0
        capsys.readouterr()
        assert main([
            "analyze", "diff", str(trace_path), str(second), "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "identical"
        assert payload["regressions"] == []

    def test_invalid_trace_exits_nonzero(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "span"}\n')
        assert main(["analyze", "costs", str(bad)]) == 1
        assert "INVALID trace" in capsys.readouterr().err
