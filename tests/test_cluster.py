"""Tests for the sharded multi-worker cluster runtime.

The load-bearing contract is **one-shard transparency**: a ``shards=1``
simulated cluster run must be bit-identical to the unsharded engine —
records, rounds, ledger spend, checkpoint files.  On top of that: gossip
delivers settled pseudo-labels across shard boundaries with bounded
staleness, the modeled timings behave (makespan ≤ serial, speedup ≥ 1),
construction validates its invariants, and the serving layer routes
requests to the owning shard while keeping DRR fairness and the
LedgerBook global.
"""

from __future__ import annotations

import pytest

from repro.core.boosting import BoostingStepper, QueryBoostingStrategy
from repro.core.budget import BudgetLedger
from repro.experiments.common import load_setup
from repro.experiments.sharding import build_cluster, cluster_cache_stats
from repro.graph.sampling import partition_graph
from repro.io.runs import RunCheckpointer
from repro.llm.caching import CachingLLM, MemoryCacheStore, SharedFlight
from repro.llm.reliability import LatencyLLM, SimulatedClock
from repro.runtime.cluster import ClusterWorker, ShardedCluster, partition_queries
from repro.runtime.scheduler import QueryScheduler
from repro.runtime.serve import ServeRequest, ServingLayer, TenantSpec


@pytest.fixture(scope="module")
def setup():
    return load_setup("cora", num_queries=40, scale=0.15)


def fresh_setup():
    return load_setup("cora", num_queries=40, scale=0.15)


def make_unsharded_engine(setup, store=None):
    """The exact stack a one-shard cluster worker gets, outside the cluster."""
    clock = SimulatedClock()
    llm = CachingLLM(
        LatencyLLM(setup.make_llm(), clock, seconds_per_call=1.0),
        store=MemoryCacheStore(max_entries=None) if store is None else store,
        flight=SharedFlight(),
    )
    return setup.make_engine(
        "sns",
        llm=llm,
        clock=clock,
        scheduler=QueryScheduler(max_batch_size=8, max_concurrency=4, mode="simulated"),
        ledger=BudgetLedger(),
    )


class TestPartitionQueries:
    def test_splits_by_owner_preserving_order(self, setup):
        partition = partition_graph(setup.graph, 2)
        shards = partition_queries(partition, setup.queries)
        assert sum(len(s) for s in shards) == len(setup.queries)
        for part, nodes in enumerate(shards):
            assert (partition.assignment[nodes] == part).all()
            # order preserved: same relative order as the original array
            original = [n for n in setup.queries if partition.part_of(int(n)) == part]
            assert nodes.tolist() == original

    def test_one_part_is_identity(self, setup):
        partition = partition_graph(setup.graph, 1)
        (only,) = partition_queries(partition, setup.queries)
        assert only.tolist() == setup.queries.tolist()


class TestOneShardTransparency:
    def test_records_rounds_and_ledger_match_unsharded(self):
        serial_setup = fresh_setup()
        engine = make_unsharded_engine(serial_setup)
        serial = QueryBoostingStrategy().execute(engine, serial_setup.queries)

        cluster_setup = fresh_setup()
        cluster = build_cluster(cluster_setup, 1, store=MemoryCacheStore(max_entries=None))
        result = cluster.run_boosting(QueryBoostingStrategy())

        assert result.combined.records == serial.run.records
        assert [list(r) for r in result.worker_results[0].rounds] == [
            list(r) for r in serial.rounds
        ]
        assert cluster.engines[0].ledger.spent == engine.ledger.spent
        assert cluster.engines[0].ledger.charges == engine.ledger.charges
        assert result.gossiped_labels == 0 and result.gossip_deliveries == 0

    def test_checkpoint_files_match_unsharded(self, tmp_path):
        serial_setup = fresh_setup()
        engine = make_unsharded_engine(serial_setup)
        serial_ckpt = RunCheckpointer(tmp_path / "serial.json")
        QueryBoostingStrategy().execute(
            engine, serial_setup.queries, checkpointer=serial_ckpt
        )

        cluster_setup = fresh_setup()
        cluster = build_cluster(cluster_setup, 1, store=MemoryCacheStore(max_entries=None))
        cluster_ckpt = RunCheckpointer(tmp_path / "cluster.json")
        cluster.run_boosting(QueryBoostingStrategy(), checkpointers=[cluster_ckpt])

        assert (tmp_path / "serial.json").read_bytes() == (
            tmp_path / "cluster.json"
        ).read_bytes()


class TestMultiShard:
    def test_two_shards_cover_all_queries_once(self):
        setup = fresh_setup()
        cluster = build_cluster(setup, 2, store=MemoryCacheStore(max_entries=None))
        result = cluster.run_boosting(QueryBoostingStrategy())
        assert sorted(r.node for r in result.combined.records) == sorted(
            setup.queries.tolist()
        )

    def test_gossip_delivers_cross_shard_labels(self):
        setup = fresh_setup()
        cluster = build_cluster(setup, 2, store=MemoryCacheStore(max_entries=None))
        result = cluster.run_boosting(QueryBoostingStrategy())
        assert result.gossiped_labels > 0
        assert result.gossip_deliveries >= result.gossiped_labels
        # Delivered labels are visible in the receiving engine's pseudo state.
        published = {
            node
            for stepper_result in result.worker_results
            for record in stepper_result.run.records
            for node in [record.node]
        }
        for worker in cluster.workers:
            remote = [
                n
                for n in worker.engine.pseudo_labeled
                if cluster.partition.part_of(int(n)) != worker.index
            ]
            for node in remote:
                assert node in published

    def test_gossip_off_isolates_shards(self):
        setup = fresh_setup()
        cluster = build_cluster(
            setup, 2, store=MemoryCacheStore(max_entries=None), gossip=False
        )
        result = cluster.run_boosting(QueryBoostingStrategy())
        assert result.gossiped_labels == 0
        for worker in cluster.workers:
            for node in worker.engine.pseudo_labeled:
                assert cluster.partition.part_of(int(node)) == worker.index

    def test_timing_bounds(self):
        setup = fresh_setup()
        cluster = build_cluster(setup, 4, store=MemoryCacheStore(max_entries=None))
        result = cluster.run_boosting(QueryBoostingStrategy())
        assert result.makespan_seconds <= result.serial_seconds
        assert result.speedup >= 1.0
        for timing in result.timings:
            assert timing.makespan_seconds <= timing.serial_seconds

    def test_shared_cache_sees_zero_duplicates(self):
        setup = fresh_setup()
        store = MemoryCacheStore(max_entries=None)
        cluster = build_cluster(setup, 4, store=store)
        result = cluster.run_boosting(QueryBoostingStrategy())
        stats = cluster_cache_stats(cluster)
        assert stats["inner_llm_calls"] == stats["distinct_prompts"]
        assert stats["inner_llm_calls"] == len(result.combined.records)

    def test_warm_shared_store_pays_nothing(self):
        store = MemoryCacheStore(max_entries=None)
        flight = SharedFlight()
        cold = build_cluster(fresh_setup(), 2, store=store, flight=flight)
        cold_result = cold.run_boosting(QueryBoostingStrategy())
        warm = build_cluster(fresh_setup(), 2, store=store, flight=flight)
        warm_result = warm.run_boosting(QueryBoostingStrategy())
        assert cluster_cache_stats(warm)["inner_llm_calls"] == 0
        # Hits cost zero tokens/latency, so token fields differ; the
        # *answers* must not.
        assert [
            (r.node, r.predicted_label, r.round_index)
            for r in warm_result.combined.records
        ] == [
            (r.node, r.predicted_label, r.round_index)
            for r in cold_result.combined.records
        ]

    def test_per_worker_ledgers_reconcile_with_records(self):
        setup = fresh_setup()
        cluster = build_cluster(setup, 2, store=MemoryCacheStore(max_entries=None))
        result = cluster.run_boosting(QueryBoostingStrategy())
        ledger_spend = sum(e.ledger.spent for e in cluster.engines)
        record_tokens = sum(
            r.prompt_tokens + r.completion_tokens for r in result.combined.records
        )
        assert ledger_spend == record_tokens


class TestConstructionValidation:
    def test_no_workers_rejected(self, setup):
        partition = partition_graph(setup.graph, 1)
        with pytest.raises(ValueError, match="at least one worker"):
            ShardedCluster([], partition)

    def test_worker_count_must_match_parts(self, setup):
        partition = partition_graph(setup.graph, 2)
        cluster = build_cluster(setup, 2)
        with pytest.raises(ValueError, match="workers"):
            ShardedCluster(cluster.workers[:1], partition)

    def test_misaligned_indices_rejected(self, setup):
        cluster = build_cluster(setup, 2)
        flipped = [
            ClusterWorker(index=1 - w.index, engine=w.engine, queries=w.queries)
            for w in cluster.workers
        ]
        with pytest.raises(ValueError, match="index-aligned"):
            ShardedCluster(flipped, cluster.partition)

    def test_foreign_queries_rejected(self, setup):
        cluster = build_cluster(setup, 2)
        workers = cluster.workers
        swapped = [
            ClusterWorker(index=0, engine=workers[0].engine, queries=workers[1].queries),
            ClusterWorker(index=1, engine=workers[1].engine, queries=workers[0].queries),
        ]
        with pytest.raises(ValueError, match="owned by"):
            ShardedCluster(swapped, cluster.partition)

    def test_checkpointer_slots_must_align(self, setup):
        cluster = build_cluster(setup, 2, store=MemoryCacheStore(max_entries=None))
        with pytest.raises(ValueError, match="checkpointer"):
            cluster.run_boosting(QueryBoostingStrategy(), checkpointers=[None])

    def test_engine_for_routes_by_partition(self, setup):
        cluster = build_cluster(setup, 2)
        for node in setup.queries[:10]:
            owner = cluster.partition.part_of(int(node))
            assert cluster.engine_for(int(node)) is cluster.engines[owner]


class TestStepperGuards:
    def test_step_after_done_raises(self, setup):
        cluster = build_cluster(setup, 1, store=MemoryCacheStore(max_entries=None))
        worker = cluster.workers[0]
        stepper = BoostingStepper(
            QueryBoostingStrategy(), worker.engine, worker.queries
        )
        while not stepper.done:
            stepper.step()
        with pytest.raises(RuntimeError):
            stepper.step()

    def test_finish_before_done_raises(self, setup):
        cluster = build_cluster(setup, 1, store=MemoryCacheStore(max_entries=None))
        worker = cluster.workers[0]
        stepper = BoostingStepper(
            QueryBoostingStrategy(), worker.engine, worker.queries
        )
        with pytest.raises(RuntimeError):
            stepper.finish()


class TestClusterServe:
    def make_requests(self, setup, tenants, count=24):
        nodes = setup.queries[:count]
        return [
            ServeRequest(tenants[i % len(tenants)].name, int(node), arrival=0.0)
            for i, node in enumerate(nodes)
        ]

    def test_one_shard_serve_matches_plain_layer(self):
        tenants = [TenantSpec("alpha", weight=2), TenantSpec("beta", weight=1)]

        plain_setup = fresh_setup()
        plain_engine = make_unsharded_engine(plain_setup)
        plain_engine.ledger = None
        plain = ServingLayer(plain_engine, tenants=tenants)
        plain_report = plain.replay(self.make_requests(plain_setup, tenants))

        cluster_setup = fresh_setup()
        cluster = build_cluster(
            cluster_setup, 1, store=MemoryCacheStore(max_entries=None), ledgers=False
        )
        layer = ServingLayer(tenants=tenants, cluster=cluster)
        report = layer.replay(self.make_requests(cluster_setup, tenants))

        plain_view = [
            (o.request.tenant, o.request.node, o.status, o.tier, o.completed_at)
            for o in plain_report.outcomes
        ]
        cluster_view = [
            (o.request.tenant, o.request.node, o.status, o.tier, o.completed_at)
            for o in report.outcomes
        ]
        assert cluster_view == plain_view
        assert report.book.snapshot() == plain_report.book.snapshot()

    def test_multi_shard_serve_keeps_fairness_and_accounting(self):
        setup = fresh_setup()
        cluster = build_cluster(
            setup, 2, store=MemoryCacheStore(max_entries=None), ledgers=False
        )
        tenants = [TenantSpec("alpha", weight=2), TenantSpec("beta", weight=1)]
        layer = ServingLayer(tenants=tenants, cluster=cluster)
        report = layer.replay(self.make_requests(setup, tenants))

        served = {t.name: 0 for t in tenants}
        for outcome in report.outcomes:
            assert outcome.answered
            served[outcome.request.tenant] += 1
        assert all(count > 0 for count in served.values())

        # Records were produced by the owning shard's engine, and charges
        # reconcile token-for-token on the tenant ledgers.
        charged = {t.name: 0 for t in tenants}
        for outcome in report.outcomes:
            if outcome.record is not None:
                charged[outcome.request.tenant] += outcome.record.total_tokens
        snapshot = report.book.snapshot()
        for name, tokens in charged.items():
            assert snapshot[name][0] == tokens

    def test_cluster_engines_with_ledgers_rejected(self):
        setup = fresh_setup()
        cluster = build_cluster(setup, 2, store=MemoryCacheStore(max_entries=None))
        with pytest.raises(ValueError, match="ledger"):
            ServingLayer(tenants=[TenantSpec("a")], cluster=cluster)
