"""Concurrency stress tests for the LLM wrapper stack.

The batched scheduler's thread dispatcher shares one wrapper chain
(cache → breaker → retrier → flaky → model) across workers, so every
wrapper must be thread-safe.  These tests hammer each wrapper from many
threads and compare against a single-threaded oracle (exact totals where
order-independence guarantees them, linearizability invariants where it
does not).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.llm.interface import LLMClient, UsageTracker
from repro.llm.reliability import (
    CircuitBreaker,
    FlakyLLM,
    RetryingLLM,
    SimulatedClock,
    TransientLLMError,
    track_call_retries,
)
from repro.llm.caching import CachingLLM
from repro.obs.hooks import RunObserver


class StaticLLM(LLMClient):
    """Deterministic echo model: same prompt, same answer, any thread."""

    def __init__(self, delay: float = 0.0):
        super().__init__(name="static")
        self.delay = delay

    def _complete(self, prompt: str) -> str:
        if self.delay:
            time.sleep(self.delay)
        return f"answer:{prompt}"


class ScriptedLLM(LLMClient):
    """Fails the first ``fails[prompt]`` attempts of each prompt, then answers."""

    def __init__(self, fails: dict[str, int]):
        super().__init__(name="scripted")
        self._fails = dict(fails)
        self._lock = threading.Lock()

    def _complete(self, prompt: str) -> str:
        with self._lock:
            remaining = self._fails.get(prompt, 0)
            if remaining:
                self._fails[prompt] = remaining - 1
                raise TransientLLMError(f"scripted failure for {prompt!r}")
        return f"answer:{prompt}"


def _run_threads(num_threads: int, work) -> list:
    with ThreadPoolExecutor(max_workers=num_threads) as pool:
        return [f.result() for f in [pool.submit(work, i) for i in range(num_threads)]]


class TestCachingLLMSingleFlight:
    def test_concurrent_identical_prompts_pay_one_call(self):
        inner = StaticLLM(delay=0.02)
        cache = CachingLLM(inner)
        texts = _run_threads(8, lambda i: cache.complete("shared prompt").text)
        assert set(texts) == {"answer:shared prompt"}
        assert inner.usage.num_queries == 1  # single-flight: one paid call
        assert cache.misses == 1
        assert cache.hits == 7

    def test_k_distinct_prompts_pay_exactly_k(self):
        inner = StaticLLM(delay=0.002)
        cache = CachingLLM(inner)
        prompts = [f"prompt {i % 4}" for i in range(32)]  # K=4 distinct

        def work(i):
            return cache.complete(prompts[i]).text

        texts = _run_threads(8, lambda t: [work(i) for i in range(t, 32, 8)])
        assert inner.usage.num_queries == 4
        assert cache.misses == 4
        assert cache.hits == 28
        flat = [text for chunk in texts for text in chunk]
        assert all(text.startswith("answer:prompt ") for text in flat)

    def test_waiters_account_as_zero_token_hits(self):
        inner = StaticLLM(delay=0.02)
        cache = CachingLLM(inner)
        responses = _run_threads(6, lambda i: cache.complete("p").total_tokens)
        paid = [tokens for tokens in responses if tokens > 0]
        assert len(paid) == 1  # only the leader carries token cost
        assert cache.usage.total_tokens == paid[0]

    def test_failed_leader_releases_waiters_who_reissue(self):
        inner = ScriptedLLM({"p": 1})  # first attempt fails, second succeeds
        cache = CachingLLM(inner)
        barrier = threading.Barrier(6)
        outcomes = []
        lock = threading.Lock()

        def work(i):
            barrier.wait()
            try:
                text = cache.complete("p").text
            except TransientLLMError:
                with lock:
                    outcomes.append("error")
            else:
                with lock:
                    outcomes.append(text)

        _run_threads(6, work)
        assert outcomes.count("error") == 1  # the failing leader's caller
        assert outcomes.count("answer:p") == 5
        assert cache.misses == 2  # failed leader + the re-issuing new leader
        assert cache.stats()["entries"] == 1


class TestRetryingLLMThreaded:
    def _totals(self, num_workers: int) -> tuple:
        """Run the same call multiset through the stack with N workers."""
        clock = SimulatedClock()
        flaky = FlakyLLM(
            StaticLLM(),
            failure_rate=0.35,
            seed=13,
            charge_failed_prompts=True,
            key="prompt",  # failure script keyed by prompt: order-independent
        )
        retrying = RetryingLLM(
            flaky, max_attempts=5, jitter=0.0, deadline_seconds=None,
            seed=17, clock=clock,
        )
        prompts = [f"query {i}" for i in range(40)]
        if num_workers == 1:
            for prompt in prompts:
                retrying.complete(prompt)
        else:
            _run_threads(
                num_workers,
                lambda t: [retrying.complete(p) for p in prompts[t::num_workers]],
            )
        return (
            flaky.calls,
            flaky.failures,
            flaky.wasted_prompt_tokens,
            retrying.retries,
            retrying.simulated_wait_seconds,
            retrying.usage.num_queries,
            retrying.usage.prompt_tokens,
            retrying.usage.completion_tokens,
            clock.now,
        )

    def test_totals_match_single_thread_oracle(self):
        oracle = self._totals(num_workers=1)
        threaded = self._totals(num_workers=6)
        assert threaded == oracle
        assert oracle[3] > 0  # the scenario actually retried something

    def test_per_call_retry_tally_is_thread_local(self):
        clock = SimulatedClock()
        inner = ScriptedLLM({"flaky prompt": 2})
        retrying = RetryingLLM(
            inner, max_attempts=4, jitter=0.0, seed=1, clock=clock
        )
        barrier = threading.Barrier(2)

        def call(prompt):
            barrier.wait()
            with track_call_retries() as tally:
                retrying.complete(prompt)
            return tally.retries

        with ThreadPoolExecutor(max_workers=2) as pool:
            flaky_future = pool.submit(call, "flaky prompt")
            clean_future = pool.submit(call, "clean prompt")
            assert flaky_future.result() == 2
            assert clean_future.result() == 0  # unpolluted by the other thread


class TestCircuitBreakerThreaded:
    class _TransitionLog(RunObserver):
        def __init__(self):
            self.transitions: list[tuple[str, str]] = []

        def on_breaker_transition(self, old: str, new: str, at: float) -> None:
            self.transitions.append((old, new))

    def test_hammered_breaker_keeps_linearizable_state(self):
        log = self._TransitionLog()
        clock = SimulatedClock()
        breaker = CircuitBreaker(
            failure_threshold=3, recovery_seconds=5.0, half_open_successes=2,
            clock=clock, observer=log,
        )

        def work(t):
            for i in range(200):
                if breaker.allow():
                    # Every thread opens with a failure burst (guaranteeing a
                    # trip), then settles into a mixed success/failure load.
                    if i < 20 or (t * 31 + i) % 3 == 0:
                        breaker.record_failure()
                    else:
                        breaker.record_success()
                else:
                    clock.advance(1.0)

        _run_threads(8, work)
        assert breaker.state in ("closed", "open", "half_open")
        assert breaker.times_opened >= 1  # the mix trips it at least once
        # Linearizability: every transition must chain from the previous one.
        for (_, prev_new), (next_old, _) in zip(log.transitions, log.transitions[1:]):
            assert next_old == prev_new, f"broken transition chain: {log.transitions}"

    def test_rejections_only_while_open(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(
            failure_threshold=2, recovery_seconds=1e9, clock=clock
        )

        def work(t):
            rejected = 0
            for _ in range(100):
                if not breaker.allow():
                    rejected += 1
                else:
                    breaker.record_failure()
            return rejected

        results = _run_threads(4, work)
        assert breaker.state == "open"
        assert breaker.rejected_calls == sum(results)
        assert breaker.rejected_calls > 0


class TestSharedPrimitives:
    def test_usage_tracker_never_drops_counts(self):
        tracker = UsageTracker()
        from repro.llm.interface import LLMResponse

        response = LLMResponse(text="x", prompt_tokens=3, completion_tokens=2)
        _run_threads(8, lambda t: [tracker.record(response) for _ in range(500)])
        assert tracker.num_queries == 4000
        assert tracker.prompt_tokens == 12000
        assert tracker.completion_tokens == 8000

    def test_simulated_clock_advances_atomically(self):
        clock = SimulatedClock()
        _run_threads(8, lambda t: [clock.advance(0.5) for _ in range(1000)])
        assert clock.now == pytest.approx(4000.0)
