"""Tests for response confidence and confidence-filtered boosting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.boosting import QueryBoostingStrategy
from repro.llm.simulated import SimulatedLLM
from repro.prompts.builder import PromptBuilder
from repro.text.vocabulary import ClassVocabulary


@pytest.fixture(scope="module")
def vocab() -> ClassVocabulary:
    return ClassVocabulary.build(["A", "B"], seed=4, words_per_class=30)


class TestResponseConfidence:
    def test_confidence_in_unit_interval(self, vocab):
        llm = SimulatedLLM(vocab, seed=0)
        builder = PromptBuilder(["A", "B"])
        response = llm.complete(builder.zero_shot("t", " ".join(vocab.class_words[0][:10])))
        assert response.confidence is not None
        assert 0.0 < response.confidence <= 1.0

    def test_clear_text_more_confident_than_mixed(self, vocab):
        llm = SimulatedLLM(vocab, seed=0, noise_scale=0.05)
        builder = PromptBuilder(["A", "B"])
        clear = llm.complete(builder.zero_shot("t1", " ".join(vocab.class_words[0][:20])))
        mixed_text = " ".join(vocab.class_words[0][:10] + vocab.class_words[1][:10])
        mixed = llm.complete(builder.zero_shot("t2", mixed_text))
        assert clear.confidence > mixed.confidence

    def test_unknown_categories_have_no_confidence(self, vocab):
        llm = SimulatedLLM(vocab, seed=0)
        prompt = (
            "Target paper: Title: t\nAbstract: a\n"
            "Task:\nCategories:\n[X, Y]\nWhich category does the target paper belong to?\n"
            "Please output the most likely category as a Python list: Category: ['XX']."
        )
        assert llm.complete(prompt).confidence is None

    def test_engine_records_confidence(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine()
        record = engine.execute_query(int(tiny_split.queries[0]))
        assert record.confidence is not None
        assert 0.0 < record.confidence <= 1.0


class TestConfidenceFilteredBoosting:
    def test_threshold_withholds_uncertain_pseudo_labels(self, make_tiny_engine, tiny_split):
        strict = make_tiny_engine()
        QueryBoostingStrategy(min_pseudo_confidence=0.99999).execute(strict, tiny_split.queries)
        permissive = make_tiny_engine()
        QueryBoostingStrategy(min_pseudo_confidence=None).execute(permissive, tiny_split.queries)
        assert len(strict.pseudo_labeled) < len(permissive.pseudo_labeled)
        assert len(permissive.pseudo_labeled) == tiny_split.num_queries

    def test_all_queries_still_executed(self, make_tiny_engine, tiny_split):
        result = QueryBoostingStrategy(min_pseudo_confidence=0.9).execute(
            make_tiny_engine(), tiny_split.queries
        )
        assert result.run.num_queries == tiny_split.num_queries

    def test_published_pseudo_labels_are_more_accurate(self, make_tiny_engine, tiny_split):
        """The extension's premise: confident pseudo-labels are better."""
        engine = make_tiny_engine()
        result = QueryBoostingStrategy(min_pseudo_confidence=0.8).execute(
            engine, tiny_split.queries
        )
        published = engine.pseudo_labeled
        records = {r.node: r for r in result.run.records}
        pub_acc = np.mean([records[n].correct for n in published])
        withheld = [n for n in records if n not in published]
        if withheld:
            withheld_acc = np.mean([records[n].correct for n in withheld])
            assert pub_acc >= withheld_acc

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            QueryBoostingStrategy(min_pseudo_confidence=1.5)
