"""Tests for synthetic text generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.text.corpus import TextSynthesizer
from repro.text.tokenizer import Tokenizer
from repro.text.vocabulary import ClassVocabulary


@pytest.fixture(scope="module")
def vocab() -> ClassVocabulary:
    return ClassVocabulary.build(["A", "B", "C"], seed=11, words_per_class=30, background_size=60)


def own_class_share(vocab: ClassVocabulary, text: str, label: int) -> float:
    """Fraction of keyword hits that belong to ``label``'s vocabulary."""
    ev = vocab.evidence(Tokenizer().words(text))
    total = ev.sum()
    return float(ev[label] / total) if total else 0.0


class TestSynthesize:
    def test_high_clarity_text_favors_own_class(self, vocab):
        synth = TextSynthesizer(vocab, title_words=10, abstract_words=100)
        rng = np.random.default_rng(0)
        text = synth.synthesize(label=1, clarity=0.95, rng=rng)
        assert own_class_share(vocab, text.full, 1) > 0.8

    def test_low_clarity_text_is_confusable(self, vocab):
        synth = TextSynthesizer(vocab, title_words=10, abstract_words=100)
        rng = np.random.default_rng(0)
        text = synth.synthesize(label=1, clarity=0.1, rng=rng)
        assert own_class_share(vocab, text.full, 1) < 0.4

    def test_lengths_roughly_match_config(self, vocab):
        synth = TextSynthesizer(vocab, title_words=12, abstract_words=80)
        rng = np.random.default_rng(1)
        text = synth.synthesize(label=0, clarity=0.7, rng=rng, length_jitter=0.1)
        assert 8 <= len(text.title.split()) <= 16
        assert 60 <= len(text.abstract.split()) <= 100

    def test_full_concatenates(self, vocab):
        synth = TextSynthesizer(vocab)
        text = synth.synthesize(0, 0.5, np.random.default_rng(2))
        assert text.title in text.full and text.abstract in text.full

    def test_title_clarity_shift_degrades_title_only(self, vocab):
        synth = TextSynthesizer(vocab, title_words=40, abstract_words=120)
        shares_title, shares_abstract = [], []
        for seed in range(8):
            rng = np.random.default_rng(seed)
            text = synth.synthesize(label=2, clarity=0.9, rng=rng, title_clarity_shift=-0.6)
            shares_title.append(own_class_share(vocab, text.title, 2))
            shares_abstract.append(own_class_share(vocab, text.abstract, 2))
        assert np.mean(shares_title) < np.mean(shares_abstract) - 0.2

    def test_explicit_confuser_used(self, vocab):
        synth = TextSynthesizer(vocab, title_words=30, abstract_words=100)
        rng = np.random.default_rng(3)
        text = synth.synthesize(label=0, clarity=0.2, rng=rng, confuser=2)
        ev = vocab.evidence(Tokenizer().words(text.full))
        assert ev[2] > ev[1]  # confusion goes to class 2, not class 1

    def test_invalid_clarity(self, vocab):
        with pytest.raises(ValueError, match="clarity"):
            TextSynthesizer(vocab).synthesize(0, 1.5, np.random.default_rng(0))

    def test_invalid_label(self, vocab):
        with pytest.raises(ValueError, match="label"):
            TextSynthesizer(vocab).synthesize(9, 0.5, np.random.default_rng(0))

    def test_invalid_confuser(self, vocab):
        with pytest.raises(ValueError, match="confuser"):
            TextSynthesizer(vocab).synthesize(0, 0.5, np.random.default_rng(0), confuser=7)

    def test_invalid_density(self, vocab):
        with pytest.raises(ValueError):
            TextSynthesizer(vocab, title_keyword_density=0.0)
