"""Corrupted-persistence coverage over committed fixtures.

The fixtures under ``tests/data/`` are the three damage shapes the
durability layer must *detect* (never deserialize into garbage) and,
where a good generation survives, *recover* from:

* ``corrupt_checkpoint_truncated.json`` — a v5 checkpoint cut mid-file,
  the shape a crash during a non-atomic write leaves;
* ``corrupt_checkpoint_bitflip.json`` — valid JSON whose record payload
  was silently altered, so the per-record CRC no longer matches;
* ``malformed_requests.jsonl`` — a request stream with one line torn
  mid-write amid valid lines.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.io.runs import (
    CheckpointCorruptionError,
    RunCheckpointer,
    backup_path,
    load_checkpoint,
    save_checkpoint,
)
from repro.runtime.serve import load_requests

DATA = Path(__file__).parent / "data"
TRUNCATED = DATA / "corrupt_checkpoint_truncated.json"
BITFLIPPED = DATA / "corrupt_checkpoint_bitflip.json"
MALFORMED_STREAM = DATA / "malformed_requests.jsonl"


class TestCorruptCheckpointDetection:
    def test_truncated_checkpoint_is_detected(self):
        with pytest.raises(CheckpointCorruptionError):
            load_checkpoint(TRUNCATED)

    def test_bitflipped_checkpoint_is_detected(self):
        # The file is syntactically valid JSON — only the checksums tell.
        json.loads(BITFLIPPED.read_text())
        with pytest.raises(CheckpointCorruptionError, match="CRC|checksum|crc"):
            load_checkpoint(BITFLIPPED)

    def test_detection_is_a_value_error(self):
        """Pre-v5 callers catching ValueError still catch corruption."""
        with pytest.raises(ValueError):
            load_checkpoint(TRUNCATED)


class TestCorruptCheckpointRecovery:
    def stage(self, tmp_path: Path, corrupt: Path) -> Path:
        """A run directory whose main checkpoint is corrupt but whose
        ``.bak`` holds a verified-good previous generation."""
        path = tmp_path / "checkpoint.json"
        good = RunCheckpointer(path)
        from repro.runtime.results import QueryRecord

        good.append(
            QueryRecord(
                node=5,
                true_label=1,
                predicted_label=1,
                prompt_tokens=100,
                completion_tokens=8,
                num_neighbors=2,
                num_neighbor_labels=1,
                num_pseudo_labels=0,
            )
        )
        save_checkpoint(good.state, path)  # rotates gen 0 to .bak
        shutil.copy(corrupt, path)
        return path

    @pytest.mark.parametrize("fixture", [TRUNCATED, BITFLIPPED], ids=["truncated", "bitflip"])
    def test_recovers_to_last_good_generation(self, tmp_path, fixture):
        path = self.stage(tmp_path, fixture)
        checkpointer = RunCheckpointer(path)
        assert checkpointer.recovered_from_backup
        assert checkpointer.resumed_records == 1
        assert checkpointer.state.records[0].node == 5
        # Recovery re-established a loadable main file.
        assert load_checkpoint(path).records == checkpointer.state.records

    @pytest.mark.parametrize("fixture", [TRUNCATED, BITFLIPPED], ids=["truncated", "bitflip"])
    def test_both_generations_corrupt_raises(self, tmp_path, fixture):
        path = tmp_path / "checkpoint.json"
        shutil.copy(fixture, path)
        shutil.copy(fixture, backup_path(path))
        with pytest.raises(CheckpointCorruptionError):
            RunCheckpointer(path)

    def test_missing_main_with_good_backup_recovers(self, tmp_path):
        """The crash-between-renames window: main gone, .bak verified-good."""
        path = self.stage(tmp_path, TRUNCATED)
        path.unlink()
        checkpointer = RunCheckpointer(path)
        assert checkpointer.recovered_from_backup
        assert checkpointer.resumed_records == 1


class TestMalformedRequestStream:
    def test_raise_mode_names_the_exact_line(self):
        with pytest.raises(ValueError, match=r"malformed_requests\.jsonl:3"):
            load_requests(MALFORMED_STREAM)

    def test_skip_mode_loads_the_valid_remainder(self):
        requests = load_requests(MALFORMED_STREAM, on_error="skip")
        assert [(r.tenant, r.node) for r in requests] == [
            ("alpha", 11),
            ("beta", 42),
            ("beta", 99),
        ]
        assert requests[1].include_neighbors is False
        assert requests[2].arrival == 1.5

    def test_unknown_field_is_malformed(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text('{"tenant": "a", "node": 1, "priority": 9}\n')
        with pytest.raises(ValueError, match="priority"):
            load_requests(path)
        assert load_requests(path, on_error="skip") == []

    def test_bad_on_error_mode_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            load_requests(MALFORMED_STREAM, on_error="ignore")
