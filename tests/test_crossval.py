"""Tests for k-fold cross-validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.crossval import cross_val_proba, kfold_indices
from repro.ml.mlp import MLPClassifier


class TestKFoldIndices:
    def test_covers_all_indices_once(self):
        folds = kfold_indices(17, 3, seed=0)
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(17))

    def test_train_test_disjoint_and_complete(self):
        for train, test in kfold_indices(20, 4, seed=1):
            assert np.intersect1d(train, test).size == 0
            assert len(train) + len(test) == 20

    def test_fold_sizes_balanced(self):
        folds = kfold_indices(10, 3, seed=2)
        sizes = sorted(len(test) for _, test in folds)
        assert sizes == [3, 3, 4]

    def test_deterministic(self):
        a = kfold_indices(15, 3, seed=5)
        b = kfold_indices(15, 3, seed=5)
        for (ta, sa), (tb, sb) in zip(a, b):
            assert np.array_equal(ta, tb) and np.array_equal(sa, sb)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kfold_indices(5, 1)
        with pytest.raises(ValueError):
            kfold_indices(3, 4)


class TestCrossValProba:
    def test_shape_and_rows_sum(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(30, 4))
        y = rng.integers(0, 3, size=30)
        probs = cross_val_proba(MLPClassifier(epochs=10), x, y, num_classes=3, k=3, seed=0)
        assert probs.shape == (30, 3)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_model_not_mutated(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(12, 2))
        y = rng.integers(0, 2, size=12)
        template = MLPClassifier(epochs=5)
        cross_val_proba(template, x, y, num_classes=2, k=3, seed=0)
        assert template.weights_ is None

    def test_out_of_fold_probs_differ_from_in_sample(self):
        """Held-out probabilities should be less confident than in-sample."""
        rng = np.random.default_rng(2)
        # Memorizable noise: in-sample fit should be confident, CV should not.
        x = rng.normal(size=(30, 8))
        y = rng.integers(0, 2, size=30)
        model = MLPClassifier(hidden_sizes=(32,), epochs=300, learning_rate=0.05)
        cv = cross_val_proba(model, x, y, num_classes=2, k=3, seed=0)
        fitted = model.clone()
        fitted.fit(x, y, num_classes=2)
        in_sample = fitted.predict_proba(x)
        cv_conf = cv[np.arange(30), y].mean()
        in_conf = in_sample[np.arange(30), y].mean()
        assert cv_conf < in_conf

    def test_misaligned(self):
        with pytest.raises(ValueError):
            cross_val_proba(MLPClassifier(), np.ones((3, 2)), np.ones(4, dtype=int), 2)
