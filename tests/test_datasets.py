"""Tests for the dataset replica registry."""

from __future__ import annotations

import pytest

from repro.graph.datasets import (
    DATASET_SPECS,
    dataset_names,
    get_spec,
    load_dataset,
)


class TestRegistry:
    def test_five_datasets(self):
        assert dataset_names() == ["cora", "citeseer", "pubmed", "ogbn-arxiv", "ogbn-products"]

    def test_get_spec_case_insensitive(self):
        assert get_spec("CORA").name == "cora"

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            get_spec("imaginary")

    def test_table2_statistics(self):
        """Full-scale statistics must match the paper's Table II exactly."""
        expected = {
            "cora": (2_708, 5_429, 1_433, 7),
            "citeseer": (3_186, 4_277, 500, 6),
            "pubmed": (19_717, 44_338, 384, 3),
            "ogbn-arxiv": (169_343, 1_166_243, 128, 40),
            "ogbn-products": (2_449_029, 61_859_140, 100, 47),
        }
        for name, (nodes, edges, feats, classes) in expected.items():
            spec = get_spec(name)
            assert spec.full_num_nodes == nodes
            assert spec.full_num_edges == edges
            assert spec.feature_dim == feats
            assert spec.num_classes == classes

    def test_node_types(self):
        assert get_spec("ogbn-products").node_type == "Product"
        assert get_spec("cora").node_type == "Paper"

    def test_class_names_unique(self):
        for spec in DATASET_SPECS.values():
            assert len(set(spec.class_names)) == len(spec.class_names)


class TestScaling:
    def test_scaled_nodes_proportional(self):
        spec = get_spec("ogbn-arxiv")
        assert spec.scaled_nodes(0.1) == pytest.approx(16_934, abs=1)

    def test_scaled_edges_preserve_avg_degree(self):
        spec = get_spec("ogbn-products")
        scale = 0.01
        nodes = spec.scaled_nodes(scale)
        edges = spec.scaled_edges(scale)
        real_avg = 2 * spec.full_num_edges / spec.full_num_nodes
        assert 2 * edges / nodes == pytest.approx(real_avg, rel=0.01)

    def test_minimum_nodes_floor(self):
        spec = get_spec("cora")
        assert spec.scaled_nodes(1e-9) >= spec.num_classes * 4

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            get_spec("cora").generator_config(scale=0.0)


class TestLoadDataset:
    def test_load_small_scale(self):
        tag = load_dataset("cora", scale=0.1, seed=0)
        assert tag.graph.num_nodes == get_spec("cora").scaled_nodes(0.1)
        assert tag.graph.num_classes == 7

    def test_cached(self):
        a = load_dataset("cora", scale=0.1, seed=0)
        b = load_dataset("cora", scale=0.1, seed=0)
        assert a is b

    def test_different_seed_not_cached_together(self):
        a = load_dataset("cora", scale=0.1, seed=0)
        b = load_dataset("cora", scale=0.1, seed=1)
        assert a is not b
