"""Tests for the degradation ladder and failure-aware boosting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.boosting import QueryBoostingStrategy
from repro.llm.interface import LLMClient, LLMResponse
from repro.llm.reliability import FlakyLLM, RetryingLLM, TransientLLMError
from repro.llm.simulated import SimulatedLLM
from repro.ml.mlp import MLPClassifier
from repro.runtime.fallback import DegradationLadder, FeatureSurrogate
from repro.runtime.results import OUTCOME_TIERS


class AlwaysDownLLM(LLMClient):
    """Every call raises; the ladder is the only way to answer."""

    def __init__(self, inner: LLMClient):
        super().__init__(name="down", tokenizer=inner.tokenizer)
        self.inner = inner
        self.calls = 0

    def _complete(self, prompt: str) -> str:
        raise AssertionError("unreachable: complete() is overridden")

    def complete(self, prompt: str) -> LLMResponse:
        self.calls += 1
        raise TransientLLMError("backend down")


class FailFirstCallsLLM(LLMClient):
    """Fails the first ``n`` calls outright, then recovers."""

    def __init__(self, inner: LLMClient, n: int):
        super().__init__(name=f"fail-first-{n}", tokenizer=inner.tokenizer)
        self.inner = inner
        self.n = n
        self.calls = 0

    def _complete(self, prompt: str) -> str:
        raise AssertionError("unreachable: complete() is overridden")

    def complete(self, prompt: str) -> LLMResponse:
        self.calls += 1
        if self.calls <= self.n:
            raise TransientLLMError(f"down for call {self.calls}")
        response = self.inner.complete(prompt)
        self.usage.record(response)
        return response


@pytest.fixture()
def tiny_surrogate(tiny_graph, tiny_split):
    clf = MLPClassifier(seed=0, epochs=40)
    labeled = tiny_split.labeled
    clf.fit(
        tiny_graph.features[labeled].astype(np.float64),
        tiny_graph.labels[labeled],
        num_classes=tiny_graph.num_classes,
    )
    return FeatureSurrogate(clf, tiny_graph)


class TestDegradationLadder:
    def test_surrogate_prediction_requires_surrogate(self):
        with pytest.raises(ValueError, match="no surrogate"):
            DegradationLadder(surrogate=None).surrogate_prediction(0)

    def test_degrades_to_pruned_prompt(self, make_tiny_engine, tiny_llm, tiny_split):
        # First call (with neighbors) fails; the zero-shot fallback succeeds.
        llm = FailFirstCallsLLM(tiny_llm, n=1)
        engine = make_tiny_engine(llm=llm, ladder=DegradationLadder())
        record = engine.execute_query(int(tiny_split.queries[0]))
        assert record.outcome == "degraded_pruned"
        assert record.pruned and record.num_neighbors == 0
        assert record.predicted_label is not None
        assert record.total_tokens > 0

    def test_degrades_to_surrogate(self, make_tiny_engine, tiny_llm, tiny_surrogate, tiny_split):
        engine = make_tiny_engine(
            llm=AlwaysDownLLM(tiny_llm), ladder=DegradationLadder(surrogate=tiny_surrogate)
        )
        record = engine.execute_query(int(tiny_split.queries[0]))
        assert record.outcome == "degraded_surrogate"
        assert record.predicted_label is not None
        assert record.total_tokens == 0  # the surrogate costs no tokens
        assert 0.0 < record.confidence <= 1.0

    def test_degrades_to_abstain(self, make_tiny_engine, tiny_llm, tiny_split):
        engine = make_tiny_engine(
            llm=AlwaysDownLLM(tiny_llm), ladder=DegradationLadder(to_pruned=False)
        )
        record = engine.execute_query(int(tiny_split.queries[0]))
        assert record.outcome == "abstained"
        assert record.predicted_label is None
        assert not record.correct

    def test_no_ladder_raises(self, make_tiny_engine, tiny_llm, tiny_split):
        engine = make_tiny_engine(llm=AlwaysDownLLM(tiny_llm))
        with pytest.raises(TransientLLMError):
            engine.execute_query(int(tiny_split.queries[0]))
        with pytest.raises(ValueError, match="requires an engine degradation ladder"):
            engine.execute_query(int(tiny_split.queries[0]), on_failure="degrade")

    def test_invalid_on_failure(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine()
        with pytest.raises(ValueError, match="on_failure"):
            engine.execute_query(int(tiny_split.queries[0]), on_failure="explode")

    def test_on_failure_raise_overrides_ladder(self, make_tiny_engine, tiny_llm, tiny_split):
        engine = make_tiny_engine(llm=AlwaysDownLLM(tiny_llm), ladder=DegradationLadder())
        with pytest.raises(TransientLLMError):
            engine.execute_query(int(tiny_split.queries[0]), on_failure="raise")


class TestOutcomeAccounting:
    def test_retried_outcome_tagged(self, make_tiny_engine, tiny_llm, tiny_split):
        flaky = FlakyLLM(tiny_llm, failure_rate=0.5, seed=2)
        engine = make_tiny_engine(llm=RetryingLLM(flaky, max_attempts=8))
        result = engine.run(tiny_split.queries[:20])
        counts = result.outcome_counts
        assert set(counts) == set(OUTCOME_TIERS)
        assert counts["retried"] > 0 and counts["ok"] > 0
        assert sum(counts.values()) == 20
        assert result.num_degraded == 0
        assert result.availability == 1.0

    def test_degraded_run_accounting(self, make_tiny_engine, tiny_llm, tiny_surrogate, tiny_split):
        engine = make_tiny_engine(
            llm=AlwaysDownLLM(tiny_llm), ladder=DegradationLadder(surrogate=tiny_surrogate)
        )
        result = engine.run(tiny_split.queries[:10])
        assert result.outcome_counts["degraded_surrogate"] == 10
        assert result.num_degraded == 10
        assert result.availability == 0.0


class TestBoostingUnderFailures:
    def test_failed_candidates_deferred_to_later_rounds(
        self, make_tiny_engine, tiny_llm, tiny_split
    ):
        llm = FailFirstCallsLLM(tiny_llm, n=3)
        engine = make_tiny_engine(llm=llm)
        queries = tiny_split.queries[:30]
        result = QueryBoostingStrategy(max_deferrals=5).execute(engine, queries)
        # Every query eventually executes, despite the early failures.
        assert result.run.num_queries == len(queries)
        assert {r.node for r in result.run.records} == {int(v) for v in queries}
        assert all(r.outcome == "ok" for r in result.run.records)

    def test_exhausted_deferrals_fall_to_ladder(
        self, make_tiny_engine, tiny_llm, tiny_surrogate, tiny_split
    ):
        engine = make_tiny_engine(
            llm=AlwaysDownLLM(tiny_llm),
            ladder=DegradationLadder(to_pruned=False, surrogate=tiny_surrogate),
        )
        queries = tiny_split.queries[:15]
        result = QueryBoostingStrategy(max_deferrals=1).execute(engine, queries)
        assert result.run.num_queries == len(queries)
        assert result.run.outcome_counts["degraded_surrogate"] == len(queries)
        # Surrogate answers must never enter the pseudo-label map.
        assert engine.pseudo_labeled == frozenset()

    def test_exhausted_deferrals_without_ladder_propagate(
        self, make_tiny_engine, tiny_llm, tiny_split
    ):
        engine = make_tiny_engine(llm=AlwaysDownLLM(tiny_llm))
        with pytest.raises(TransientLLMError):
            QueryBoostingStrategy(max_deferrals=1).execute(engine, tiny_split.queries[:5])

    def test_invalid_max_deferrals(self):
        with pytest.raises(ValueError):
            QueryBoostingStrategy(max_deferrals=-1)
