"""End-to-end determinism: identical seeds must reproduce identical runs.

Every number in EXPERIMENTS.md relies on this property — the whole
reproduction is re-runnable bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.core.boosting import QueryBoostingStrategy
from repro.experiments.common import load_setup


def small_setup():
    return load_setup("cora", num_queries=40, scale=0.15)


class TestDeterminism:
    def test_plain_runs_identical(self):
        a = small_setup().make_engine("1-hop").run(small_setup().queries)
        b = small_setup().make_engine("1-hop").run(small_setup().queries)
        assert a.records == b.records

    def test_boosted_runs_identical(self):
        setup1, setup2 = small_setup(), small_setup()
        a = QueryBoostingStrategy().execute(setup1.make_engine("2-hop"), setup1.queries)
        b = QueryBoostingStrategy().execute(setup2.make_engine("2-hop"), setup2.queries)
        assert a.run.records == b.run.records
        assert a.rounds == b.rounds

    def test_engine_seed_changes_sampling(self):
        setup = small_setup()
        a = setup.make_engine("1-hop", seed=1).run(setup.queries)
        b = setup.make_engine("1-hop", seed=2).run(setup.queries)
        tokens_a = [r.prompt_tokens for r in a.records]
        tokens_b = [r.prompt_tokens for r in b.records]
        assert tokens_a != tokens_b  # different neighbor draws

    def test_model_seed_changes_noise(self):
        setup = small_setup()
        a = setup.make_engine("vanilla", llm=setup.make_llm(seed=1)).run(setup.queries)
        b = setup.make_engine("vanilla", llm=setup.make_llm(seed=2)).run(setup.queries)
        preds_a = [r.predicted_label for r in a.records]
        preds_b = [r.predicted_label for r in b.records]
        assert preds_a != preds_b

    def test_replica_generation_identical_across_loads(self):
        from repro.graph.generators import generate_tag
        from repro.graph.datasets import get_spec

        config = get_spec("cora").generator_config(0.15)
        a = generate_tag(config, seed=0)
        b = generate_tag(config, seed=0)
        assert np.array_equal(a.graph.indices, b.graph.indices)
        assert np.array_equal(a.graph.features, b.graph.features)
        assert a.graph.texts == b.graph.texts
