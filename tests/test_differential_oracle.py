"""Differential oracle: wave vs DAG dispatch × simulated vs threads.

The DAG dispatch plan replaces the wave barrier with per-query readiness
(:mod:`repro.runtime.readiness`) while promising the *same canonical
execution*.  This suite turns that promise into a four-legged differential
oracle run over every scenario family the equivalence harness can draw:

``wave-sim`` and ``dag-sim``
    Both must be **bit-identical to serial** — records, rounds, ledgers,
    usage, checkpoint bytes, traces, metrics (``compare_traces=True``).
    The DAG plan's virtual packing changes only the scheduler's own
    overlap accounting, which the harness already excludes.

``dag-threads`` vs ``wave-threads``
    Thread dispatch legitimately diverges from serial in span sequence,
    and — on clock-advancing scenarios (retry backoff) — in the
    ``latency_seconds`` a worker thread observes, so the threads legs are
    compared *against each other*: the pipelined DAG executor must produce
    exactly the records/ledgers/checkpoints of the wave-threads executor
    it replaces.  On scenarios where the simulated clock never moves, both
    threads legs are additionally records-identical to serial, and the two
    thread traces must match span for span once the purely additive
    ``dag_*`` readiness attributes are stripped.

Every DAG leg additionally audits the readiness ledger itself: acyclic,
reads settled at dispatch, topological replay equal to canonical order.
"""

from __future__ import annotations

import pytest

from repro.runtime.scheduler import QueryScheduler

from tests.equivalence import (
    Scenario,
    ServeScenario,
    assert_equivalent,
    assert_serve_equivalent,
    readiness_attribute_count,
    run_scenario,
    run_serve_scenario,
    strip_readiness_attributes,
)

BATCH = 4
WORKERS = 3

#: The scenario matrix.  ``clock_moves`` marks configurations whose worker
#: threads advance the simulated clock (retry backoff inside ``call_llm``),
#: which makes per-record latencies differ from serial in *any* threads
#: mode — wave or DAG alike — so those legs compare threads-vs-threads only.
SCENARIOS = [
    pytest.param("plain", Scenario(strategy="none", num_queries=10), False, id="plain"),
    pytest.param("boost", Scenario(strategy="boost", num_queries=14), False, id="boost"),
    pytest.param(
        "boost-fail",
        Scenario(strategy="boost", num_queries=12, failure_rate=0.3, use_ladder=True),
        True,
        id="boost-fail",
    ),
    pytest.param(
        "boost-route",
        Scenario(strategy="boost", num_queries=12, route=True),
        False,
        id="boost-route",
    ),
    pytest.param(
        "boost-prune",
        Scenario(strategy="boost", num_queries=14, prune_fraction=0.3),
        False,
        id="boost-prune",
    ),
    pytest.param("guard", Scenario(strategy="guard", num_queries=10), False, id="guard"),
    pytest.param(
        "boost-cache",
        Scenario(strategy="boost", num_queries=12, use_cache=True),
        False,
        id="boost-cache",
    ),
    pytest.param(
        "sns", Scenario(strategy="boost", num_queries=12, method="sns"), False, id="sns"
    ),
    pytest.param(
        "khop", Scenario(strategy="boost", num_queries=12, method="2-hop"), False, id="khop"
    ),
    pytest.param(
        "compress",
        Scenario(strategy="none", num_queries=12, compress_fraction=0.5),
        False,
        id="compress",
    ),
    pytest.param(
        "compress-prune",
        Scenario(
            strategy="none", num_queries=14, compress_fraction=0.5, prune_fraction=0.25
        ),
        False,
        id="compress-prune",
    ),
]


def make_scheduler(
    mode: str, dispatch: str, prefix_sharing: bool = False
) -> QueryScheduler:
    return QueryScheduler(
        max_batch_size=BATCH,
        max_concurrency=WORKERS,
        mode=mode,
        dispatch=dispatch,
        prefix_sharing=prefix_sharing,
    )


def audit_dag(scheduler: QueryScheduler) -> None:
    """Assert the readiness ledger's structural invariants for one run."""
    dag = scheduler.dag
    assert dag is not None, "DAG dispatch must populate scheduler.dag"
    assert dag.events, "DAG dispatch recorded no events"
    assert dag.violations == [], f"unsettled reads at dispatch: {dag.violations}"
    assert dag.is_acyclic(), "readiness DAG has a cycle"
    assert dag.reads_settled_at_dispatch(), "a query dispatched before its reads settled"
    assert dag.topological_order() == dag.canonical_order(), (
        "topological replay diverged from canonical dispatch order"
    )


class TestSimulatedLegs:
    """Simulated dispatch — wave and DAG — is bit-identical to serial."""

    @pytest.mark.parametrize("label, scenario, clock_moves", SCENARIOS)
    def test_wave_and_dag_match_serial(
        self, tiny_tag, tiny_split, tiny_builder, label, scenario, clock_moves
    ):
        serial = run_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        wave = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder,
            scheduler=make_scheduler("simulated", "wave"),
        )
        dag_sched = make_scheduler("simulated", "dag")
        dag = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder, scheduler=dag_sched
        )
        assert_equivalent(serial, wave)
        assert_equivalent(serial, dag)
        audit_dag(dag_sched)

    def test_checkpoint_bytes_match_across_all_legs(
        self, tiny_tag, tiny_split, tiny_builder, tmp_path
    ):
        scenario = Scenario(strategy="boost", num_queries=12, checkpoint=True)
        serial = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder,
            checkpoint_path=tmp_path / "serial.json",
        )
        for mode, dispatch in (
            ("simulated", "wave"),
            ("simulated", "dag"),
            ("threads", "wave"),
            ("threads", "dag"),
        ):
            leg = run_scenario(
                scenario, tiny_tag, tiny_split, tiny_builder,
                scheduler=make_scheduler(mode, dispatch),
                checkpoint_path=tmp_path / f"{mode}-{dispatch}.json",
            )
            assert leg.checkpoint_text == serial.checkpoint_text, (
                f"checkpoint bytes diverged under {mode}/{dispatch}"
            )

    def test_dag_simulated_reports_overlap_on_multi_round_boost(
        self, tiny_tag, tiny_split, tiny_builder
    ):
        """The virtual packing must actually pipeline: on a multi-round
        boosted run with retry stalls, some wave starts inside its
        predecessor's tail (overlap > 0), while the wave plan reports none."""
        scenario = Scenario(
            strategy="boost", num_queries=12, failure_rate=0.3, use_ladder=True
        )
        dag_sched = make_scheduler("simulated", "dag")
        run_scenario(scenario, tiny_tag, tiny_split, tiny_builder, scheduler=dag_sched)
        assert len(dag_sched.report.waves) > 1, "scenario must span multiple waves"
        assert any(w.overlapped_seconds > 0 for w in dag_sched.report.waves), (
            "DAG packing never overlapped a wave into its predecessor's tail"
        )


class TestThreadLegs:
    """Pipelined DAG threads reproduce wave-threads artifact for artifact."""

    @pytest.mark.parametrize("label, scenario, clock_moves", SCENARIOS)
    def test_dag_threads_match_wave_threads(
        self, tiny_tag, tiny_split, tiny_builder, label, scenario, clock_moves
    ):
        wave = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder,
            scheduler=make_scheduler("threads", "wave"),
        )
        dag_sched = make_scheduler("threads", "dag")
        dag = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder, scheduler=dag_sched
        )
        assert_equivalent(wave, dag, compare_traces=False)
        audit_dag(dag_sched)
        if not clock_moves:
            # With a motionless clock the threads legs are records-identical
            # to serial too, and the traces must agree span for span once
            # the additive dag_* readiness attributes are stripped.
            serial = run_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
            assert_equivalent(serial, dag, compare_traces=False)
            if wave.trace is not None and dag.trace is not None:
                # Spans only: the trailing metrics line carries the
                # scheduler's own wall-clock counters, which are
                # nondeterministic in any threads mode.
                wave_spans = [l for l in wave.trace if l.get("kind") != "metrics"]
                dag_spans = [
                    l
                    for l in strip_readiness_attributes(dag.trace)
                    if l.get("kind") != "metrics"
                ]
                assert dag_spans == wave_spans, (
                    "thread traces diverged beyond the dag_* attributes"
                )

    def test_multi_round_boost_trace_carries_readiness_attributes(
        self, tiny_tag, tiny_split, tiny_builder
    ):
        scenario = Scenario(strategy="boost", num_queries=14)
        wave = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder,
            scheduler=make_scheduler("threads", "wave"),
        )
        dag = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder,
            scheduler=make_scheduler("threads", "dag"),
        )
        assert readiness_attribute_count(wave.trace) == 0, (
            "wave traces must stay free of dag_* attributes"
        )
        assert readiness_attribute_count(dag.trace) > 0, (
            "DAG threads trace carries no readiness annotations"
        )


#: Scenario subset for the prefix-sharing legs: plain and compressed runs
#: plan every wave; guard waves skip planning (decide_include), which must
#: itself be transparent; boost exercises multi-round re-planning.
PREFIX_SCENARIOS = [
    pytest.param(Scenario(strategy="none", num_queries=12), id="plain"),
    pytest.param(Scenario(strategy="boost", num_queries=14), id="boost"),
    pytest.param(Scenario(strategy="guard", num_queries=10), id="guard"),
    pytest.param(
        Scenario(strategy="none", num_queries=12, compress_fraction=0.5),
        id="compress",
    ),
]


class TestPrefixSharingLegs:
    """Prefix-aware batching is an accounting overlay: wave and DAG plans
    stay bit-identical to serial in simulated mode, and call-count-identical
    in threads mode, while the plan's token split balances exactly."""

    @pytest.mark.parametrize("scenario", PREFIX_SCENARIOS)
    def test_prefix_wave_and_dag_match_serial(
        self, tiny_tag, tiny_split, tiny_builder, scenario
    ):
        serial = run_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        wave_sched = make_scheduler("simulated", "wave", prefix_sharing=True)
        wave = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder, scheduler=wave_sched
        )
        dag_sched = make_scheduler("simulated", "dag", prefix_sharing=True)
        dag = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder, scheduler=dag_sched
        )
        assert_equivalent(serial, wave)
        assert_equivalent(serial, dag)
        audit_dag(dag_sched)
        for sched in (wave_sched, dag_sched):
            report = sched.report
            assert 0 <= report.shared_prompt_tokens <= report.prefix_prompt_tokens

    @pytest.mark.parametrize("scenario", PREFIX_SCENARIOS)
    def test_prefix_threads_call_count_identical(
        self, tiny_tag, tiny_split, tiny_builder, scenario
    ):
        serial = run_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        threads = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder,
            scheduler=make_scheduler("threads", "wave", prefix_sharing=True),
        )
        # ``usage`` equality inside assert_equivalent covers the call count;
        # records/ledgers/checkpoints must also match, only traces may not.
        assert_equivalent(serial, threads, compare_traces=False)

    def test_shared_first_layout_shares_and_stays_identical(
        self, tiny_tag, tiny_split, tiny_graph
    ):
        """With the shared-first prompt layout the planner must find real
        sharing (>0 tokens) while predictions stay bit-identical to the
        serial run over the same builder."""
        from repro.prompts.builder import PromptBuilder

        builder = PromptBuilder(
            tiny_graph.class_names, "paper", "citation", "Abstract", shared_first=True
        )
        scenario = Scenario(strategy="none", num_queries=12)
        serial = run_scenario(scenario, tiny_tag, tiny_split, builder)
        sched = make_scheduler("simulated", "wave", prefix_sharing=True)
        batched = run_scenario(
            scenario, tiny_tag, tiny_split, builder, scheduler=sched
        )
        assert_equivalent(serial, batched)
        assert sched.report.shared_prompt_tokens > 0, (
            "shared-first layout produced no cacheable prefixes"
        )


class TestCompressionReplay:
    """The compression rung is replay-exact: a run that crashes mid-way and
    resumes from its checkpoint reproduces the uninterrupted records with
    exactly ``n - k`` further LLM calls — compression being a pure function
    of (prompt, seed), the resumed engine re-derives identical prompts."""

    NUM_QUERIES = 12
    CRASH_AFTER = 5

    def _engine(self, tiny_graph, tiny_split, tiny_builder, llm):
        from repro.mqo.compression import PromptCompressor
        from repro.runtime.engine import MultiQueryEngine
        from repro.selection.registry import make_selector

        return MultiQueryEngine(
            graph=tiny_graph,
            llm=llm,
            selector=make_selector("1-hop"),
            builder=tiny_builder,
            labeled=tiny_split.labeled,
            max_neighbors=4,
            seed=9,
            compressor=PromptCompressor(target_ratio=0.6, seed=23),
        )

    def test_compressed_run_resumes_exactly(
        self, tiny_graph, tiny_split, tiny_builder, tiny_tag, tmp_path
    ):
        from dataclasses import asdict

        from repro.io.runs import RunCheckpointer

        from tests.test_checkpoint import Interrupted, fresh_llm

        queries = tiny_split.queries[: self.NUM_QUERIES]
        compressed = frozenset(int(v) for v in queries)

        full_llm = fresh_llm(tiny_tag)
        full = self._engine(tiny_graph, tiny_split, tiny_builder, full_llm).run(
            queries, compressed=compressed
        )
        assert full.num_compressed > 0, "workload never exercised the rung"

        path = tmp_path / "compressed-checkpoint.json"
        crashing = fresh_llm(tiny_tag, stop_after=self.CRASH_AFTER)
        engine = self._engine(tiny_graph, tiny_split, tiny_builder, crashing)
        with pytest.raises(Interrupted):
            engine.run(queries, checkpointer=RunCheckpointer(path), compressed=compressed)
        assert crashing.usage.num_queries == self.CRASH_AFTER

        resumed_llm = fresh_llm(tiny_tag)
        engine = self._engine(tiny_graph, tiny_split, tiny_builder, resumed_llm)
        checkpointer = RunCheckpointer(path)
        assert checkpointer.resumed_records == self.CRASH_AFTER
        resumed = engine.run(queries, checkpointer=checkpointer, compressed=compressed)

        assert [asdict(r) for r in resumed.records] == [
            asdict(r) for r in full.records
        ], "resumed compressed records diverged from the uninterrupted run"
        assert resumed_llm.usage.num_queries == self.NUM_QUERIES - self.CRASH_AFTER


class TestServeLegs:
    """The serving layer rides the same oracle: new tenant requests read no
    pseudo-labels, so DAG dispatch admits them into in-flight waves without
    changing a single outcome, ledger charge, or checkpoint byte."""

    SERVE = ServeScenario(num_requests=20, num_tenants=3, wave_quota=4)
    SERVE_THREADS = ServeScenario(
        num_requests=20, num_tenants=3, wave_quota=4, seconds_per_call=0.0
    )

    def test_simulated_serve_matches_serial_bit_for_bit(
        self, tiny_tag, tiny_split, tiny_builder
    ):
        serial = run_serve_scenario(self.SERVE, tiny_tag, tiny_split, tiny_builder)
        wave = run_serve_scenario(
            self.SERVE, tiny_tag, tiny_split, tiny_builder,
            scheduler=make_scheduler("simulated", "wave"),
        )
        dag_sched = make_scheduler("simulated", "dag")
        dag = run_serve_scenario(
            self.SERVE, tiny_tag, tiny_split, tiny_builder, scheduler=dag_sched
        )
        assert_serve_equivalent(serial, wave)
        assert_serve_equivalent(serial, dag)
        audit_dag(dag_sched)

    def test_threads_serve_matches_wave_threads(
        self, tiny_tag, tiny_split, tiny_builder
    ):
        serial = run_serve_scenario(
            self.SERVE_THREADS, tiny_tag, tiny_split, tiny_builder
        )
        wave = run_serve_scenario(
            self.SERVE_THREADS, tiny_tag, tiny_split, tiny_builder,
            scheduler=make_scheduler("threads", "wave"),
        )
        dag_sched = make_scheduler("threads", "dag")
        dag = run_serve_scenario(
            self.SERVE_THREADS, tiny_tag, tiny_split, tiny_builder, scheduler=dag_sched
        )
        assert_serve_equivalent(wave, dag, compare_traces=False)
        assert_serve_equivalent(serial, dag, compare_traces=False)
        audit_dag(dag_sched)

    def test_shedding_serve_under_dag_matches_serial(
        self, tiny_tag, tiny_split, tiny_builder
    ):
        scenario = ServeScenario(
            num_requests=24,
            num_tenants=4,
            degrade_watermark=3,
            shed_watermark=6,
            wave_quota=3,
        )
        serial = run_serve_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        dag = run_serve_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder,
            scheduler=make_scheduler("simulated", "dag"),
        )
        assert_serve_equivalent(serial, dag)

    #: Full new-tier ladder: compress below degrade below shed, small quota
    #: so the queue actually climbs through all three watermarks.
    COMPRESS = ServeScenario(
        num_requests=24,
        num_tenants=4,
        compress_watermark=2,
        degrade_watermark=4,
        shed_watermark=7,
        wave_quota=3,
        compress_ratio=0.6,
    )

    def test_compression_rung_serve_matches_serial(
        self, tiny_tag, tiny_split, tiny_builder
    ):
        serial = run_serve_scenario(self.COMPRESS, tiny_tag, tiny_split, tiny_builder)
        assert any(
            o["tier"] == "degraded_compressed" for o in serial.outcomes
        ), "scenario never reached the compression watermark"
        wave = run_serve_scenario(
            self.COMPRESS, tiny_tag, tiny_split, tiny_builder,
            scheduler=make_scheduler("simulated", "wave"),
        )
        dag_sched = make_scheduler("simulated", "dag")
        dag = run_serve_scenario(
            self.COMPRESS, tiny_tag, tiny_split, tiny_builder, scheduler=dag_sched
        )
        assert_serve_equivalent(serial, wave)
        assert_serve_equivalent(serial, dag)
        audit_dag(dag_sched)

    def test_compression_rung_journal_replay_exact(
        self, tiny_tag, tiny_split, tiny_builder, tmp_path
    ):
        """Crash/resume for serving: a journal persisted by a compressed +
        prefix-shared run re-derives every outcome (tiers, latencies, ledger
        charges, shared-token credits) without a single LLM call."""
        path = tmp_path / "serve-compress.journal"
        scheduler = make_scheduler("simulated", "wave", prefix_sharing=True)
        live = run_serve_scenario(
            self.COMPRESS, tiny_tag, tiny_split, tiny_builder,
            scheduler=scheduler, journal_path=path,
        )
        assert any(
            o["tier"] == "degraded_compressed" for o in live.outcomes
        ), "scenario never reached the compression watermark"
        replay_sched = make_scheduler("simulated", "wave", prefix_sharing=True)
        replayed = run_serve_scenario(
            self.COMPRESS, tiny_tag, tiny_split, tiny_builder,
            scheduler=replay_sched, journal_path=path,
        )
        # Not assert_serve_equivalent: replay legitimately zeroes ``usage``
        # (that is the point) — every *derived* artifact must still match.
        assert replayed.outcomes == live.outcomes, "replayed outcomes diverged"
        assert replayed.cycles == live.cycles, "replayed cycle count diverged"
        assert replayed.book == live.book, (
            "replayed ledger book diverged (shared credits not re-applied?)"
        )
        assert replayed.usage == (0, 0, 0), "journal replay issued LLM calls"
