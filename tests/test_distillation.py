"""Tests for the label-free distillation extension."""

from __future__ import annotations

import numpy as np

from repro.experiments.distillation import (
    DistillationRow,
    format_distillation,
    run_distillation,
)


class TestDistillationRow:
    def test_gap(self):
        row = DistillationRow("x", 70.0, 90.0, 85.0, 86.0, 20.0)
        assert row.gap_to_supervised == -5.0


class TestRunDistillation:
    def test_small_scale_shapes(self):
        result = run_distillation(
            datasets=("cora",), num_queries=120, holdout_size=80, scale=0.3
        )
        row = result.rows[0]
        assert 0 <= row.pseudo_label_accuracy <= 100
        assert row.label_free_gcn > row.majority_baseline
        out = format_distillation(result)
        assert "label-free" in out and "cora" in out

    def test_holdout_disjoint(self):
        from repro.experiments.common import load_setup
        from repro.experiments.distillation import _holdout

        setup = load_setup("cora", num_queries=100, scale=0.3)
        holdout = _holdout(setup, 50)
        assert np.intersect1d(holdout, setup.split.labeled).size == 0
        assert np.intersect1d(holdout, setup.queries).size == 0
