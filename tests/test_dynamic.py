"""Tests for dynamic-node graph extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.dynamic import extend_graph
from repro.text.corpus import NodeText


@pytest.fixture()
def extended(tiny_graph):
    n = tiny_graph.num_nodes
    new_texts = [NodeText("new paper one", "abstract one"), NodeText("new paper two", "abstract two")]
    new_labels = np.array([0, 1])
    new_edges = np.array([(n, 0), (n, 1), (n + 1, n), (n + 1, 2)])
    return extend_graph(tiny_graph, new_texts, new_labels, new_edges), tiny_graph


class TestExtendGraph:
    def test_counts(self, extended):
        new, old = extended
        assert new.num_nodes == old.num_nodes + 2
        assert new.num_edges == old.num_edges + 4

    def test_old_structure_preserved(self, extended):
        new, old = extended
        for v in range(0, min(50, old.num_nodes)):
            old_nbrs = set(old.neighbors(v).tolist())
            new_nbrs = set(new.neighbors(v).tolist())
            assert old_nbrs <= new_nbrs  # only additions
            assert new_nbrs - old_nbrs <= {old.num_nodes, old.num_nodes + 1}
        assert np.array_equal(new.labels[: old.num_nodes], old.labels)
        assert new.texts[: old.num_nodes] == old.texts

    def test_new_nodes_wired(self, extended):
        new, old = extended
        n = old.num_nodes
        assert new.has_edge(n, 0) and new.has_edge(n + 1, n)
        assert new.texts[n].title == "new paper one"
        assert new.labels[n + 1] == 1

    def test_zero_features_by_default(self, extended):
        new, old = extended
        assert (new.features[old.num_nodes :] == 0).all()

    def test_original_not_mutated(self, tiny_graph):
        before_edges = tiny_graph.num_edges
        extend_graph(
            tiny_graph,
            [NodeText("t", "a")],
            np.array([0]),
            np.array([(tiny_graph.num_nodes, 0)]),
        )
        assert tiny_graph.num_edges == before_edges

    def test_new_node_classifiable_by_engine(self, extended, tiny_split, tiny_builder, tiny_tag):
        """The paradigm's dynamic-node claim: classify without retraining."""
        from repro.llm.simulated import SimulatedLLM
        from repro.runtime.engine import MultiQueryEngine
        from repro.selection.registry import make_selector

        new, old = extended
        engine = MultiQueryEngine(
            new,
            SimulatedLLM(tiny_tag.vocabulary, seed=5),
            make_selector("1-hop"),
            tiny_builder,
            labeled=tiny_split.labeled,
            max_neighbors=4,
        )
        record = engine.execute_query(old.num_nodes)
        assert record.predicted_label is not None

    def test_validation(self, tiny_graph):
        n = tiny_graph.num_nodes
        with pytest.raises(ValueError, match="no new nodes"):
            extend_graph(tiny_graph, [], np.array([]), np.empty((0, 2)))
        with pytest.raises(ValueError, match="align"):
            extend_graph(tiny_graph, [NodeText("t", "a")], np.array([0, 1]), np.empty((0, 2)))
        with pytest.raises(ValueError, match="out of range"):
            extend_graph(tiny_graph, [NodeText("t", "a")], np.array([99]), np.empty((0, 2)))
        with pytest.raises(ValueError, match="at least one new node"):
            extend_graph(tiny_graph, [NodeText("t", "a")], np.array([0]), np.array([(0, 1)]))
