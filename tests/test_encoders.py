"""Tests for text encoders (BoW, TF-IDF, hashing)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.encoders import BagOfWordsEncoder, HashingEncoder, TfidfEncoder

DOCS = [
    "graph mining with llms",
    "llms for graph tasks",
    "token pruning saves tokens",
    "query boosting uses pseudo labels",
]


class TestBagOfWords:
    def test_shape_and_dtype(self):
        x = BagOfWordsEncoder(dim=16).fit_transform(DOCS)
        assert x.shape == (4, 16) and x.dtype == np.float32

    def test_binary_entries(self):
        x = BagOfWordsEncoder(dim=16, binary=True).fit_transform(["a a a b"])
        assert set(np.unique(x)) <= {0.0, 1.0}

    def test_count_mode(self):
        enc = BagOfWordsEncoder(dim=4, binary=False).fit(["a a a b"])
        x = enc.transform(["a a b"])
        assert x[0, enc.vocabulary_["a"]] == 2.0

    def test_unknown_words_ignored(self):
        enc = BagOfWordsEncoder(dim=8).fit(DOCS)
        x = enc.transform(["entirely novel vocabulary"])
        assert x.sum() == 0

    def test_vocabulary_truncated_to_dim(self):
        enc = BagOfWordsEncoder(dim=3).fit(DOCS)
        assert len(enc.vocabulary_) == 3

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            BagOfWordsEncoder(dim=4).transform(DOCS)

    def test_deterministic_vocab(self):
        a = BagOfWordsEncoder(dim=8).fit(DOCS).vocabulary_
        b = BagOfWordsEncoder(dim=8).fit(DOCS).vocabulary_
        assert a == b


class TestTfidf:
    def test_rows_are_unit_norm(self):
        x = TfidfEncoder(dim=16).fit_transform(DOCS)
        norms = np.linalg.norm(x, axis=1)
        assert np.allclose(norms[norms > 0], 1.0, atol=1e-5)

    def test_rare_words_weigh_more(self):
        docs = ["common rare", "common", "common", "common"]
        enc = TfidfEncoder(dim=4).fit(docs)
        x = enc.transform(["common rare"])
        assert x[0, enc.vocabulary_["rare"]] > x[0, enc.vocabulary_["common"]]

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TfidfEncoder(dim=4).transform(DOCS)


class TestHashing:
    def test_stateless_fit(self):
        enc = HashingEncoder(dim=32)
        assert enc.fit(DOCS) is enc

    def test_deterministic(self):
        a = HashingEncoder(dim=32).transform(DOCS)
        b = HashingEncoder(dim=32).transform(DOCS)
        assert np.array_equal(a, b)

    def test_seed_changes_hashing(self):
        a = HashingEncoder(dim=32, seed=0).transform(DOCS)
        b = HashingEncoder(dim=32, seed=1).transform(DOCS)
        assert not np.array_equal(a, b)

    def test_rows_unit_norm(self):
        x = HashingEncoder(dim=32).transform(DOCS)
        norms = np.linalg.norm(x, axis=1)
        assert np.allclose(norms[norms > 0], 1.0, atol=1e-5)

    @given(st.integers(min_value=1, max_value=64))
    def test_any_dim_works(self, dim):
        x = HashingEncoder(dim=dim).transform(["a b c"])
        assert x.shape == (1, dim)


@pytest.mark.parametrize("encoder_cls", [BagOfWordsEncoder, TfidfEncoder, HashingEncoder])
class TestCommonBehaviour:
    def test_rejects_nonpositive_dim(self, encoder_cls):
        with pytest.raises(ValueError):
            encoder_cls(dim=0)

    def test_empty_documents(self, encoder_cls):
        x = encoder_cls(dim=8).fit_transform(["", ""])
        assert x.shape == (2, 8)
        assert x.sum() == 0
