"""Tests for the multi-query execution engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.budget import BudgetLedger


class TestLabelState:
    def test_initial_labels_are_gold(self, make_tiny_engine, tiny_graph, tiny_split):
        engine = make_tiny_engine()
        for v in tiny_split.labeled:
            assert engine.label_map[int(v)] == int(tiny_graph.labels[int(v)])

    def test_add_pseudo_label(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine()
        node = int(tiny_split.queries[0])
        engine.add_pseudo_label(node, 1)
        assert engine.label_map[node] == 1
        assert node in engine.pseudo_labeled

    def test_cannot_overwrite(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine()
        node = int(tiny_split.labeled[0])
        with pytest.raises(ValueError, match="already has a label"):
            engine.add_pseudo_label(node, 0)

    def test_label_out_of_range(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine()
        with pytest.raises(ValueError, match="out of range"):
            engine.add_pseudo_label(int(tiny_split.queries[0]), 99)


class TestSelection:
    def test_per_node_sampling_is_stable(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine()
        node = int(tiny_split.queries[0])
        assert engine.select_neighbors(node) == engine.select_neighbors(node)

    def test_selection_refreshes_with_labels(self, make_tiny_engine, tiny_graph, tiny_split):
        engine = make_tiny_engine(method="1-hop")
        # Find a query with an unlabeled neighbor that is also a query node.
        target, neighbor = None, None
        queries = set(int(v) for v in tiny_split.queries)
        for q in tiny_split.queries:
            for v in tiny_graph.neighbors(int(q)):
                if int(v) in queries and int(v) != int(q):
                    target, neighbor = int(q), int(v)
                    break
            if target is not None:
                break
        assert target is not None, "fixture graph should connect some queries"
        engine.add_pseudo_label(neighbor, 2)
        selected = engine.select_neighbors(target)
        labels = {sn.node: sn.label for sn in selected}
        if neighbor in labels:  # selector prefers labeled, so this holds
            assert labels[neighbor] == 2


class TestExecution:
    def test_record_fields(self, make_tiny_engine, tiny_graph, tiny_split):
        engine = make_tiny_engine()
        node = int(tiny_split.queries[0])
        record = engine.execute_query(node)
        assert record.node == node
        assert record.true_label == int(tiny_graph.labels[node])
        assert record.prompt_tokens > 0
        assert record.completion_tokens > 0
        assert not record.pruned

    def test_pruned_query_has_no_neighbors(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine()
        record = engine.execute_query(int(tiny_split.queries[0]), include_neighbors=False)
        assert record.num_neighbors == 0
        assert record.pruned

    def test_pruned_prompt_is_cheaper(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine()
        # Pick a query with at least one neighbor selected.
        for q in tiny_split.queries:
            full, selected = engine.build_prompt(int(q), include_neighbors=True)
            if selected:
                bare, _ = engine.build_prompt(int(q), include_neighbors=False)
                assert len(full) > len(bare)
                return
        pytest.fail("no query with neighbors found")

    def test_run_covers_all_queries(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine()
        result = engine.run(tiny_split.queries[:20])
        assert result.num_queries == 20
        assert {r.node for r in result.records} == {int(v) for v in tiny_split.queries[:20]}

    def test_run_respects_prune_set(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine()
        pruned = {int(tiny_split.queries[0]), int(tiny_split.queries[3])}
        result = engine.run(tiny_split.queries[:5], pruned=pruned)
        for record in result.records:
            assert record.pruned == (record.node in pruned)

    def test_ledger_charged(self, make_tiny_engine, tiny_split):
        ledger = BudgetLedger()
        engine = make_tiny_engine(ledger=ledger)
        result = engine.run(tiny_split.queries[:5])
        assert ledger.spent == result.total_tokens
        assert ledger.charges == 5

    def test_accuracy_reasonable_on_tiny_graph(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine()
        result = engine.run(tiny_split.queries)
        assert result.accuracy > 0.5  # far above the 25% random baseline

    def test_pseudo_label_use_counted(self, make_tiny_engine, tiny_graph, tiny_split):
        engine = make_tiny_engine(method="1-hop")
        queries = set(int(v) for v in tiny_split.queries)
        target, neighbor = None, None
        for q in tiny_split.queries:
            for v in tiny_graph.neighbors(int(q)):
                if int(v) in queries and int(v) != int(q):
                    target, neighbor = int(q), int(v)
                    break
            if target:
                break
        engine.add_pseudo_label(neighbor, 0)
        record = engine.execute_query(target)
        selected = {sn.node for sn in engine.select_neighbors(target)}
        if neighbor in selected:
            assert record.num_pseudo_labels >= 1


class TestValidation:
    def test_negative_max_neighbors(self, make_tiny_engine):
        with pytest.raises(ValueError):
            make_tiny_engine(max_neighbors=-1)
