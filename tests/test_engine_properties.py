"""Property-based tests on engine-level invariants."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime.baselines import random_prune_set


class TestEngineInvariants:
    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_prompt_tokens_positive_and_pruning_cheaper(
        self, make_tiny_engine, tiny_split, n
    ):
        engine = make_tiny_engine()
        queries = tiny_split.queries[:n]
        result = engine.run(queries)
        assert all(r.prompt_tokens > 0 for r in result.records)
        assert all(r.completion_tokens > 0 for r in result.records)
        pruned_engine = make_tiny_engine()
        pruned = pruned_engine.run(queries, pruned={int(v) for v in queries})
        assert pruned.total_tokens <= result.total_tokens

    @given(st.floats(min_value=0, max_value=1))
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_random_prune_respects_tau_everywhere(self, make_tiny_engine, tiny_split, tau):
        queries = tiny_split.queries
        pruned_set = random_prune_set(queries, tau, seed=1)
        engine = make_tiny_engine()
        result = engine.run(queries[:20], pruned=pruned_set)
        for record in result.records:
            assert record.pruned == (record.node in pruned_set)
            if record.pruned:
                assert record.num_neighbors == 0

    def test_usage_matches_records(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine()
        result = engine.run(tiny_split.queries[:25])
        assert engine.llm.usage.prompt_tokens == result.prompt_tokens
        assert engine.llm.usage.completion_tokens == result.completion_tokens
        assert engine.llm.usage.num_queries == result.num_queries

    def test_record_neighbor_label_counts_consistent(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine(method="2-hop")
        result = engine.run(tiny_split.queries[:30])
        for record in result.records:
            assert 0 <= record.num_neighbor_labels <= record.num_neighbors <= 4
            assert record.num_pseudo_labels <= record.num_neighbor_labels
