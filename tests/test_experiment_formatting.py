"""Unit tests for experiment result objects and their formatting.

These cover the pure-python surfaces of the experiment modules (dataclasses,
accessors, table renderers) without running any LLM workload.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig7 import Fig7Result, Fig7Series
from repro.experiments.fig8 import Fig8Cell, Fig8Result
from repro.experiments.table4 import Table4Cell, Table4Result, format_table4
from repro.experiments.table7 import Table7Cell, Table7Result, format_table7
from repro.experiments.table9 import Table9Result, Table9Row, format_table9


class TestTable4Objects:
    def test_delta_percent(self):
        cell = Table4Cell("cora", "1-hop", base_accuracy=80.0, pruned_accuracy=78.0)
        assert cell.delta_percent == pytest.approx(-2.5)

    def test_cell_lookup(self):
        result = Table4Result([Table4Cell("cora", "sns", 80.0, 80.4)], tau=0.2)
        assert result.cell("cora", "sns").pruned_accuracy == 80.4
        with pytest.raises(KeyError):
            result.cell("cora", "1-hop")

    def test_format_shows_all_rows(self):
        result = Table4Result(
            [
                Table4Cell("cora", "1-hop", 72.3, 72.5),
                Table4Cell("pubmed", "1-hop", 87.4, 88.9),
            ],
            tau=0.2,
        )
        out = format_table4(result)
        assert "w/ token prune" in out and "Δ%" in out
        assert "cora" in out and "pubmed" in out
        assert "+0.28%" in out  # cora delta
        assert "20%" in out  # tau in the title


class TestFig7Objects:
    def test_series_lookup(self):
        series = Fig7Series("cora", (1.0, 0.0), [70.0, 68.0], [70.0, 68.0])
        result = Fig7Result([series])
        assert result.for_dataset("cora") is series
        with pytest.raises(KeyError):
            result.for_dataset("pubmed")


class TestFig8Objects:
    def test_ratio(self):
        cell = Fig8Cell("cora", 1, 4, utilization_scheduled=200, utilization_random=100)
        assert cell.ratio == 2.0

    def test_ratio_zero_random(self):
        assert Fig8Cell("x", 1, 4, 10, 0).ratio == float("inf")
        assert Fig8Cell("x", 1, 4, 0, 0).ratio == 1.0

    def test_cell_lookup(self):
        result = Fig8Result([Fig8Cell("cora", 2, 10, 5, 4)])
        assert result.cell("cora", 2, 10).utilization_scheduled == 5
        with pytest.raises(KeyError):
            result.cell("cora", 1, 4)


class TestTable7Objects:
    def test_gain_and_improved(self):
        cell = Table7Cell("cora", "sns", "gpt-3.5", base_accuracy=74.8, boosted_accuracy=76.3)
        assert cell.improved
        assert cell.gain == pytest.approx(1.5)

    def test_format_marks_improvements(self):
        result = Table7Result(
            [Table7Cell("cora", "sns", "gpt-3.5", 74.8, 76.3)], gamma1=3, gamma2=2
        )
        out = format_table7(result)
        assert "76.3^" in out


class TestTable9Objects:
    def test_row_lookup_and_format(self):
        row = Table9Row("1-hop, w/ raw, no path", 84.2, 85.8, 78.6, 83.1, 84.2)
        result = Table9Result([row], tau=0.3)
        assert result.row("1-hop, w/ raw, no path").boost == 85.8
        with pytest.raises(KeyError):
            result.row("nonexistent")
        out = format_table9(result)
        assert "w/ random" in out and "30%" in out
