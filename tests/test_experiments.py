"""Integration tests: every table/figure runner executes at reduced scale.

These run the real experiment code paths end-to-end on small query samples
(the benchmarks run them at paper scale) and assert the *shape* claims each
paper artifact makes, not exact numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig3, fig7, fig8, table4, table5, table6, table7, table8, table9, table10

SMALL = dict(num_queries=120)
SCALED = dict(num_queries=120, scale=0.15)


class TestFig3:
    def test_runs_and_formats(self):
        result = fig3.run_fig3(datasets=("cora",), methods=("1-hop",), **SMALL)
        out = fig3.format_fig3(result)
        assert "cora" in out
        cell = result.cells[0]
        assert 0 <= cell.share_with_labels <= 100
        assert cell.share_with_labels + cell.share_without_labels == pytest.approx(100.0)

    def test_labeled_group_gains_more(self):
        result = fig3.run_fig3(datasets=("cora",), methods=("2-hop",), num_queries=300)
        cell = result.cells[0]
        assert cell.ig_with_labels >= cell.ig_without_labels


class TestTable4:
    def test_prune_changes_are_small(self):
        result = table4.run_table4(datasets=("cora",), methods=("1-hop",), num_queries=250)
        cell = result.cells[0]
        assert abs(cell.delta_percent) < 6.0
        assert "Table IV" in table4.format_table4(result)


class TestFig7:
    def test_pruning_dominates_random(self):
        result = fig7.run_fig7(datasets=("cora",), inclusion_levels=(0.6, 0.2), num_queries=250)
        series = result.for_dataset("cora")
        # At interior budgets the inadequacy ranking should not lose to random.
        for ours, rand in zip(series.pruning_accuracy, series.random_accuracy):
            assert ours >= rand - 1.5
        assert "Fig. 7" in fig7.format_fig7(result)

    def test_endpoints_match_plain_runs(self):
        result = fig7.run_fig7(datasets=("cora",), inclusion_levels=(1.0, 0.0), num_queries=120)
        series = result.for_dataset("cora")
        # 100% inclusion: both strategies identical (no pruning at all).
        assert series.pruning_accuracy[0] == pytest.approx(series.random_accuracy[0])
        # 0% inclusion: everything pruned, again identical.
        assert series.pruning_accuracy[1] == pytest.approx(series.random_accuracy[1])


class TestTable5:
    def test_reducible_tokens_scale_with_config(self):
        result = table5.run_table5(datasets=("cora",), num_queries=120, token_sample=40)
        row = result.rows[0]
        labels = [c.label for c in result.configs]
        # Titles+abstracts cost more than titles; 10 neighbors more than 4.
        assert row.neighbor_tokens[labels[1]] > row.neighbor_tokens[labels[0]]
        assert row.neighbor_tokens[labels[2]] > row.neighbor_tokens[labels[0]]
        assert row.neighbor_tokens[labels[3]] == max(row.neighbor_tokens.values())
        # Reducible count uses the full-scale node count.
        assert row.reducible_tokens[labels[0]] > 100_000
        assert "Table V" in table5.format_table5(result)


class TestTable6:
    def test_saturated_scores_lower(self):
        result = table6.run_table6(datasets=("cora",), num_queries=250)
        row = result.rows[0]
        assert row.separates
        assert row.num_saturated + row.num_non_saturated == 250
        assert "Table VI" in table6.format_table6(result)


class TestFig8:
    def test_scheduling_helps_and_configs_order(self):
        # Larger sample: small query sets make utilization counts noisy.
        result = fig8.run_fig8(
            datasets=("cora",), configs=((1, 4), (2, 10)), num_queries=450, num_rounds=30
        )
        small = result.cell("cora", 1, 4)
        large = result.cell("cora", 2, 10)
        assert small.utilization_scheduled >= small.utilization_random
        assert large.utilization_scheduled >= large.utilization_random
        assert large.utilization_scheduled >= small.utilization_scheduled
        assert "Fig. 8" in fig8.format_fig8(result)


class TestTable7:
    def test_boost_improves_most_cells(self):
        result = table7.run_table7(
            datasets=("cora", "citeseer"), methods=("2-hop",), models=("gpt-3.5",), num_queries=250
        )
        improved = sum(c.improved for c in result.cells)
        assert improved >= 1
        for cell in result.cells:
            assert cell.boosted_accuracy >= cell.base_accuracy - 2.0
        assert "Table VII" in table7.format_table7(result)


class TestTable8:
    def test_joint_saves_neighbor_cost(self):
        result = table8.run_table8(
            datasets=("cora",), methods=("2-hop",), models=("gpt-3.5",), num_queries=200
        )
        cell = result.cells[0]
        assert cell.joint_equipped <= round(cell.base_equipped * 0.82)
        assert cell.joint_accuracy >= cell.base_accuracy - 3.0
        assert "Table VIII" in table8.format_table8(result)


class TestTable9:
    def test_prune_beats_random(self):
        from repro.llm.instruction_tuned import BACKBONE_CONFIGS

        result = table9.run_table9(num_queries=200, backbones=BACKBONE_CONFIGS[:2])
        for row in result.rows:
            assert row.prune >= row.random_prune
            assert row.boost >= row.base - 1.0
        assert "Table IX" in table9.format_table9(result)


class TestTable10:
    def test_link_shapes(self):
        result = table10.run_table10(datasets=("cora",), num_queries=160)
        row = result.rows[0]
        assert row.boost >= row.base - 2.0
        assert abs(row.prune - row.base) < 8.0
        assert row.vanilla > 55.0
        assert "Table X" in table10.format_table10(result)


class TestOverload:
    def test_goodput_plateaus_not_collapses(self):
        from repro.experiments import overload

        result = overload.run_overload(
            "cora",
            num_queries=60,
            multipliers=(1.0, 2.0),
            admissible=12,
            use_surrogate=False,
            batch_size=4,
            workers=2,
            scale=0.15,
        )
        base, over = result.cell(1.0), result.cell(2.0)
        assert over.offered == 2 * base.offered
        # Past saturation goodput holds instead of collapsing...
        assert over.goodput >= base.goodput
        # ...because the excess lands on explicit cheaper rungs.
        assert over.degraded + over.rejected > 0
        assert over.p99_seconds >= base.p99_seconds
        # No cell overdraws the configured budgets.
        assert base.budget_utilization <= 1.0
        assert over.budget_utilization <= 1.0
        out = overload.format_overload(result)
        assert "Overload sweep" in out and "Goodput" in out
