"""Tests for the shared experiment setup infrastructure."""

from __future__ import annotations

import pytest

from repro.experiments.common import DEFAULT_NUM_QUERIES, load_setup


class TestLoadSetup:
    @pytest.fixture(scope="class")
    def setup(self):
        return load_setup("cora", num_queries=50, scale=0.15)

    def test_split_matches_protocol(self, setup):
        # 20 labeled per class on the Planetoid-style datasets.
        assert setup.split.num_labeled <= 20 * setup.graph.num_classes
        assert setup.split.num_queries == 50

    def test_builder_matches_node_type(self, setup):
        prompt = setup.builder.zero_shot("t", "a")
        assert "Target paper" in prompt
        assert "citation" in setup.builder.edge_type

    def test_product_dataset_wording(self):
        products = load_setup("ogbn-products", num_queries=20, scale=0.002)
        prompt = products.builder.zero_shot("t", "a")
        assert "Target product" in prompt
        assert "Description" in prompt

    def test_engines_are_independent(self, setup):
        a = setup.make_engine("1-hop")
        b = setup.make_engine("1-hop")
        assert a.llm is not b.llm
        a.llm.complete(setup.builder.zero_shot("t", "a"))
        assert b.llm.usage.num_queries == 0

    def test_max_neighbors_follows_spec(self, setup):
        assert setup.make_engine("1-hop").max_neighbors == 4
        products = load_setup("ogbn-products", num_queries=20, scale=0.002)
        assert products.make_engine("1-hop").max_neighbors == 10

    def test_model_selection(self, setup):
        engine = setup.make_engine("vanilla", model="gpt-4o-mini")
        assert engine.llm.name == "gpt-4o-mini"

    def test_default_query_count_is_paper_protocol(self):
        assert DEFAULT_NUM_QUERIES == 1000
