"""Tests for the generator's structural mechanisms.

Covers the link-token injection (shared rare terms on edges), triangle
closure (clustering), and their interaction with the dataset replicas.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import GeneratorConfig, generate_tag
from repro.text.tokenizer import Tokenizer


@pytest.fixture(scope="module")
def structured_tag():
    config = GeneratorConfig(
        class_names=("a", "b", "c"),
        num_nodes=240,
        num_edges=700,
        homophily=0.8,
        feature_dim=64,
        link_token_rate=0.8,
        link_tokens_per_node_cap=5,
        triangle_closure=0.3,
        name="structured",
    )
    return generate_tag(config, seed=5)


def rare_terms(tag, node):
    known = set(tag.vocabulary.background_words)
    for words in tag.vocabulary.class_words:
        known.update(words)
    return {w for w in Tokenizer().words(tag.graph.texts[node].full) if w not in known}


class TestLinkTokens:
    def test_some_edges_share_rare_terms(self, structured_tag):
        g = structured_tag.graph
        edges = g.edge_array()
        shared = 0
        for u, v in edges[:200]:
            if rare_terms(structured_tag, int(u)) & rare_terms(structured_tag, int(v)):
                shared += 1
        assert shared > 50  # rate 0.8 with cap 5 should keep most sampled edges

    def test_non_edges_rarely_share(self, structured_tag):
        g = structured_tag.graph
        rng = np.random.default_rng(0)
        shared = 0
        checked = 0
        while checked < 100:
            u, v = int(rng.integers(g.num_nodes)), int(rng.integers(g.num_nodes))
            if u == v or g.has_edge(u, v):
                continue
            checked += 1
            if rare_terms(structured_tag, u) & rare_terms(structured_tag, v):
                shared += 1
        assert shared == 0  # link tokens are unique per edge

    def test_node_cap_respected(self, structured_tag):
        for node in range(structured_tag.graph.num_nodes):
            assert len(rare_terms(structured_tag, node)) <= 5

    def test_rate_zero_adds_nothing(self):
        config = GeneratorConfig(
            class_names=("a", "b"),
            num_nodes=60,
            num_edges=100,
            feature_dim=16,
            link_token_rate=0.0,
            name="no-links",
        )
        tag = generate_tag(config, seed=1)
        for node in range(tag.graph.num_nodes):
            assert not rare_terms(tag, node)


class TestTriangleClosure:
    @staticmethod
    def clustering(graph) -> float:
        """Global clustering coefficient: 3×triangles / open wedges."""
        triangles = 0
        wedges = 0
        for v in range(graph.num_nodes):
            nbrs = graph.neighbors(v)
            d = nbrs.shape[0]
            wedges += d * (d - 1) // 2
            for i in range(d):
                for j in range(i + 1, d):
                    if graph.has_edge(int(nbrs[i]), int(nbrs[j])):
                        triangles += 1
        return triangles / wedges if wedges else 0.0

    def test_closure_raises_clustering(self):
        base = GeneratorConfig(
            class_names=("a", "b", "c"),
            num_nodes=240,
            num_edges=700,
            feature_dim=32,
            triangle_closure=0.0,
            name="open",
        )
        closed = GeneratorConfig(
            class_names=("a", "b", "c"),
            num_nodes=240,
            num_edges=700,
            feature_dim=32,
            triangle_closure=0.35,
            name="closed",
        )
        c_open = self.clustering(generate_tag(base, seed=2).graph)
        c_closed = self.clustering(generate_tag(closed, seed=2).graph)
        assert c_closed > c_open * 1.5

    def test_edge_budget_still_met(self, structured_tag):
        assert structured_tag.graph.num_edges >= 700 * 0.9

    def test_invalid_closure(self):
        with pytest.raises(ValueError):
            GeneratorConfig(class_names=("a", "b"), num_nodes=10, num_edges=10, triangle_closure=1.5)
