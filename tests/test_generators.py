"""Tests for the synthetic TAG generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import GeneratorConfig, generate_tag, sibling_map
from repro.graph.homophily import edge_homophily


class TestSiblingMap:
    def test_even_pairs(self):
        assert list(sibling_map(4)) == [1, 0, 3, 2]

    def test_odd_last_pairs_with_zero(self):
        assert list(sibling_map(5)) == [1, 0, 3, 2, 0]

    def test_never_self_for_k_ge_2(self):
        for k in range(2, 12):
            sib = sibling_map(k)
            assert all(sib[i] != i for i in range(k))

    def test_invalid(self):
        with pytest.raises(ValueError):
            sibling_map(0)


class TestGeneratorConfig:
    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            GeneratorConfig(class_names=("only",), num_nodes=10, num_edges=10)

    def test_rejects_bad_clarity_range(self):
        with pytest.raises(ValueError):
            GeneratorConfig(
                class_names=("a", "b"),
                num_nodes=10,
                num_edges=10,
                ambiguous_clarity=(0.7, 0.4),
            )

    def test_rejects_unknown_encoder(self):
        with pytest.raises(ValueError, match="encoder"):
            GeneratorConfig(class_names=("a", "b"), num_nodes=10, num_edges=10, encoder="bert")


class TestGenerateTag:
    def test_shapes(self, tiny_tag, tiny_config):
        g = tiny_tag.graph
        assert g.num_nodes == tiny_config.num_nodes
        assert g.feature_dim == tiny_config.feature_dim
        assert len(g.texts) == g.num_nodes
        assert tiny_tag.clarity.shape == (g.num_nodes,)

    def test_edge_count_close_to_target(self, tiny_tag, tiny_config):
        assert tiny_tag.graph.num_edges >= int(tiny_config.num_edges * 0.95)
        assert tiny_tag.graph.num_edges <= tiny_config.num_edges

    def test_every_class_populated(self, tiny_tag):
        g = tiny_tag.graph
        assert set(np.unique(g.labels)) == set(range(g.num_classes))

    def test_deterministic(self, tiny_config):
        a = generate_tag(tiny_config, seed=1)
        b = generate_tag(tiny_config, seed=1)
        assert np.array_equal(a.graph.labels, b.graph.labels)
        assert np.array_equal(a.graph.indices, b.graph.indices)
        assert a.graph.texts[0].full == b.graph.texts[0].full

    def test_seed_changes_output(self, tiny_config):
        a = generate_tag(tiny_config, seed=1)
        b = generate_tag(tiny_config, seed=2)
        assert not np.array_equal(a.graph.indices, b.graph.indices)

    def test_homophily_matches_config(self, tiny_tag, tiny_config):
        assert edge_homophily(tiny_tag.graph) >= tiny_config.homophily - 0.05

    def test_clarity_within_ranges(self, tiny_tag, tiny_config):
        lo = min(tiny_config.ambiguous_clarity[0], tiny_config.clear_clarity[0])
        hi = max(tiny_config.ambiguous_clarity[1], tiny_config.clear_clarity[1])
        assert (tiny_tag.clarity >= lo).all() and (tiny_tag.clarity <= hi).all()

    def test_clear_fraction_roughly_honored(self, tiny_tag, tiny_config):
        threshold = (tiny_config.ambiguous_clarity[1] + tiny_config.clear_clarity[0]) / 2
        observed = float((tiny_tag.clarity > threshold).mean())
        assert abs(observed - tiny_config.clear_fraction) < 0.12

    def test_sibling_confusion_shapes_edges(self):
        config = GeneratorConfig(
            class_names=("a", "b", "c", "d"),
            num_nodes=400,
            num_edges=1200,
            homophily=0.5,
            sibling_confusion=1.0,
            feature_dim=16,
            name="sibling-test",
        )
        tag = generate_tag(config, seed=0)
        g = tag.graph
        sib = sibling_map(4)
        edges = g.edge_array()
        cross = edges[g.labels[edges[:, 0]] != g.labels[edges[:, 1]]]
        # With sibling_confusion=1 every cross-class edge joins sibling classes.
        for u, v in cross:
            lu, lv = int(g.labels[u]), int(g.labels[v])
            assert sib[lu] == lv or sib[lv] == lu
