"""Tests for the GNN substrate (GCN, GraphSAGE, propagation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn.gcn import GCNClassifier
from repro.gnn.propagation import mean_adjacency, normalized_adjacency, propagate
from repro.gnn.sage import GraphSAGEClassifier
from repro.ml.metrics import accuracy


class TestPropagation:
    def test_normalized_adjacency_rows(self, tiny_graph):
        adj = normalized_adjacency(tiny_graph)
        assert adj.shape == (tiny_graph.num_nodes, tiny_graph.num_nodes)
        # Symmetric normalization keeps the matrix symmetric.
        assert abs(adj - adj.T).max() < 1e-12

    def test_self_loops_included(self, tiny_graph):
        adj = normalized_adjacency(tiny_graph, add_self_loops=True)
        assert (adj.diagonal() > 0).all()

    def test_mean_adjacency_rows_sum_to_one(self, tiny_graph):
        adj = mean_adjacency(tiny_graph)
        sums = np.asarray(adj.sum(axis=1)).ravel()
        connected = np.asarray(tiny_graph.degree()) > 0
        assert np.allclose(sums[connected], 1.0)

    def test_propagate_zero_hops_identity(self, tiny_graph):
        adj = normalized_adjacency(tiny_graph)
        x = np.random.default_rng(0).normal(size=(tiny_graph.num_nodes, 4))
        assert np.array_equal(propagate(adj, x, hops=0), x)

    def test_propagate_smooths(self, tiny_graph):
        """Propagation reduces feature variance across connected nodes."""
        adj = normalized_adjacency(tiny_graph)
        x = np.random.default_rng(0).normal(size=(tiny_graph.num_nodes, 1))
        smoothed = propagate(adj, x, hops=3)
        assert smoothed.std() < x.std()

    def test_negative_hops(self, tiny_graph):
        with pytest.raises(ValueError):
            propagate(normalized_adjacency(tiny_graph), np.zeros((tiny_graph.num_nodes, 1)), hops=-1)


@pytest.mark.parametrize("model_cls", [GCNClassifier, GraphSAGEClassifier])
class TestGNNClassifiers:
    def test_beats_majority_class(self, model_cls, tiny_graph, tiny_split):
        model = model_cls(hidden_size=32, epochs=120, seed=0)
        model.fit(tiny_graph, tiny_split.labeled)
        preds = model.predict()
        acc = accuracy(tiny_graph.labels[tiny_split.queries], preds[tiny_split.queries])
        majority = max(np.bincount(tiny_graph.labels)) / tiny_graph.num_nodes
        assert acc > majority + 0.1

    def test_proba_rows_sum_to_one(self, model_cls, tiny_graph, tiny_split):
        model = model_cls(hidden_size=16, epochs=30, seed=0)
        model.fit(tiny_graph, tiny_split.labeled)
        p = model.predict_proba()
        assert p.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)
        assert np.allclose(p.sum(axis=1), 1.0, atol=1e-8)

    def test_deterministic(self, model_cls, tiny_graph, tiny_split):
        a = model_cls(hidden_size=8, epochs=10, seed=1).fit(tiny_graph, tiny_split.labeled).predict()
        b = model_cls(hidden_size=8, epochs=10, seed=1).fit(tiny_graph, tiny_split.labeled).predict()
        assert np.array_equal(a, b)

    def test_predict_before_fit(self, model_cls):
        with pytest.raises(RuntimeError):
            model_cls().predict()

    def test_empty_labeled_rejected(self, model_cls, tiny_graph):
        with pytest.raises(ValueError):
            model_cls(epochs=1).fit(tiny_graph, np.array([], dtype=np.int64))

    def test_invalid_hyperparams(self, model_cls):
        with pytest.raises(ValueError):
            model_cls(hidden_size=0)
        with pytest.raises(ValueError):
            model_cls(epochs=0)
