"""Golden token-accounting fixture for the MQO tier on a cora batch.

``tests/data/golden_mqo_accounting.json`` pins the complete money trail of
one deterministic serve run over the reduced cora replica with every MQO
mechanism armed: shared-first prompt layout, prefix-sharing scheduler,
compression watermark, and per-tenant budgets priced at gpt-3.5 rates.
The fixture stores

- the scheduler's :class:`~repro.mqo.prefix_sharing.PrefixSharingReport`
  aggregates (prompt tokens examined / shared),
- the ledger book's gross per-tenant charges (tokens, charge count, USD)
  and the shared-token credits with their dollar value, and
- the cost-attribution report (``repro analyze costs``) built from the
  run's own trace.

The test re-executes the run and asserts every number matches the stored
fixture exactly — and, cent for cent, that attribution reconciles against
the live ledgers (:func:`reconcile_with_book`) with the shared credits
priced at exactly :func:`cache_discount_usd`.

Regenerate after an *intended* accounting change with::

    PYTHONPATH=src python -m tests.test_golden_mqo_accounting

and review the diff like any other golden-file update.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.experiments.common import load_setup
from repro.llm.pricing import cache_discount_usd
from repro.llm.reliability import SimulatedClock
from repro.mqo.compression import PromptCompressor
from repro.obs import Instrumentation, instrument_stack
from repro.obs.insight.attribution import (
    attribute,
    reconcile_with_book,
    verify,
)
from repro.obs.insight.bundle import RunBundle
from repro.runtime.fallback import DegradationLadder
from repro.runtime.scheduler import QueryScheduler
from repro.runtime.serve import (
    AdmissionPolicy,
    ServingLayer,
    TenantSpec,
    synthetic_stream,
)

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_mqo_accounting.json"

DATASET = "cora"
NUM_QUERIES = 32
SCALE = 0.15
NUM_REQUESTS = 24
COMPRESS_RATIO = 0.5
PRICE_MODEL = "gpt-3.5"

TENANTS = (
    ("alpha", 2),
    ("beta", 1),
    ("gamma", 1),
)


def execute():
    """One deterministic cora serve batch with the full MQO tier armed."""
    setup = load_setup(DATASET, num_queries=NUM_QUERIES, scale=SCALE)
    clock = SimulatedClock()
    instr = Instrumentation(
        run_id="golden-mqo",
        clock=clock,
        labels={"dataset": DATASET, "strategy": "serve", "model": PRICE_MODEL},
    )
    scheduler = QueryScheduler(max_batch_size=4, prefix_sharing=True)
    engine = setup.make_engine(
        "1-hop",
        ladder=DegradationLadder(),
        observer=instr,
        clock=clock,
        scheduler=scheduler,
        compressor=PromptCompressor(target_ratio=COMPRESS_RATIO, seed=23),
        shared_first=True,
    )
    instrument_stack(engine.llm, instr)
    tenants = [
        TenantSpec(name, weight=weight, max_queue_depth=64)
        for name, weight in TENANTS
    ]
    layer = ServingLayer(
        engine,
        tenants,
        policy=AdmissionPolicy(compress_watermark=2, wave_quota=3),
        price_model=PRICE_MODEL,
        observer=instr,
    )
    stream = synthetic_stream(tenants, setup.queries, NUM_REQUESTS, seed=11)
    report = layer.replay(stream)
    return layer, scheduler, report, instr


def snapshot(layer, scheduler, report) -> dict:
    """Every accounted number, JSON-exact (floats round-trip bit-for-bit)."""
    book = layer.book
    return {
        "prefix_sharing": {
            "prompt_tokens": scheduler.report.prefix_prompt_tokens,
            "shared_tokens": scheduler.report.shared_prompt_tokens,
        },
        "tiers": dict(sorted(report.tier_counts.items())),
        "ledgers": {
            name: {
                "spent": ledger.spent,
                "charges": ledger.charges,
                "spent_usd": ledger.spent_usd,
                "shared_tokens": ledger.shared_tokens,
                "shared_usd": ledger.shared_usd,
            }
            for name, ledger in sorted(book.tenants.items())
        },
    }


class TestGoldenAccounting:
    def test_run_reproduces_golden_numbers(self):
        layer, scheduler, report, instr = execute()
        golden = json.loads(GOLDEN_PATH.read_text())
        fresh = snapshot(layer, scheduler, report)
        assert fresh == golden["accounting"], "accounted numbers diverged from golden"
        attribution = attribute(RunBundle.from_lines(instr.trace_lines()))
        assert attribution.to_dict() == golden["attribution"], (
            "cost attribution diverged from golden"
        )

    def test_attribution_reconciles_cent_for_cent(self):
        layer, scheduler, report, instr = execute()
        bundle = RunBundle.from_lines(instr.trace_lines())
        attribution = attribute(bundle)
        assert verify(bundle, attribution) == []
        assert reconcile_with_book(attribution, layer.book) == []
        # The attribution's prefix counters mirror the book's credits...
        assert attribution.shared_prompt_tokens == layer.book.shared_tokens
        assert attribution.prefix_prompt_tokens == (
            scheduler.report.prefix_prompt_tokens
        )
        # ...and every tenant's discount is priced at exactly the cache rate.
        assert layer.book.shared_tokens > 0, "batch realized no sharing"
        for ledger in layer.book.tenants.values():
            assert math.isclose(
                ledger.shared_usd,
                cache_discount_usd(PRICE_MODEL, ledger.shared_tokens),
                rel_tol=0,
                abs_tol=1e-12,
            )

    def test_workload_exercises_both_mqo_rungs(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        accounting = golden["accounting"]
        assert accounting["prefix_sharing"]["shared_tokens"] > 0
        assert accounting["tiers"].get("degraded_compressed", 0) > 0
        assert any(v["shared_tokens"] > 0 for v in accounting["ledgers"].values())


def regenerate() -> Path:
    layer, scheduler, report, instr = execute()
    attribution = attribute(RunBundle.from_lines(instr.trace_lines()))
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(
            {
                "accounting": snapshot(layer, scheduler, report),
                "attribution": attribution.to_dict(),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    return GOLDEN_PATH


if __name__ == "__main__":
    print(f"rewrote {regenerate()}")
