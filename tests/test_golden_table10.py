"""Golden-file regression test for the Table X link-prediction experiment.

``tests/data/golden_table10.txt`` is the rendered Table X output of one
reduced-scale run (cora only, 40 queries, scale 0.15) — every stage of the
link-prediction pipeline (query sampling, link inadequacy scoring, the five
strategies, table formatting) feeds the bytes, so any unintended numeric or
formatting drift anywhere in that stack shows up as a diff against this
file.

Regenerate after an *intended* change with::

    PYTHONPATH=src python -m tests.test_golden_table10

and review the diff like any other golden-file update.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.table10 import format_table10, run_table10

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_table10.txt"

#: Reduced-scale knobs so the regression runs in seconds, not minutes.
GOLDEN_KWARGS = dict(datasets=("cora",), num_queries=40, tau=0.2, scale=0.15)


def _render() -> str:
    return format_table10(run_table10(**GOLDEN_KWARGS)) + "\n"


class TestGoldenTable10:
    def test_output_matches_golden_file(self):
        fresh = _render()
        golden = GOLDEN_PATH.read_text()
        assert fresh == golden, (
            "Table X output diverged from tests/data/golden_table10.txt; if "
            "the change is intended, regenerate with "
            "`PYTHONPATH=src python -m tests.test_golden_table10` and review "
            "the diff"
        )

    def test_golden_file_has_expected_shape(self):
        lines = GOLDEN_PATH.read_text().splitlines()
        assert lines[0].startswith("Table X")
        assert any(line.lstrip("|").strip().startswith("cora") for line in lines)


def regenerate() -> Path:
    """Rewrite the golden file from the current implementation."""
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(_render())
    return GOLDEN_PATH


if __name__ == "__main__":
    print(f"rewrote {regenerate()}")
