"""Golden-trace regression test for batched scheduler runs.

``tests/data/golden_scheduler_trace.jsonl`` is the canonical trace of one
fully-loaded batched run (boosting + failure injection + degradation ladder
+ cache, dispatched through the scheduler).  The test re-executes the run
and asserts the emitted trace matches the stored file **modulo the run id**
— the one field the trace contract allows to vary.  Any unintended change
to span structure, ordering, attributes, timestamps or metric families
shows up as a diff against this file.

Regenerate after an *intended* trace change with::

    PYTHONPATH=src python -m tests.test_golden_trace

and review the diff like any other golden-file update.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.graph.generators import GeneratorConfig, generate_tag
from repro.graph.splits import make_split
from repro.obs import validate_trace_lines
from repro.prompts.builder import PromptBuilder
from repro.runtime.scheduler import QueryScheduler

from tests.equivalence import Scenario, run_scenario

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_scheduler_trace.jsonl"

#: The run id stored in the golden file; fresh runs use a different one to
#: prove the comparison really is modulo run id.
GOLDEN_RUN_ID = "golden"

#: Mirrors the ``tiny`` fixture stack in ``tests/conftest.py`` so the module
#: regenerates standalone (``python -m tests.test_golden_trace``).
TINY_CONFIG = GeneratorConfig(
    class_names=("Alpha", "Beta", "Gamma", "Delta"),
    num_nodes=320,
    num_edges=900,
    homophily=0.8,
    clear_fraction=0.6,
    feature_dim=96,
    title_words=8,
    abstract_words=40,
    name="tiny",
)

GOLDEN_SCENARIO = Scenario(
    strategy="boost",
    num_queries=12,
    failure_rate=0.15,
    max_attempts=3,
    use_ladder=True,
    use_cache=True,
    observe=True,
)

GOLDEN_SCHEDULER = dict(max_batch_size=4, max_concurrency=3)


def _execute(run_id: str):
    tag = generate_tag(TINY_CONFIG, seed=42)
    split = make_split(tag.graph, num_queries=80, labeled_per_class=10, seed=3)
    builder = PromptBuilder(tag.graph.class_names, "paper", "citation", "Abstract")
    return run_scenario(
        GOLDEN_SCENARIO,
        tag,
        split,
        builder,
        scheduler=QueryScheduler(**GOLDEN_SCHEDULER),
        run_id=run_id,
    )


def _strip_run_id(lines: list[dict]) -> list[dict]:
    return [{k: v for k, v in line.items() if k != "run_id"} for line in lines]


def _read_golden() -> list[dict]:
    return [
        json.loads(line)
        for line in GOLDEN_PATH.read_text().splitlines()
        if line.strip()
    ]


class TestGoldenTrace:
    def test_golden_file_is_schema_valid(self):
        validate_trace_lines(_read_golden())

    def test_batched_run_reproduces_golden_trace(self):
        capture = _execute(run_id="fresh-run")
        golden = _strip_run_id(_read_golden())
        fresh = _strip_run_id(capture.trace_raw)
        assert len(fresh) == len(golden), (
            f"trace length changed: {len(fresh)} lines vs golden {len(golden)}"
        )
        for line_no, (got, want) in enumerate(zip(fresh, golden), start=1):
            assert got == want, f"trace line {line_no} diverged from golden file"

    def test_fresh_run_id_differs_from_golden(self):
        # Guards the "modulo run id" clause: the comparison must not be
        # trivially passing because both runs share an id.
        capture = _execute(run_id="fresh-run")
        assert capture.trace_raw[0]["run_id"] == "fresh-run"
        assert _read_golden()[0]["run_id"] == GOLDEN_RUN_ID


def regenerate() -> Path:
    """Rewrite the golden file from the current implementation."""
    capture = _execute(run_id=GOLDEN_RUN_ID)
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        "\n".join(json.dumps(line, sort_keys=True) for line in capture.trace_raw) + "\n"
    )
    return GOLDEN_PATH


if __name__ == "__main__":
    print(f"rewrote {regenerate()}")
