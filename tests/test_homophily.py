"""Tests for homophily measures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.homophily import edge_homophily, node_homophily
from repro.graph.tag import TextAttributedGraph
from repro.text.corpus import NodeText


def labeled_graph(labels, edges) -> TextAttributedGraph:
    labels = np.asarray(labels, dtype=np.int64)
    n = labels.shape[0]
    return TextAttributedGraph.from_edges(
        num_nodes=n,
        edges=np.asarray(edges, dtype=np.int64).reshape(-1, 2),
        labels=labels,
        texts=[NodeText(f"t{i}", f"a{i}") for i in range(n)],
        features=np.zeros((n, 1), dtype=np.float32),
        class_names=[f"c{i}" for i in range(int(labels.max()) + 1)],
    )


class TestEdgeHomophily:
    def test_fully_homophilous(self):
        g = labeled_graph([0, 0, 0], [(0, 1), (1, 2)])
        assert edge_homophily(g) == 1.0

    def test_fully_heterophilous(self):
        g = labeled_graph([0, 1, 0], [(0, 1), (1, 2)])
        assert edge_homophily(g) == 0.0

    def test_mixed(self):
        g = labeled_graph([0, 0, 1], [(0, 1), (1, 2)])
        assert edge_homophily(g) == pytest.approx(0.5)

    def test_empty_graph(self):
        g = labeled_graph([0, 1], [])
        assert edge_homophily(g) == 0.0


class TestNodeHomophily:
    def test_matches_manual(self):
        # node0: nbr 1 (same) -> 1.0; node1: nbrs 0 (same), 2 (diff) -> 0.5;
        # node2: nbr 1 (diff) -> 0.0
        g = labeled_graph([0, 0, 1], [(0, 1), (1, 2)])
        assert node_homophily(g) == pytest.approx((1.0 + 0.5 + 0.0) / 3)

    def test_isolated_nodes_skipped(self):
        g = labeled_graph([0, 0, 1], [(0, 1)])
        assert node_homophily(g) == pytest.approx(1.0)

    def test_all_isolated(self):
        g = labeled_graph([0, 1], [])
        assert node_homophily(g) == 0.0


class TestGeneratorHomophilyHonored:
    def test_generated_graph_respects_config(self, tiny_graph, tiny_config):
        measured = edge_homophily(tiny_graph)
        # Same-class edges also arise by chance in the cross-class branch, so
        # measured homophily sits at or slightly above the configured level.
        assert measured >= tiny_config.homophily - 0.05
        assert measured <= tiny_config.homophily + 0.15
