"""Tests for the text-inadequacy measure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.inadequacy import TextInadequacyScorer
from repro.ml.mlp import MLPClassifier


@pytest.fixture(scope="module")
def fitted_scorer(tiny_graph, tiny_split, tiny_builder, tiny_tag):
    from repro.llm.simulated import SimulatedLLM

    scorer = TextInadequacyScorer(
        surrogate=MLPClassifier(hidden_sizes=(), epochs=100, learning_rate=0.05),
        calibration_per_class=8,
        seed=1,
    )
    llm = SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5)
    scorer.fit(tiny_graph, tiny_split.labeled, llm, tiny_builder)
    return scorer


class TestFit:
    def test_components_fitted(self, fitted_scorer, tiny_graph):
        assert fitted_scorer.fold_models_ is not None
        assert len(fitted_scorer.fold_models_) == 3
        assert fitted_scorer.regressor_ is not None
        assert fitted_scorer.bias_ratios_.shape == (tiny_graph.num_classes,)

    def test_calibration_subset_size(self, fitted_scorer, tiny_graph, tiny_split):
        cal = fitted_scorer.calibration_nodes_
        assert cal.size <= 8 * tiny_graph.num_classes
        assert np.isin(cal, tiny_split.labeled).all()

    def test_bias_ratios_are_fractions(self, fitted_scorer):
        assert ((fitted_scorer.bias_ratios_ >= 0) & (fitted_scorer.bias_ratios_ <= 1)).all()

    def test_requires_enough_labeled(self, tiny_graph, tiny_builder, tiny_tag):
        from repro.llm.simulated import SimulatedLLM

        scorer = TextInadequacyScorer(seed=0)
        with pytest.raises(ValueError, match="labeled"):
            scorer.fit(tiny_graph, np.array([0, 1]), SimulatedLLM(tiny_tag.vocabulary), tiny_builder)


class TestScore:
    def test_scores_shape(self, fitted_scorer, tiny_split):
        scores = fitted_scorer.score(tiny_split.queries)
        assert scores.shape == (tiny_split.num_queries,)
        assert np.isfinite(scores).all()

    def test_channels_exposed(self, fitted_scorer, tiny_split):
        channels = fitted_scorer.channels(tiny_split.queries)
        assert channels.entropy.shape == channels.bias.shape == channels.score.shape
        assert (channels.entropy >= 0).all()

    def test_separates_saturated_nodes(
        self, fitted_scorer, make_tiny_engine, tiny_split
    ):
        """Mean D of zero-shot-correct queries < mean D of incorrect ones."""
        engine = make_tiny_engine(method="vanilla")
        run = engine.run(tiny_split.queries)
        correct = np.array([r.node for r in run.records if r.correct])
        wrong = np.array([r.node for r in run.records if not r.correct])
        assert correct.size and wrong.size
        assert fitted_scorer.score(correct).mean() < fitted_scorer.score(wrong).mean()

    def test_unfitted_raises(self, tiny_split):
        with pytest.raises(RuntimeError):
            TextInadequacyScorer().score(tiny_split.queries)

    def test_proba_averaged_over_folds(self, fitted_scorer, tiny_split):
        probs = fitted_scorer.predict_proba(tiny_split.queries[:5])
        assert probs.shape[0] == 5
        assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-6)


class TestValidation:
    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            TextInadequacyScorer(calibration_per_class=0)
        with pytest.raises(ValueError):
            TextInadequacyScorer(cv_folds=1)
