"""Tests for cost attribution + ledger reconciliation (repro.obs.insight)."""

from __future__ import annotations

import pytest

from repro.core.budget import BudgetLedger
from repro.llm.profiles import make_model
from repro.llm.reliability import SimulatedClock
from repro.obs import Instrumentation, instrument_stack
from repro.obs.insight import (
    RunBundle,
    attribute,
    reconcile_with_book,
    reconcile_with_ledger,
    verify,
)
from repro.obs.insight import attribution as am
from repro.obs.insight.report import render_sections
from repro.runtime.router import CascadeRouter, EscalationPolicy, RouterTier
from repro.runtime.serve import ServeRequest, ServingLayer, TenantSpec


@pytest.fixture()
def cascade_run(tiny_tag, tiny_split, make_tiny_engine):
    """A routed run with a live ledger: spans, metrics and ledger must agree."""
    nodes = [int(v) for v in tiny_split.queries[:10]]
    clock = SimulatedClock()
    instr = Instrumentation(
        run_id="cascade-attr", clock=clock, labels={"dataset": "tiny"}
    )
    strong = make_model("gpt-3.5", tiny_tag.vocabulary, seed=5)
    cheap = make_model("gpt-4o-mini", tiny_tag.vocabulary, seed=21)
    instrument_stack(strong, instr)
    router = CascadeRouter(
        [RouterTier("gpt-4o-mini", cheap), RouterTier("gpt-3.5", strong)],
        policy=EscalationPolicy(
            escalate_on="both",
            inadequacy_threshold=0.7,
            confidence_threshold=0.6,
        ),
        inadequacy={node: (node % 10) / 10.0 for node in nodes},
        class_names=list(tiny_tag.graph.class_names),
        observer=instr,
    )
    engine = make_tiny_engine(
        llm=strong, observer=instr, clock=clock, router=router
    )
    ledger = BudgetLedger()
    engine.ledger = ledger
    engine.run(tiny_split.queries[:10])
    return RunBundle.from_lines(instr.trace_lines()), ledger, router


@pytest.fixture()
def serve_run(tiny_tag, tiny_split, make_tiny_engine):
    """A multi-tenant serve run: per-tenant attribution vs the LedgerBook."""
    nodes = [int(v) for v in tiny_split.queries[:12]]
    clock = SimulatedClock()
    instr = Instrumentation(
        run_id="serve-attr", clock=clock, labels={"dataset": "tiny"}
    )
    engine = make_tiny_engine(observer=instr, clock=clock)
    tenants = [
        TenantSpec("alpha", weight=2),
        TenantSpec("beta", weight=1),
    ]
    layer = ServingLayer(engine, tenants, price_model="gpt-3.5")
    requests = [
        ServeRequest(tenant=("alpha" if i % 3 else "beta"), node=node, arrival=0.0)
        for i, node in enumerate(nodes)
    ]
    layer.replay(requests)
    return RunBundle.from_lines(instr.trace_lines()), layer.book


class TestCascadeReconciliation:
    def test_token_for_token_against_ledger(self, cascade_run):
        bundle, ledger, _router = cascade_run
        report = attribute(bundle)
        assert ledger.spent > 0
        assert report.total.tokens == ledger.spent
        assert reconcile_with_ledger(report, ledger) == []

    def test_cent_for_cent_against_ledger(self, cascade_run):
        bundle, ledger, _router = cascade_run
        report = attribute(bundle)
        assert ledger.spent_usd > 0.0
        assert report.total.usd == pytest.approx(ledger.spent_usd, abs=1e-9)

    def test_tier_rollup_covers_total(self, cascade_run):
        bundle, _ledger, router = cascade_run
        report = attribute(bundle)
        assert set(report.by_tier) == {"gpt-4o-mini", "gpt-3.5"}
        assert router.stats()["cost_usd"] > 0.0
        # Tier queries double-count escalated nodes (every attempt billed),
        # but dollars partition exactly.
        tier_usd = sum(r.usd for r in report.by_tier.values())
        assert tier_usd == pytest.approx(report.total.usd, abs=1e-9)

    def test_internal_verify_is_clean(self, cascade_run):
        bundle, _ledger, _router = cascade_run
        assert verify(bundle, attribute(bundle)) == []

    def test_verify_flags_truncated_bundle(self, cascade_run):
        bundle, _ledger, _router = cascade_run
        # Drop one executed query span: spans no longer sum to the counters.
        lines = list(bundle.lines)
        victim = next(
            ln for ln in lines
            if ln.get("name") == "query" and "prompt_tokens" in ln.get("attributes", {})
        )
        truncated = RunBundle.from_lines([ln for ln in lines if ln is not victim])
        problems = verify(truncated, attribute(truncated))
        assert problems and "prompt tokens" in problems[0]

    def test_mismatched_ledger_is_reported(self, cascade_run):
        bundle, _ledger, _router = cascade_run
        report = attribute(bundle)
        wrong = BudgetLedger()
        wrong.charge(report.total.tokens + 1, usd=report.total.usd)
        problems = reconcile_with_ledger(report, wrong)
        assert problems and "tokens" in problems[0]


class TestServeReconciliation:
    def test_per_tenant_tokens_and_dollars_match_book(self, serve_run):
        bundle, book = serve_run
        report = attribute(bundle)
        assert set(report.by_tenant) == {"alpha", "beta"}
        for tenant, ledger in book.tenants.items():
            assert ledger.spent > 0
            assert int(report.by_tenant[tenant]["tokens"]) == ledger.spent
            assert report.by_tenant[tenant]["usd"] == pytest.approx(
                ledger.spent_usd, abs=1e-9
            )
        assert reconcile_with_book(report, book) == []

    def test_mismatched_book_is_reported(self, serve_run):
        bundle, book = serve_run
        report = attribute(bundle)
        report.by_tenant["alpha"]["tokens"] += 1
        problems = reconcile_with_book(report, book)
        assert problems and problems[0].startswith("alpha")


class TestRollups:
    def test_phase_time_partitions_query_time(self, cascade_run):
        bundle, _ledger, _router = cascade_run
        report = attribute(bundle)
        query_time = sum(
            float(s.get("duration", 0.0))
            for s in bundle.query_spans()
            if "outcome" in s.get("attributes", {})
        )
        assert sum(report.by_phase.values()) == pytest.approx(query_time)

    def test_outcome_and_node_rollups_agree_with_total(self, cascade_run):
        bundle, _ledger, _router = cascade_run
        report = attribute(bundle)
        assert sum(r.tokens for r in report.by_outcome.values()) == report.total.tokens
        assert sum(r.tokens for r in report.by_node.values()) == report.total.tokens
        assert sum(r.queries for r in report.by_outcome.values()) == report.total.queries

    def test_sections_render_all_axes(self, cascade_run):
        bundle, _ledger, _router = cascade_run
        report = attribute(bundle)
        text = render_sections("Costs", am.sections(report), "text")
        assert "Spend by outcome tier" in text
        assert "Spend by cascade tier" in text
        assert "Time by engine phase" in text
        assert "node spenders" in text
