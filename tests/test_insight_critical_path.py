"""Tests for critical-path analysis (repro.obs.insight.critical_path)."""

from __future__ import annotations

import json

import pytest

from repro.obs.insight import RunBundle, analyze_bench, analyze_trace, pack_wave
from repro.obs.insight import critical_path as cp
from repro.obs.insight.critical_path import WaveQuery
from repro.obs.insight.report import render_json, render_sections
from repro.runtime.scheduler import QueryScheduler

from tests.equivalence import Scenario, run_scenario

#: Same fully-loaded boosted configuration as the golden trace: uneven round
#: sizes at concurrency 4 leave workers parked at wave barriers, which is
#: exactly the signal the analyzer must quantify.
SCENARIO = Scenario(
    strategy="boost",
    num_queries=12,
    failure_rate=0.15,
    max_attempts=3,
    use_ladder=True,
    use_cache=True,
    observe=True,
)


def _trace(tiny_tag, tiny_split, tiny_builder, run_id: str) -> RunBundle:
    capture = run_scenario(
        SCENARIO,
        tiny_tag,
        tiny_split,
        tiny_builder,
        scheduler=QueryScheduler(max_batch_size=4, max_concurrency=3),
        run_id=run_id,
    )
    return RunBundle.from_lines(capture.trace_raw)


@pytest.fixture(scope="module")
def traced_replays(tiny_tag, tiny_split, tiny_builder):
    """Two replays of the same seeded run — only the run id differs."""
    return (
        _trace(tiny_tag, tiny_split, tiny_builder, "replay-a"),
        _trace(tiny_tag, tiny_split, tiny_builder, "replay-b"),
    )


class TestPackWave:
    def test_uneven_latencies_stall_and_blocker(self):
        wave = pack_wave(
            0, "w", [WaveQuery("q0", 5.0)] + [WaveQuery(f"q{i}", 1.0) for i in (1, 2, 3)],
            concurrency=2, batch_size=None,
        )
        # Greedy packing: worker 0 takes q0 (5s); worker 1 takes q1..q3 (3s).
        assert wave.makespan_seconds == 5.0
        assert wave.serial_seconds == 8.0
        assert wave.stall_seconds == pytest.approx(2.0)  # 2*5 - 8
        assert wave.blocking_query == "q0"
        assert wave.worker_busy == (5.0, 3.0)
        assert wave.utilization == pytest.approx(0.8)

    def test_balanced_wave_has_zero_stall(self):
        wave = pack_wave(
            0, "w", [WaveQuery(f"q{i}", 1.0) for i in range(4)],
            concurrency=2, batch_size=None,
        )
        assert wave.makespan_seconds == 2.0
        assert wave.stall_seconds == 0.0
        assert wave.utilization == 1.0

    def test_batch_barriers_add_up(self):
        # batch_size=2 splits 4 equal queries into two barriers of 1s each.
        wave = pack_wave(
            0, "w", [WaveQuery(f"q{i}", 1.0) for i in range(4)],
            concurrency=2, batch_size=2,
        )
        assert wave.num_batches == 2
        assert wave.makespan_seconds == 2.0

    def test_blocker_is_query_setting_dominant_batch_makespan(self):
        # Second batch's straggler dominates the first batch's makespan.
        wave = pack_wave(
            0, "w",
            [WaveQuery("a", 1.0), WaveQuery("b", 1.0),
             WaveQuery("c", 4.0), WaveQuery("d", 1.0)],
            concurrency=2, batch_size=2,
        )
        assert wave.blocking_query == "c"

    def test_mirrors_scheduler_overlap_packing(self):
        # The analyzer's virtual packing must agree with the scheduler's own
        # greedy next-free-worker accounting on arbitrary latency profiles.
        latencies = [0.7, 2.3, 1.1, 0.2, 3.4, 0.9, 1.6, 0.5]
        concurrency, batch_size = 3, 4
        expected = 0.0
        for lo in range(0, len(latencies), batch_size):
            batch = latencies[lo : lo + batch_size]
            workers = [0.0] * min(concurrency, len(batch))
            for latency in batch:
                slot = workers.index(min(workers))
                workers[slot] += latency
            expected += max(workers)
        wave = pack_wave(
            0, "w", [WaveQuery(f"q{i}", v) for i, v in enumerate(latencies)],
            concurrency=concurrency, batch_size=batch_size,
        )
        assert wave.makespan_seconds == pytest.approx(expected)

    def test_rejects_nonpositive_concurrency(self):
        with pytest.raises(ValueError):
            pack_wave(0, "w", [], concurrency=0, batch_size=None)


class TestTraceAnalysis:
    def test_quantifies_barrier_stall_at_concurrency_4(self, traced_replays):
        report = analyze_trace(traced_replays[0], concurrency=4)
        assert report.source == "trace"
        assert report.stall_seconds > 0.0
        assert report.serial_seconds > report.makespan_seconds
        # The bound can never be beaten by the barriered schedule.
        assert report.what_if_no_barrier_seconds <= report.makespan_seconds + 1e-9
        assert report.what_if_speedup >= report.speedup - 1e-9

    def test_names_blocking_query_per_wave(self, traced_replays):
        report = analyze_trace(traced_replays[0], concurrency=4)
        assert report.waves
        for wave in report.waves:
            assert wave.blocking_query is not None
            assert wave.blocking_query.startswith("node ")

    def test_waves_follow_boosting_rounds(self, traced_replays):
        report = analyze_trace(traced_replays[0], concurrency=4)
        assert [w.label for w in report.waves] == [
            f"round {i}" for i in range(len(report.waves))
        ]

    @pytest.mark.parametrize("fmt", ["text", "md"])
    def test_reports_byte_identical_across_replays(self, traced_replays, fmt):
        rendered = [
            render_sections(
                "Critical path", cp.sections(analyze_trace(b, concurrency=4)), fmt
            )
            for b in traced_replays
        ]
        assert rendered[0] == rendered[1]
        assert rendered[0]  # non-empty

    def test_json_payload_byte_identical_across_replays(self, traced_replays):
        payloads = [
            render_json(analyze_trace(b, concurrency=4).to_dict())
            for b in traced_replays
        ]
        assert payloads[0] == payloads[1]
        json.loads(payloads[0])  # well-formed

    def test_replay_spans_cost_zero_latency(self, traced_replays):
        bundle = traced_replays[0]
        waves = cp.waves_from_trace(bundle)
        total = sum(q.latency for _, queries in waves for q in queries)
        report = analyze_trace(bundle, concurrency=4)
        assert report.serial_seconds == pytest.approx(total)


class TestBenchAnalysis:
    PAYLOAD = {
        "num_queries": 48,
        "max_batch_size": 16,
        "max_concurrency": 4,
        "seconds_per_call": 1.0,
        "waves": [
            {
                "wave_index": 0,
                "num_queries": 48,
                "num_batches": 3,
                "serial_seconds": 48.0,
                "overlapped_seconds": 12.0,
            }
        ],
    }

    def test_balanced_bench_artifact_has_zero_stall(self):
        report = analyze_bench(self.PAYLOAD)
        assert report.source == "bench"
        assert report.speedup == pytest.approx(4.0)
        assert report.stall_seconds == 0.0
        assert report.waves[0].blocking_query is None

    def test_unbalanced_bench_wave_shows_stall(self):
        payload = dict(self.PAYLOAD)
        payload["waves"] = [
            {
                "wave_index": 0,
                "num_queries": 5,
                "num_batches": 1,
                "serial_seconds": 5.0,
                "overlapped_seconds": 2.0,
            }
        ]
        report = analyze_bench(payload)
        # 4 workers x 2s makespan - 5s compute = 3 idle worker-seconds.
        assert report.stall_seconds == pytest.approx(3.0)

    def test_renders_aggregate_placeholder(self):
        text = render_sections(
            "Bench", cp.sections(analyze_bench(self.PAYLOAD)), "text"
        )
        assert "n/a (aggregate)" in text
