"""Tests for cross-run regression diffing (repro.obs.insight.diff)."""

from __future__ import annotations

import pytest

from repro.llm.reliability import SimulatedClock
from repro.obs.insight import RunBundle, diff_bundles, diff_summaries, summarize_bundle
from repro.obs.insight import diff as dm
from repro.obs.insight.report import render_sections
from repro.obs.tracing import SpanTracer


def run_with_latency(seconds_per_call: float, run_id: str = "r") -> RunBundle:
    """A synthetic classify run: 8 queries at a uniform simulated latency."""
    clock = SimulatedClock()
    tracer = SpanTracer(run_id=run_id, clock=clock)
    for i in range(8):
        with tracer.span("query", node=i) as span:
            clock.advance(seconds_per_call)
            span.set(outcome="ok", prompt_tokens=100, completion_tokens=5)
    return RunBundle.from_lines(tracer.to_dicts())


class TestSummarize:
    def test_flat_indicators(self):
        summary = summarize_bundle(run_with_latency(0.5))
        assert summary["queries"] == 8.0
        assert summary["paid_tokens"] == 8 * 105.0
        assert summary["latency_p50_seconds"] == pytest.approx(0.5)
        assert summary["latency_p99_seconds"] == pytest.approx(0.5)
        assert summary["makespan_seconds"] == pytest.approx(4.0)

    def test_replayed_spans_do_not_count_as_paid(self):
        clock = SimulatedClock()
        tracer = SpanTracer(run_id="r", clock=clock)
        with tracer.span("query", node=0) as span:
            span.set(outcome="ok", replayed=True,
                     prompt_tokens=100, completion_tokens=5)
        summary = summarize_bundle(RunBundle.from_lines(tracer.to_dicts()))
        assert summary["queries"] == 1.0
        assert summary["paid_tokens"] == 0.0


class TestVerdicts:
    def test_identical_bundles_diff_to_zero_deltas(self):
        # Two same-seed replays differ only in run id; every indicator must
        # come out bit-equal and the verdict must say so.
        report = diff_bundles(
            run_with_latency(0.5, "a"), run_with_latency(0.5, "b")
        )
        assert report.verdict == "identical"
        assert all(d.abs_delta == 0.0 for d in report.deltas)
        assert report.regressions == [] and report.improvements == []

    def test_25pct_latency_regression_flagged_at_default_tolerance(self):
        # 0.5s -> 0.625s per call: +25% against the 10% tolerance.
        report = diff_bundles(
            run_with_latency(0.5), run_with_latency(0.625), tolerance=0.1
        )
        assert report.verdict == "regression"
        regressed = {d.name for d in report.regressions}
        assert {"latency_p50_seconds", "latency_p99_seconds",
                "makespan_seconds"} <= regressed
        p50 = next(d for d in report.deltas if d.name == "latency_p50_seconds")
        assert p50.rel_delta == pytest.approx(0.25)

    def test_movement_within_tolerance_is_ok(self):
        report = diff_bundles(
            run_with_latency(0.5), run_with_latency(0.52), tolerance=0.1
        )
        assert report.verdict == "ok"

    def test_improvement_moves_the_right_way(self):
        report = diff_bundles(
            run_with_latency(0.5), run_with_latency(0.3), tolerance=0.1
        )
        assert report.verdict == "improvement"
        assert "latency_p50_seconds" in {d.name for d in report.improvements}

    def test_regression_wins_on_mixed_movement(self):
        report = diff_summaries(
            {"latency_p99_seconds": 1.0, "cost_usd": 1.0},
            {"latency_p99_seconds": 2.0, "cost_usd": 0.5},
            tolerance=0.1,
        )
        assert report.improvements and report.regressions
        assert report.verdict == "regression"

    def test_neutral_indicators_are_shape_not_score(self):
        report = diff_summaries(
            {"queries": 8.0}, {"queries": 16.0}, tolerance=0.1
        )
        assert report.verdict == "ok"
        assert [d.name for d in report.shape_changes] == ["queries"]

    def test_move_away_from_zero_baseline_is_full_delta(self):
        report = diff_summaries(
            {"rejected_ratio": 0.0}, {"rejected_ratio": 0.05}, tolerance=0.1
        )
        assert report.verdict == "regression"
        assert report.deltas[0].rel_delta == 1.0

    def test_custom_directions_override(self):
        # The serve gate scores artifact keys the default table doesn't know.
        report = diff_summaries(
            {"p99_seconds": 1.0},
            {"p99_seconds": 2.0},
            tolerance=0.1,
            directions={"p99_seconds": "lower_better"},
        )
        assert report.verdict == "regression"

    def test_unknown_keys_default_to_neutral(self):
        report = diff_summaries({"widgets": 1.0}, {"widgets": 99.0})
        assert report.verdict == "ok"


class TestRendering:
    def test_verdict_and_movers_in_text(self):
        report = diff_bundles(
            run_with_latency(0.5), run_with_latency(0.625), tolerance=0.1
        )
        text = render_sections("Diff", dm.sections(report), "text")
        assert "verdict: regression" in text
        assert "regressed: " in text
        assert "WORSE" in text

    def test_payload_lists_classifications(self):
        report = diff_bundles(
            run_with_latency(0.5, "a"), run_with_latency(0.5, "b")
        )
        payload = report.to_dict()
        assert payload["verdict"] == "identical"
        assert payload["regressions"] == []
        assert all(d["classification"] == "same" for d in payload["deltas"])
