"""Tests for SLO evaluation and burn rates (repro.obs.insight.slo)."""

from __future__ import annotations

import json

import pytest

from repro.llm.reliability import SimulatedClock
from repro.obs.insight import RunBundle, SLObjective, evaluate, load_objectives
from repro.obs.insight import slo as sm
from repro.obs.insight.report import render_sections
from repro.obs.tracing import SpanTracer


def serve_bundle(statuses_latencies: list[tuple[str, float]], gap: float = 1.0):
    """A synthetic serve trace: one ``serve_complete`` event per entry,
    spaced ``gap`` simulated seconds apart."""
    clock = SimulatedClock()
    tracer = SpanTracer(run_id="slo-test", clock=clock)
    for status, latency in statuses_latencies:
        tracer.event(
            "serve_complete",
            tenant="a", status=status, tier="ok", latency_seconds=latency,
        )
        clock.advance(gap)
    return RunBundle.from_lines(tracer.to_dicts())


def classify_bundle(outcomes: list[str]):
    """A synthetic classify trace: query spans with outcomes, no serve events."""
    clock = SimulatedClock()
    tracer = SpanTracer(run_id="slo-test", clock=clock)
    for i, outcome in enumerate(outcomes):
        with tracer.span("query", node=i) as span:
            clock.advance(1.0)
            span.set(outcome=outcome, prompt_tokens=10, completion_tokens=1)
    return RunBundle.from_lines(tracer.to_dicts())


class TestObjectiveValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            SLObjective("x", "availability", 0.9)

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            SLObjective("x", "goodput", 0.0)

    def test_latency_requires_threshold(self):
        with pytest.raises(ValueError):
            SLObjective("x", "latency", 0.9)


class TestEvaluation:
    def test_latency_objective_counts_threshold_violations(self):
        bundle = serve_bundle(
            [("served", 0.5)] * 8 + [("served", 10.0)] * 2
        )
        report = evaluate(
            bundle, objectives=(SLObjective("fast", "latency", 0.9, 1.0),)
        )
        result = report.results[0]
        assert (result.good, result.events) == (8, 10)
        assert result.attained_ratio == pytest.approx(0.8)
        assert not result.met
        # 20% bad against a 10% budget: burning 2x.
        assert result.overall_burn == pytest.approx(2.0)

    def test_goodput_objective_counts_full_fidelity_only(self):
        bundle = serve_bundle(
            [("served", 0.1)] * 5 + [("degraded", 0.1)] * 4 + [("rejected", 0.1)]
        )
        report = evaluate(
            bundle, objectives=(SLObjective("good", "goodput", 0.5),)
        )
        assert report.results[0].attained_ratio == pytest.approx(0.5)
        assert report.results[0].met

    def test_error_rate_objective_counts_rejections(self):
        bundle = serve_bundle(
            [("served", 0.1)] * 8 + [("rejected", 0.1)] * 2
        )
        report = evaluate(
            bundle, objectives=(SLObjective("shed", "error_rate", 0.9),)
        )
        assert report.results[0].attained_ratio == pytest.approx(0.8)
        assert not report.results[0].met
        assert not report.all_met

    def test_classify_fallback_maps_outcomes(self):
        bundle = classify_bundle(["ok", "ok", "retried", "abstained"])
        report = evaluate(
            bundle,
            objectives=(
                SLObjective("good", "goodput", 0.5),
                SLObjective("err", "error_rate", 0.7),
            ),
        )
        good, err = report.results
        assert good.attained_ratio == pytest.approx(0.75)  # ok+retried
        assert err.attained_ratio == pytest.approx(0.75)  # abstained = rejected

    def test_empty_bundle_trivially_met(self):
        clock = SimulatedClock()
        bundle = RunBundle.from_lines(SpanTracer(run_id="x", clock=clock).to_dicts())
        report = evaluate(bundle)
        assert report.all_met
        assert all(r.events == 0 for r in report.results)

    def test_rejects_nonpositive_windows(self):
        with pytest.raises(ValueError):
            evaluate(serve_bundle([("served", 0.1)]), windows=0)


class TestBurnWindows:
    def test_clustered_failures_burn_one_window(self):
        # 20 events over equal spacing; the last 5 all reject — the final
        # window burns far hotter than the run-wide average.
        bundle = serve_bundle(
            [("served", 0.1)] * 15 + [("rejected", 0.1)] * 5
        )
        report = evaluate(
            bundle, objectives=(SLObjective("shed", "error_rate", 0.9),), windows=4
        )
        result = report.results[0]
        assert result.max_window_burn > result.overall_burn
        assert result.windows[-1].bad == 5
        assert result.windows[-1].burn_rate == pytest.approx(
            1.0 / (5 / 5) * 10.0
        )  # all-bad window over a 10% budget

    def test_zero_budget_with_failures_is_infinite_burn(self):
        bundle = serve_bundle([("served", 0.1)] * 3 + [("rejected", 0.1)])
        report = evaluate(
            bundle, objectives=(SLObjective("always", "error_rate", 1.0),)
        )
        assert report.results[0].overall_burn == sm.INFINITE_BURN

    def test_single_instant_collapses_to_one_window(self):
        bundle = serve_bundle([("served", 0.1), ("rejected", 0.1)], gap=0.0)
        report = evaluate(
            bundle, objectives=(SLObjective("shed", "error_rate", 0.9),), windows=6
        )
        assert len(report.results[0].windows) == 1


class TestObjectivesFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "slos.json"
        path.write_text(
            json.dumps(
                [
                    {"name": "p99", "kind": "latency",
                     "target_ratio": 0.99, "threshold_seconds": 2.0},
                    {"name": "serve", "kind": "goodput", "target_ratio": 0.8},
                ]
            )
        )
        objectives = load_objectives(path)
        assert [o.name for o in objectives] == ["p99", "serve"]
        assert objectives[0].threshold_seconds == 2.0
        assert objectives[1].threshold_seconds is None

    def test_rejects_non_list(self, tmp_path):
        path = tmp_path / "slos.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_objectives(path)


class TestRendering:
    def test_breached_window_is_named(self):
        bundle = serve_bundle(
            [("served", 0.1)] * 15 + [("rejected", 0.1)] * 5
        )
        report = evaluate(
            bundle, objectives=(SLObjective("shed", "error_rate", 0.9),), windows=4
        )
        text = render_sections("SLO", sm.sections(report), "text")
        assert "BREACHED" in text
        assert "burn" in text
