"""Tests for instruction-tuned backbone models."""

from __future__ import annotations

import pytest

from repro.llm.instruction_tuned import BACKBONE_CONFIGS, BackboneConfig, InstructionTunedLLM
from repro.text.vocabulary import ClassVocabulary


@pytest.fixture(scope="module")
def vocab() -> ClassVocabulary:
    return ClassVocabulary.build(["A", "B"], seed=0)


class TestBackboneConfigs:
    def test_six_backbones(self):
        assert len(BACKBONE_CONFIGS) == 6

    def test_display_names_match_table9_rows(self):
        names = [c.display_name for c in BACKBONE_CONFIGS]
        assert names == [
            "1-hop, w/ raw, no path",
            "2-hop, w/ raw, no path",
            "2-hop, w/ raw, w/ path",
            "1-hop, no raw, no path",
            "2-hop, no raw, no path",
            "2-hop, no raw, w/ path",
        ]

    def test_unique_names(self):
        names = {c.name for c in BACKBONE_CONFIGS}
        assert len(names) == 6

    def test_invalid_hops(self):
        with pytest.raises(ValueError):
            BackboneConfig("x", hops=3, use_raw_text=True, use_path=False)


class TestInstructionTunedLLM:
    def test_raw_text_strengthens_neighbors(self, vocab):
        raw = InstructionTunedLLM(vocab, BACKBONE_CONFIGS[0])
        no_raw = InstructionTunedLLM(vocab, BACKBONE_CONFIGS[3])
        assert raw.neighbor_weight > no_raw.neighbor_weight

    def test_path_mildly_strengthens(self, vocab):
        no_path = InstructionTunedLLM(vocab, BACKBONE_CONFIGS[1])
        with_path = InstructionTunedLLM(vocab, BACKBONE_CONFIGS[2])
        assert with_path.neighbor_weight > no_path.neighbor_weight

    def test_sharper_than_black_box(self, vocab):
        from repro.llm.profiles import make_model

        tuned = InstructionTunedLLM(vocab, BACKBONE_CONFIGS[0])
        black_box = make_model("gpt-3.5", vocab)
        assert tuned.noise_scale < black_box.noise_scale
        assert tuned.label_weight > black_box.label_weight

    def test_config_attached(self, vocab):
        llm = InstructionTunedLLM(vocab, BACKBONE_CONFIGS[2])
        assert llm.config is BACKBONE_CONFIGS[2]
        assert llm.name == BACKBONE_CONFIGS[2].name
