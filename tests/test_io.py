"""Tests for graph and run persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.io.graphs import load_graph, save_graph
from repro.io.runs import (
    CheckpointState,
    RunCheckpointer,
    load_checkpoint,
    load_run,
    run_to_rows,
    save_checkpoint,
    save_run,
    write_csv,
)
from repro.runtime.results import QueryRecord, RunResult


class TestGraphPersistence:
    def test_roundtrip_exact(self, tiny_graph, tmp_path):
        save_graph(tiny_graph, tmp_path / "g")
        loaded = load_graph(tmp_path / "g")
        assert loaded.name == tiny_graph.name
        assert loaded.class_names == tiny_graph.class_names
        assert np.array_equal(loaded.indptr, tiny_graph.indptr)
        assert np.array_equal(loaded.indices, tiny_graph.indices)
        assert np.array_equal(loaded.labels, tiny_graph.labels)
        assert np.array_equal(loaded.features, tiny_graph.features)
        assert loaded.texts[0] == tiny_graph.texts[0]
        assert loaded.texts[-1] == tiny_graph.texts[-1]

    def test_loaded_graph_is_functional(self, tiny_graph, tmp_path):
        save_graph(tiny_graph, tmp_path / "g")
        loaded = load_graph(tmp_path / "g")
        node = 0
        assert list(loaded.neighbors(node)) == list(tiny_graph.neighbors(node))
        assert loaded.num_edges == tiny_graph.num_edges

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_graph(tmp_path / "nowhere")

    def test_version_check(self, tiny_graph, tmp_path):
        import json

        save_graph(tiny_graph, tmp_path / "g")
        meta_path = tmp_path / "g" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="format version"):
            load_graph(tmp_path / "g")


def sample_run() -> RunResult:
    return RunResult(
        [
            QueryRecord(
                node=i,
                true_label=i % 2,
                predicted_label=(i % 2) if i != 3 else None,
                prompt_tokens=100 + i,
                completion_tokens=5,
                num_neighbors=2,
                num_neighbor_labels=1,
                num_pseudo_labels=0,
                pruned=(i == 1),
                round_index=i // 2,
            )
            for i in range(5)
        ]
    )


class TestRunPersistence:
    def test_roundtrip(self, tmp_path):
        original = sample_run()
        save_run(original, tmp_path / "run.json")
        loaded = load_run(tmp_path / "run.json")
        assert loaded.records == original.records
        assert loaded.accuracy == original.accuracy
        assert loaded.total_tokens == original.total_tokens

    def test_none_prediction_survives(self, tmp_path):
        original = sample_run()
        save_run(original, tmp_path / "run.json")
        loaded = load_run(tmp_path / "run.json")
        assert loaded.records[3].predicted_label is None

    def test_version_check(self, tmp_path):
        import json

        save_run(sample_run(), tmp_path / "run.json")
        payload = json.loads((tmp_path / "run.json").read_text())
        payload["format_version"] = 0
        (tmp_path / "run.json").write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            load_run(tmp_path / "run.json")

    def test_rows_include_derived_fields(self):
        rows = run_to_rows(sample_run())
        assert rows[0]["correct"] is True
        assert rows[0]["total_tokens"] == 105

    def test_csv_export(self, tmp_path):
        path = write_csv(sample_run(), tmp_path / "run.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 6  # header + 5 records
        assert "node" in lines[0] and "correct" in lines[0]

    def test_version_1_files_load_with_default_outcome(self, tmp_path):
        import json

        save_run(sample_run(), tmp_path / "run.json")
        payload = json.loads((tmp_path / "run.json").read_text())
        payload["format_version"] = 1
        for record in payload["records"]:
            del record["outcome"]  # the field version 2 introduced
        (tmp_path / "run.json").write_text(json.dumps(payload))
        loaded = load_run(tmp_path / "run.json")
        assert all(r.outcome == "ok" for r in loaded.records)

    def test_outcome_survives_roundtrip(self, tmp_path):
        record = QueryRecord(
            node=0,
            true_label=1,
            predicted_label=None,
            prompt_tokens=0,
            completion_tokens=0,
            num_neighbors=0,
            num_neighbor_labels=0,
            num_pseudo_labels=0,
            outcome="abstained",
        )
        save_run(RunResult([record]), tmp_path / "run.json")
        assert load_run(tmp_path / "run.json").records[0].outcome == "abstained"


class TestCheckpointPersistence:
    def test_roundtrip(self, tmp_path):
        state = CheckpointState(
            records=list(sample_run().records), pseudo_labels={7: 1, 9: 0}, completed=False
        )
        save_checkpoint(state, tmp_path / "ck.json")
        loaded = load_checkpoint(tmp_path / "ck.json")
        assert loaded.records == state.records
        assert loaded.pseudo_labels == {7: 1, 9: 0}  # int keys survive JSON
        assert loaded.completed is False

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        save_checkpoint(CheckpointState(), tmp_path / "ck.json")
        assert list(tmp_path.iterdir()) == [tmp_path / "ck.json"]

    def test_rejects_plain_run_files(self, tmp_path):
        save_run(sample_run(), tmp_path / "run.json")
        with pytest.raises(ValueError, match="not a checkpoint"):
            load_checkpoint(tmp_path / "run.json")

    def test_checkpointer_persists_incrementally(self, tmp_path):
        path = tmp_path / "ck.json"
        ck = RunCheckpointer(path)
        records = list(sample_run().records)
        ck.append(records[0])
        ck.record_pseudo(records[0].node, 1)
        ck.append(records[1])
        # Every append flushed (flush_every=1): a fresh reader sees both.
        resumed = RunCheckpointer(path)
        assert resumed.resumed_records == 2
        assert set(resumed.executed) == {records[0].node, records[1].node}
        assert resumed.pseudo_labels == {records[0].node: 1}
        assert resumed.state.completed is False

    def test_duplicate_append_rejected(self, tmp_path):
        ck = RunCheckpointer(tmp_path / "ck.json")
        record = sample_run().records[0]
        ck.append(record)
        with pytest.raises(ValueError, match="already checkpointed"):
            ck.append(record)

    def test_flush_every_batches_writes(self, tmp_path):
        path = tmp_path / "ck.json"
        ck = RunCheckpointer(path, flush_every=3)
        records = list(sample_run().records)
        ck.append(records[0])
        ck.append(records[1])
        assert not path.exists()  # below the batch threshold
        ck.append(records[2])
        assert RunCheckpointer(path).resumed_records == 3
        ck.append(records[3])
        ck.mark_complete()  # forces the final flush
        resumed = RunCheckpointer(path)
        assert resumed.resumed_records == 4
        assert resumed.state.completed is True

    def test_invalid_flush_every(self, tmp_path):
        with pytest.raises(ValueError):
            RunCheckpointer(tmp_path / "ck.json", flush_every=0)
