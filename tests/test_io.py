"""Tests for graph and run persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.io.graphs import load_graph, save_graph
from repro.io.runs import load_run, run_to_rows, save_run, write_csv
from repro.runtime.results import QueryRecord, RunResult


class TestGraphPersistence:
    def test_roundtrip_exact(self, tiny_graph, tmp_path):
        save_graph(tiny_graph, tmp_path / "g")
        loaded = load_graph(tmp_path / "g")
        assert loaded.name == tiny_graph.name
        assert loaded.class_names == tiny_graph.class_names
        assert np.array_equal(loaded.indptr, tiny_graph.indptr)
        assert np.array_equal(loaded.indices, tiny_graph.indices)
        assert np.array_equal(loaded.labels, tiny_graph.labels)
        assert np.array_equal(loaded.features, tiny_graph.features)
        assert loaded.texts[0] == tiny_graph.texts[0]
        assert loaded.texts[-1] == tiny_graph.texts[-1]

    def test_loaded_graph_is_functional(self, tiny_graph, tmp_path):
        save_graph(tiny_graph, tmp_path / "g")
        loaded = load_graph(tmp_path / "g")
        node = 0
        assert list(loaded.neighbors(node)) == list(tiny_graph.neighbors(node))
        assert loaded.num_edges == tiny_graph.num_edges

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_graph(tmp_path / "nowhere")

    def test_version_check(self, tiny_graph, tmp_path):
        import json

        save_graph(tiny_graph, tmp_path / "g")
        meta_path = tmp_path / "g" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="format version"):
            load_graph(tmp_path / "g")


def sample_run() -> RunResult:
    return RunResult(
        [
            QueryRecord(
                node=i,
                true_label=i % 2,
                predicted_label=(i % 2) if i != 3 else None,
                prompt_tokens=100 + i,
                completion_tokens=5,
                num_neighbors=2,
                num_neighbor_labels=1,
                num_pseudo_labels=0,
                pruned=(i == 1),
                round_index=i // 2,
            )
            for i in range(5)
        ]
    )


class TestRunPersistence:
    def test_roundtrip(self, tmp_path):
        original = sample_run()
        save_run(original, tmp_path / "run.json")
        loaded = load_run(tmp_path / "run.json")
        assert loaded.records == original.records
        assert loaded.accuracy == original.accuracy
        assert loaded.total_tokens == original.total_tokens

    def test_none_prediction_survives(self, tmp_path):
        original = sample_run()
        save_run(original, tmp_path / "run.json")
        loaded = load_run(tmp_path / "run.json")
        assert loaded.records[3].predicted_label is None

    def test_version_check(self, tmp_path):
        import json

        save_run(sample_run(), tmp_path / "run.json")
        payload = json.loads((tmp_path / "run.json").read_text())
        payload["format_version"] = 0
        (tmp_path / "run.json").write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            load_run(tmp_path / "run.json")

    def test_rows_include_derived_fields(self):
        rows = run_to_rows(sample_run())
        assert rows[0]["correct"] is True
        assert rows[0]["total_tokens"] == 105

    def test_csv_export(self, tmp_path):
        path = write_csv(sample_run(), tmp_path / "run.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 6  # header + 5 records
        assert "node" in lines[0] and "correct" in lines[0]
