"""Tests for the joint prune-then-boost strategy."""

from __future__ import annotations

import pytest

from repro.core.boosting import QueryBoostingStrategy
from repro.core.inadequacy import TextInadequacyScorer
from repro.core.joint import JointStrategy
from repro.core.pruning import TokenPruningStrategy
from repro.llm.simulated import SimulatedLLM
from repro.ml.mlp import MLPClassifier


@pytest.fixture()
def joint(tiny_graph, tiny_split, tiny_builder, tiny_tag) -> JointStrategy:
    scorer = TextInadequacyScorer(
        surrogate=MLPClassifier(hidden_sizes=(), epochs=80, learning_rate=0.05),
        calibration_per_class=8,
        seed=1,
    )
    scorer.fit(tiny_graph, tiny_split.labeled, SimulatedLLM(tiny_tag.vocabulary, seed=5), tiny_builder)
    return JointStrategy(TokenPruningStrategy(scorer), QueryBoostingStrategy())


class TestJoint:
    def test_all_queries_executed(self, joint, make_tiny_engine, tiny_split):
        outcome = joint.execute(make_tiny_engine(), tiny_split.queries, tau=0.2)
        assert outcome.run.num_queries == tiny_split.num_queries

    def test_pruned_fraction_has_no_neighbors(self, joint, make_tiny_engine, tiny_split):
        outcome = joint.execute(make_tiny_engine(), tiny_split.queries, tau=0.2)
        expected_pruned = round(0.2 * tiny_split.num_queries)
        assert len(outcome.plan.pruned) == expected_pruned
        assert outcome.run.queries_with_neighbors <= tiny_split.num_queries - expected_pruned

    def test_pruned_queries_still_produce_pseudo_labels(
        self, joint, make_tiny_engine, tiny_split
    ):
        engine = make_tiny_engine()
        outcome = joint.execute(engine, tiny_split.queries, tau=0.3)
        assert set(outcome.plan.pruned) <= set(engine.pseudo_labeled)

    def test_saves_tokens_vs_plain(self, joint, make_tiny_engine, tiny_split):
        plain = make_tiny_engine().run(tiny_split.queries)
        outcome = joint.execute(make_tiny_engine(), tiny_split.queries, tau=0.3)
        assert outcome.run.total_tokens < plain.total_tokens

    def test_accuracy_competitive(self, joint, make_tiny_engine, tiny_split):
        """Joint strategy matches plain accuracy despite 20% cheaper prompts."""
        plain = make_tiny_engine().run(tiny_split.queries)
        outcome = joint.execute(make_tiny_engine(), tiny_split.queries, tau=0.2)
        assert outcome.run.accuracy >= plain.accuracy - 0.05
