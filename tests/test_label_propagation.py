"""Tests for the label propagation baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn.label_propagation import LabelPropagation
from repro.ml.metrics import accuracy


class TestLabelPropagation:
    def test_clamps_seeds(self, tiny_graph, tiny_split):
        model = LabelPropagation(num_iterations=10).fit(tiny_graph, tiny_split.labeled)
        preds = model.predict()
        seed_preds = preds[tiny_split.labeled]
        assert np.array_equal(seed_preds, tiny_graph.labels[tiny_split.labeled])

    def test_beats_majority_on_homophilous_graph(self, tiny_graph, tiny_split):
        model = LabelPropagation().fit(tiny_graph, tiny_split.labeled)
        preds = model.predict()
        acc = accuracy(tiny_graph.labels[tiny_split.queries], preds[tiny_split.queries])
        majority = max(np.bincount(tiny_graph.labels)) / tiny_graph.num_nodes
        assert acc > majority

    def test_confidence_shape_and_range(self, tiny_graph, tiny_split):
        model = LabelPropagation().fit(tiny_graph, tiny_split.labeled)
        conf = model.confidence()
        assert conf.shape == (tiny_graph.num_nodes,)
        assert (conf >= 0).all()
        # Seeds are clamped to one-hot mass.
        assert np.allclose(conf[tiny_split.labeled], 1.0)

    def test_isolated_nodes_stay_unreached(self, tiny_graph, tiny_split):
        isolated = [v for v in range(tiny_graph.num_nodes) if tiny_graph.degree(v) == 0]
        if not isolated:
            pytest.skip("fixture graph has no isolated nodes")
        model = LabelPropagation().fit(tiny_graph, tiny_split.labeled)
        conf = model.confidence()
        unlabeled_isolated = [v for v in isolated if v not in set(tiny_split.labeled.tolist())]
        for v in unlabeled_isolated:
            assert conf[v] == 0.0

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LabelPropagation().predict()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LabelPropagation(num_iterations=0)
        with pytest.raises(ValueError):
            LabelPropagation(alpha=0.0)

    def test_empty_labeled_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            LabelPropagation().fit(tiny_graph, np.array([], dtype=np.int64))
