"""Tests for linear and logistic regression."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.linear import LinearRegression, LogisticRegression


class TestLinearRegression:
    def test_recovers_exact_line(self):
        x = np.arange(10, dtype=float).reshape(-1, 1)
        y = 3.0 * x.ravel() + 2.0
        model = LinearRegression().fit(x, y)
        assert model.coef_[0] == pytest.approx(3.0)
        assert model.intercept_ == pytest.approx(2.0)

    def test_multivariate(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 3))
        true_w = np.array([1.0, -2.0, 0.5])
        y = x @ true_w + 0.25
        model = LinearRegression().fit(x, y)
        assert np.allclose(model.coef_, true_w, atol=1e-8)

    def test_ridge_shrinks_coefficients(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(30, 2))
        y = x @ np.array([5.0, -5.0]) + rng.normal(0, 0.1, 30)
        plain = LinearRegression().fit(x, y)
        ridge = LinearRegression(l2=100.0).fit(x, y)
        assert np.abs(ridge.coef_).sum() < np.abs(plain.coef_).sum()

    def test_ridge_does_not_shrink_intercept(self):
        x = np.zeros((20, 1))
        y = np.full(20, 7.0)
        ridge = LinearRegression(l2=1000.0).fit(x + np.random.default_rng(2).normal(0, 1e-6, (20, 1)), y)
        assert ridge.intercept_ == pytest.approx(7.0, abs=1e-3)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict(np.ones((1, 2)))

    def test_misaligned(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.ones((3, 2)), np.ones(4))

    def test_negative_l2(self):
        with pytest.raises(ValueError):
            LinearRegression(l2=-1)


class TestLogisticRegression:
    def test_learns_separable(self):
        rng = np.random.default_rng(0)
        x = np.concatenate([rng.normal(-2, 0.5, (50, 2)), rng.normal(2, 0.5, (50, 2))])
        y = np.concatenate([np.zeros(50), np.ones(50)])
        model = LogisticRegression(learning_rate=0.5, epochs=300).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.98

    def test_proba_shape_and_range(self):
        x = np.random.default_rng(1).normal(size=(10, 2))
        y = (x[:, 0] > 0).astype(float)
        model = LogisticRegression(epochs=50).fit(x, y)
        p = model.predict_proba(x)
        assert p.shape == (10, 2)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert ((p >= 0) & (p <= 1)).all()

    def test_sigmoid_stability(self):
        z = np.array([-1000.0, 0.0, 1000.0])
        s = LogisticRegression._sigmoid(z)
        assert s[0] == pytest.approx(0.0)
        assert s[1] == pytest.approx(0.5)
        assert s[2] == pytest.approx(1.0)

    def test_rejects_nonbinary(self):
        with pytest.raises(ValueError, match="binary"):
            LogisticRegression().fit(np.ones((2, 1)), np.array([0.0, 2.0]))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.ones((1, 2)))
