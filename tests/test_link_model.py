"""Tests for the simulated link-prediction LLM."""

from __future__ import annotations

import pytest

from repro.llm.link_model import (
    SimulatedLinkLLM,
    format_link_response,
    parse_link_response,
)
from repro.prompts.link import LinkEndpoint, LinkPromptBuilder
from repro.text.vocabulary import ClassVocabulary


@pytest.fixture(scope="module")
def vocab() -> ClassVocabulary:
    return ClassVocabulary.build(["X", "Y", "Z"], seed=3, words_per_class=40)


@pytest.fixture(scope="module")
def builder() -> LinkPromptBuilder:
    return LinkPromptBuilder()


def text_of(vocab, k, n=15):
    return " ".join(vocab.class_words[k][:n])


class TestResponses:
    def test_format(self):
        assert format_link_response(True) == "Answer: ['Yes']"
        assert format_link_response(False) == "Answer: ['No']"

    def test_parse_roundtrip(self):
        assert parse_link_response(format_link_response(True)) is True
        assert parse_link_response(format_link_response(False)) is False

    def test_parse_case_insensitive(self):
        assert parse_link_response("answer: ['yes']") is True

    def test_parse_unknown(self):
        assert parse_link_response("maybe?") is None


class TestScoring:
    def test_same_topic_scores_higher(self, vocab, builder):
        llm = SimulatedLinkLLM(vocab, noise_scale=0.0, seed=0)
        same = builder.build(
            LinkEndpoint("t1", text_of(vocab, 0)), LinkEndpoint("t2", text_of(vocab, 0))
        )
        different = builder.build(
            LinkEndpoint("t1", text_of(vocab, 0)), LinkEndpoint("t2", text_of(vocab, 1))
        )
        assert llm.score_pair(same) > llm.score_pair(different)

    def test_direct_hit_bonus(self, vocab, builder):
        llm = SimulatedLinkLLM(vocab, noise_scale=0.0, seed=0)
        hit = builder.build(
            LinkEndpoint("t1", text_of(vocab, 0), neighbor_titles=("t2",)),
            LinkEndpoint("t2", text_of(vocab, 1)),
        )
        miss = builder.build(
            LinkEndpoint("t1", text_of(vocab, 0), neighbor_titles=("other",)),
            LinkEndpoint("t2", text_of(vocab, 1)),
        )
        assert llm.score_pair(hit) > llm.score_pair(miss) + llm.direct_hit_bonus * 0.9

    def test_context_alignment_helps(self, vocab, builder):
        llm = SimulatedLinkLLM(vocab, noise_scale=0.0, seed=0)
        aligned = builder.build(
            LinkEndpoint("t1", text_of(vocab, 0), neighbor_titles=(text_of(vocab, 1, 5),)),
            LinkEndpoint("t2", text_of(vocab, 1)),
        )
        misaligned = builder.build(
            LinkEndpoint("t1", text_of(vocab, 0), neighbor_titles=(text_of(vocab, 2, 5),)),
            LinkEndpoint("t2", text_of(vocab, 1)),
        )
        assert llm.score_pair(aligned) > llm.score_pair(misaligned)

    def test_deterministic_per_pair(self, vocab, builder):
        llm = SimulatedLinkLLM(vocab, seed=0)
        prompt = builder.build(LinkEndpoint("a", text_of(vocab, 0)), LinkEndpoint("b", text_of(vocab, 0)))
        assert llm.complete(prompt).text == llm.complete(prompt).text

    def test_complete_emits_parseable_answer(self, vocab, builder):
        llm = SimulatedLinkLLM(vocab, seed=0)
        prompt = builder.build(LinkEndpoint("a", text_of(vocab, 0)), LinkEndpoint("b", text_of(vocab, 2)))
        assert parse_link_response(llm.complete(prompt).text) is not None

    def test_malformed_prompt_rejected(self, vocab):
        llm = SimulatedLinkLLM(vocab, seed=0)
        with pytest.raises(ValueError):
            llm.score_pair("not a link prompt")
