"""Tests for link-prediction tasks (Sec. VI-J machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.link_tasks import (
    LinkInadequacyScorer,
    LinkPredictionTask,
    sample_link_queries,
)
from repro.llm.link_model import SimulatedLinkLLM
from repro.prompts.link import LinkPromptBuilder


@pytest.fixture(scope="module")
def query_set(tiny_graph):
    return sample_link_queries(tiny_graph, num_queries=80, seed=1)


@pytest.fixture()
def task(tiny_graph, tiny_tag, query_set) -> LinkPredictionTask:
    return LinkPredictionTask(
        graph=tiny_graph,
        llm=SimulatedLinkLLM(tiny_tag.vocabulary, seed=7),
        builder=LinkPromptBuilder(),
        query_set=query_set,
        max_context_neighbors=4,
        seed=2,
    )


class TestSampleLinkQueries:
    def test_balanced(self, query_set):
        assert query_set.num_queries == 80
        assert query_set.truths.sum() == 40

    def test_positives_are_real_edges(self, tiny_graph, query_set):
        for (u, v), truth in zip(query_set.pairs, query_set.truths):
            assert tiny_graph.has_edge(int(u), int(v)) == bool(truth)

    def test_positive_pairs_not_leaked_into_known(self, query_set):
        for (u, v), truth in zip(query_set.pairs, query_set.truths):
            if truth:
                assert int(v) not in query_set.known_adjacency.get(int(u), [])

    def test_deterministic(self, tiny_graph):
        a = sample_link_queries(tiny_graph, 40, seed=9)
        b = sample_link_queries(tiny_graph, 40, seed=9)
        assert np.array_equal(a.pairs, b.pairs)

    def test_invalid_count(self, tiny_graph):
        with pytest.raises(ValueError):
            sample_link_queries(tiny_graph, 1)


class TestLinkInadequacyScorer:
    def test_scores_in_unit_interval(self, tiny_graph, query_set):
        scorer = LinkInadequacyScorer(seed=0).fit(tiny_graph, query_set)
        scores = scorer.score(tiny_graph, query_set.pairs)
        assert scores.shape == (query_set.num_queries,)
        assert ((scores >= 0) & (scores <= 1)).all()

    def test_unfitted_raises(self, tiny_graph, query_set):
        with pytest.raises(RuntimeError):
            LinkInadequacyScorer().score(tiny_graph, query_set.pairs)


class TestLinkPredictionTask:
    def test_vanilla_beats_chance(self, task):
        assert task.run_vanilla().accuracy > 0.6

    def test_base_includes_context(self, task):
        base = task.run_base()
        assert any(r.num_context_links > 0 for r in base.records)
        vanilla = task.run_vanilla()
        assert all(r.num_context_links == 0 for r in vanilla.records)

    def test_base_prompts_cost_more(self, task):
        assert task.run_base().prompt_tokens > task.run_vanilla().prompt_tokens

    def test_pruned_fraction(self, task):
        pruned = task.run_pruned(tau=0.25)
        assert sum(r.pruned for r in pruned.records) == round(0.25 * task.query_set.num_queries)

    def test_boost_covers_all_queries(self, task):
        boosted = task.run_boosted()
        assert len(boosted.records) == task.query_set.num_queries
        pairs = {r.pair for r in boosted.records}
        assert len(pairs) == task.query_set.num_queries

    def test_boost_rounds_monotone(self, task):
        boosted = task.run_boosted()
        rounds = [r.round_index for r in boosted.records]
        assert rounds == sorted(rounds)

    def test_both_prunes_and_boosts(self, task):
        both = task.run_both(tau=0.2)
        assert sum(r.pruned for r in both.records) == round(0.2 * task.query_set.num_queries)
        assert len(both.records) == task.query_set.num_queries

    def test_accuracy_orderings_roughly_hold(self, task):
        """Boosting should not collapse below base; prune stays near base."""
        base = task.run_base().accuracy
        boost = task.run_boosted().accuracy
        prune = task.run_pruned(tau=0.2).accuracy
        assert boost >= base - 0.05
        assert abs(prune - base) < 0.1
