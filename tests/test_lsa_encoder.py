"""Tests for the LSA encoder (the OGB dense-feature substitute)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.text.encoders import LSAEncoder

TOPIC_A = "neural network learning gradient descent layers"
TOPIC_B = "database index transaction query storage engine"


@pytest.fixture(scope="module")
def corpus() -> list[str]:
    return [TOPIC_A] * 6 + [TOPIC_B] * 6 + [TOPIC_A + " " + TOPIC_B] * 2


class TestLSAEncoder:
    def test_shape(self, corpus):
        x = LSAEncoder(dim=4).fit_transform(corpus)
        assert x.shape == (len(corpus), 4)
        assert x.dtype == np.float32

    def test_topical_separation(self, corpus):
        x = LSAEncoder(dim=4).fit_transform(corpus)
        same = x[0] @ x[1]
        cross = x[0] @ x[6]
        assert same > cross

    def test_transform_matches_fit_transform(self, corpus):
        enc = LSAEncoder(dim=4)
        fitted = enc.fit_transform(corpus)
        projected = enc.transform(corpus)
        # Same subspace: cosine of corresponding rows near ±1.
        for a, b in zip(fitted, projected):
            na, nb = np.linalg.norm(a), np.linalg.norm(b)
            if na > 1e-6 and nb > 1e-6:
                assert abs(a @ b / (na * nb)) > 0.99

    def test_dim_larger_than_rank_padded(self):
        x = LSAEncoder(dim=10).fit_transform(["a b", "b c", "c a", "a c"])
        assert x.shape == (4, 10)

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            LSAEncoder(dim=2).transform(["a"])

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            LSAEncoder(dim=0)

    def test_deterministic(self, corpus):
        a = LSAEncoder(dim=4).fit_transform(corpus)
        b = LSAEncoder(dim=4).fit_transform(corpus)
        assert np.allclose(a, b)
