"""Tests for classification metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    entropy,
    misclassification_ratios,
    softmax,
)


class TestSoftmax:
    def test_sums_to_one(self):
        p = softmax(np.array([1.0, 2.0, 3.0]))
        assert p.sum() == pytest.approx(1.0)

    def test_stable_for_large_logits(self):
        p = softmax(np.array([1000.0, 1000.0]))
        assert np.allclose(p, [0.5, 0.5])

    def test_batch_axis(self):
        p = softmax(np.zeros((3, 4)), axis=1)
        assert np.allclose(p, 0.25)

    @given(arrays(np.float64, 5, elements=st.floats(-50, 50)))
    def test_valid_distribution(self, logits):
        p = softmax(logits)
        assert p.sum() == pytest.approx(1.0)
        assert (p >= 0).all()


class TestEntropy:
    def test_uniform_is_max(self):
        k = 4
        h_uniform = entropy(np.full(k, 1 / k))
        h_peaked = entropy(np.array([0.97, 0.01, 0.01, 0.01]))
        assert h_uniform > h_peaked

    def test_onehot_is_zero(self):
        assert entropy(np.array([1.0, 0.0, 0.0])) == pytest.approx(0.0)

    def test_base_two(self):
        assert entropy(np.array([0.5, 0.5]), base=2) == pytest.approx(1.0)

    def test_batched(self):
        h = entropy(np.array([[0.5, 0.5], [1.0, 0.0]]), axis=1)
        assert h.shape == (2,)
        assert h[0] > h[1]


class TestAccuracy:
    def test_basic(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 0])) == pytest.approx(2 / 3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))


class TestConfusionMatrix:
    def test_counts(self):
        m = confusion_matrix(np.array([0, 0, 1]), np.array([0, 1, 1]), num_classes=2)
        assert m.tolist() == [[1, 1], [0, 1]]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0]), np.array([5]), num_classes=2)


class TestMisclassificationRatios:
    def test_per_class(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 1, 1, 1])
        w = misclassification_ratios(y_true, y_pred, num_classes=3)
        assert w[0] == pytest.approx(0.5)
        assert w[1] == pytest.approx(0.0)
        assert w[2] == 0.0  # absent class gets no evidence of bias

    def test_unparsed_predictions_count_as_wrong(self):
        # -1 (parse failure sentinel) never equals a true label
        w = misclassification_ratios(np.array([0, 0]), np.array([-1, 0]), num_classes=1)
        assert w[0] == pytest.approx(0.5)
