"""Tests for the numpy MLP classifier, including a finite-difference check."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.metrics import softmax
from repro.ml.mlp import MLPClassifier
from repro.ml.preprocessing import one_hot


def blobs(n_per_class=40, k=3, dim=5, seed=0):
    rng = np.random.default_rng(seed)
    xs, ys = [], []
    for c in range(k):
        center = rng.normal(0, 3, size=dim)
        xs.append(center + rng.normal(0, 0.5, size=(n_per_class, dim)))
        ys.append(np.full(n_per_class, c))
    return np.concatenate(xs), np.concatenate(ys)


class TestFit:
    def test_learns_separable_blobs(self):
        x, y = blobs()
        model = MLPClassifier(hidden_sizes=(16,), epochs=150, learning_rate=0.01, seed=0)
        model.fit(x, y)
        assert (model.predict(x) == y).mean() > 0.95

    def test_linear_model_learns(self):
        x, y = blobs()
        model = MLPClassifier(hidden_sizes=(), epochs=200, learning_rate=0.05, seed=0)
        model.fit(x, y)
        assert (model.predict(x) == y).mean() > 0.9

    def test_loss_decreases(self):
        x, y = blobs()
        model = MLPClassifier(hidden_sizes=(8,), epochs=50, seed=0).fit(x, y)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_deterministic_given_seed(self):
        x, y = blobs()
        a = MLPClassifier(hidden_sizes=(8,), epochs=20, seed=3).fit(x, y).predict_proba(x)
        b = MLPClassifier(hidden_sizes=(8,), epochs=20, seed=3).fit(x, y).predict_proba(x)
        assert np.allclose(a, b)

    def test_num_classes_override(self):
        x, y = blobs(k=2)
        model = MLPClassifier(epochs=5).fit(x, y, num_classes=5)
        assert model.predict_proba(x).shape == (x.shape[0], 5)

    def test_num_classes_too_small(self):
        x, y = blobs(k=3)
        with pytest.raises(ValueError):
            MLPClassifier(epochs=5).fit(x, y, num_classes=2)

    def test_empty_data(self):
        with pytest.raises(ValueError):
            MLPClassifier().fit(np.empty((0, 3)), np.empty(0, dtype=int))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            MLPClassifier().predict(np.ones((1, 3)))


class TestPredictProba:
    def test_rows_sum_to_one(self):
        x, y = blobs()
        model = MLPClassifier(hidden_sizes=(8,), epochs=20, seed=0).fit(x, y)
        p = model.predict_proba(x)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert (p >= 0).all()


class TestClone:
    def test_clone_is_unfitted_copy(self):
        model = MLPClassifier(hidden_sizes=(4,), learning_rate=0.42, dropout=0.1)
        clone = model.clone()
        assert clone.weights_ is None
        assert clone.learning_rate == 0.42
        assert clone.hidden_sizes == (4,)


class TestGradients:
    def test_backward_matches_finite_differences(self):
        """Analytic gradients agree with numerical differentiation."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(6, 4))
        y = rng.integers(0, 3, size=6)
        model = MLPClassifier(hidden_sizes=(5,), epochs=1, seed=1)
        model.fit(x, y)  # initializes and trains one epoch; weights now fixed

        y_onehot = one_hot(y, 3)

        def loss() -> float:
            probs = softmax(model.predict_logits(x))
            return float(-(y_onehot * np.log(probs + 1e-12)).sum() / x.shape[0])

        logits, activations, masks = model._forward(x, rng=None)
        probs = softmax(logits)
        grads_w, grads_b = model._backward(x.shape[0], probs - y_onehot, activations, masks)

        eps = 1e-6
        for layer in range(2):
            w = model.weights_[layer]
            for idx in [(0, 0), (1, 2)]:
                original = w[idx]
                w[idx] = original + eps
                up = loss()
                w[idx] = original - eps
                down = loss()
                w[idx] = original
                numeric = (up - down) / (2 * eps)
                assert grads_w[layer][idx] == pytest.approx(numeric, rel=1e-4, abs=1e-7)
