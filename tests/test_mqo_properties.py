"""Property suite for the MQO tier: compression and prefix-sharing laws.

Hypothesis-driven invariants over real rendered prompts (drawn from the
tiny graph) and synthetic prompt batches:

Compression (:mod:`repro.mqo.compression`)
    - never grows a prompt: ``compressed_tokens <= original_tokens``;
    - with ``preserve_structure=False`` the budget is a hard ceiling:
      ``compressed_tokens <= budget`` for every (prompt, budget);
    - with the default ``preserve_structure=True`` the result is never
      smaller than the block-free skeleton and the prompt frame stays
      parseable by the simulated models;
    - pure function of (prompt, seed): byte-identical across repeat calls
      and across fresh compressor instances;
    - ``savings_fraction`` is non-negative and consistent with the token
      counts.

Prefix sharing (:mod:`repro.mqo.prefix_sharing`)
    - the plan's ``order`` is a permutation of the input positions and its
      ``batches`` partition that order with sizes ``<= max_batch_size``;
    - token accounting balances exactly:
      ``paid_tokens + shared_tokens == total_tokens`` with
      ``0 <= shared_tokens <= total_tokens``;
    - the first prompt of every batch pays its prefix in full
      (``shared_by_prompt`` is 0 there) and per-prompt shares sum to the
      report's total;
    - planning is deterministic: same prompts, same plan.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.simulated import SimulatedLLM, parse_prompt
from repro.mqo.compression import ContextAnalyzer, PromptCompressor
from repro.mqo.prefix_sharing import (
    analyze_prefix_sharing,
    plan_prefix_batches,
    shared_prefix_tokens,
)
from repro.text.tokenizer import _default_tokenizer

MAX_EXAMPLES = 25


@pytest.fixture(scope="module")
def prompts(tiny_tag, tiny_split, tiny_builder):
    """Real rendered 1-hop prompts off the tiny graph, one per query node."""
    from repro.runtime.engine import MultiQueryEngine
    from repro.selection.registry import make_selector

    engine = MultiQueryEngine(
        graph=tiny_tag.graph,
        llm=SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5),
        selector=make_selector("1-hop"),
        builder=tiny_builder,
        labeled=tiny_split.labeled,
        max_neighbors=4,
        seed=9,
    )
    return [
        engine.build_prompt(int(node), include_neighbors=True)[0]
        for node in tiny_split.queries[:40]
    ]


# ------------------------------------------------------------- compression


@given(index=st.integers(min_value=0, max_value=39), ratio=st.floats(0.2, 1.0))
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_compression_never_grows_and_stays_parseable(prompts, index, ratio):
    prompt = prompts[index]
    result = PromptCompressor(target_ratio=ratio).compress(prompt)
    assert result.compressed_tokens <= result.original_tokens
    assert result.dropped_blocks <= result.num_blocks
    assert 0.0 <= result.savings_fraction <= 1.0
    # The default preserves the structural frame: the simulated parser must
    # still find the target section.
    parsed = parse_prompt(result.text)
    assert parsed.target_title, "compression destroyed the target section"


@given(
    index=st.integers(min_value=0, max_value=39),
    budget=st.integers(min_value=1, max_value=400),
)
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_hard_budget_holds_without_structure_preservation(prompts, index, budget):
    compressor = PromptCompressor(target_tokens=budget, preserve_structure=False)
    result = compressor.compress(prompts[index])
    assert result.compressed_tokens <= budget
    assert result.compressed_tokens <= result.original_tokens


@given(index=st.integers(min_value=0, max_value=39), budget=st.integers(1, 120))
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_structure_preservation_floors_at_skeleton(prompts, index, budget):
    """Default mode never drops below the block-free skeleton, and meets the
    budget whenever the skeleton itself fits it."""
    prompt = prompts[index]
    tokenizer = _default_tokenizer()
    compressor = PromptCompressor(target_tokens=budget)
    result = compressor.compress(prompt)
    assert not result.truncated
    segments = compressor.analyzer.segments(prompt)
    skeleton = tokenizer.count(prompt) - sum(s.tokens for s in segments)
    assert result.compressed_tokens >= skeleton
    if skeleton <= budget:
        # Dropping blocks alone can always reach the budget here, and the
        # drop loop runs until it does.
        assert result.compressed_tokens <= budget
    else:
        # Budget unreachable without breaking the frame: all blocks dropped,
        # skeleton returned as-is.
        assert result.dropped_blocks == result.num_blocks
        assert result.compressed_tokens == skeleton


@given(
    index=st.integers(min_value=0, max_value=39),
    ratio=st.floats(0.2, 0.9),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_compression_is_deterministic_per_seed(prompts, index, ratio, seed):
    prompt = prompts[index]
    first = PromptCompressor(target_ratio=ratio, seed=seed).compress(prompt)
    second = PromptCompressor(target_ratio=ratio, seed=seed).compress(prompt)
    assert first == second, "same (prompt, seed) produced different bytes"
    # And repeat calls on one instance agree with a fresh instance.
    shared = PromptCompressor(target_ratio=ratio, seed=seed)
    assert shared.compress(prompt) == shared.compress(prompt) == first


@given(index=st.integers(min_value=0, max_value=39))
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_analyzer_scores_are_deterministic_and_ordered(prompts, index):
    analyzer = ContextAnalyzer(seed=7)
    first = analyzer.segments(prompts[index])
    second = ContextAnalyzer(seed=7).segments(prompts[index])
    assert first == second
    # Segments arrive in prompt order with disjoint spans.
    for before, after in zip(first, first[1:]):
        assert before.end <= after.start


# ---------------------------------------------------------- prefix sharing

#: Synthetic prompt alphabet: few distinct words so drawn batches actually
#: share prefixes (and ties exercise the deterministic tie-breaks).
WORDS = ("alpha", "beta", "gamma", "delta")

prompt_strategy = st.lists(st.sampled_from(WORDS), min_size=0, max_size=8).map(
    " ".join
)
batch_strategy = st.lists(prompt_strategy, min_size=0, max_size=12)


@given(prompts=batch_strategy, max_batch=st.integers(min_value=1, max_value=6))
@settings(max_examples=50, deadline=None)
def test_plan_is_permutation_partition_and_balances(prompts, max_batch):
    plan = plan_prefix_batches(prompts, max_batch_size=max_batch)
    n = len(prompts)
    assert sorted(plan.order) == list(range(n))
    flattened = [i for batch in plan.batches for i in batch]
    assert flattened == list(plan.order), "batches must partition the order"
    assert all(1 <= len(batch) <= max_batch for batch in plan.batches)
    report = plan.report
    assert report.paid_tokens + report.shared_tokens == report.total_tokens
    assert 0 <= report.shared_tokens <= report.total_tokens
    assert report.savings_fraction >= 0.0
    # Per-prompt credits: first of each batch pays in full, the rest share
    # at most their own token count, and the credits sum to the report.
    assert len(plan.shared_by_prompt) == n
    tokenizer = _default_tokenizer()
    for batch in plan.batches:
        assert plan.shared_by_prompt[batch[0]] == 0
        for position in batch:
            assert 0 <= plan.shared_by_prompt[position] <= tokenizer.count(
                prompts[position]
            )
    assert sum(plan.shared_by_prompt) == report.shared_tokens


@given(prompts=batch_strategy, max_batch=st.integers(min_value=1, max_value=6))
@settings(max_examples=50, deadline=None)
def test_planning_is_deterministic(prompts, max_batch):
    assert plan_prefix_batches(prompts, max_batch_size=max_batch) == plan_prefix_batches(
        prompts, max_batch_size=max_batch
    )


@given(prompts=batch_strategy)
@settings(max_examples=50, deadline=None)
def test_analyzer_savings_nonnegative_and_reorder_never_hurts(prompts):
    as_issued = analyze_prefix_sharing(prompts, reorder=False)
    reordered = analyze_prefix_sharing(prompts, reorder=True)
    for report in (as_issued, reordered):
        assert report.shared_tokens >= 0
        assert report.paid_tokens + report.shared_tokens == report.total_tokens
    assert reordered.shared_tokens >= as_issued.shared_tokens


@given(a=prompt_strategy, b=prompt_strategy)
@settings(max_examples=50, deadline=None)
def test_shared_prefix_tokens_is_symmetric_and_bounded(a, b):
    tokenizer = _default_tokenizer()
    shared = shared_prefix_tokens(a, b, tokenizer=tokenizer)
    assert shared == shared_prefix_tokens(b, a, tokenizer=tokenizer)
    assert 0 <= shared <= min(tokenizer.count(a), tokenizer.count(b))
    assert shared_prefix_tokens(a, a, tokenizer=tokenizer) == tokenizer.count(a)


def test_real_prompt_batch_balances_on_the_tiny_graph(prompts):
    """The synthetic-alphabet laws hold on real rendered prompts too."""
    plan = plan_prefix_batches(prompts, max_batch_size=8)
    assert sorted(plan.order) == list(range(len(prompts)))
    assert plan.report.paid_tokens + plan.report.shared_tokens == plan.report.total_tokens
    assert sum(plan.shared_by_prompt) == plan.report.shared_tokens
