"""Unit tests for the MQO tier's wiring: pricing discounts, ledger credits,
the shared-first prompt layout, the engine's compressed rung, the
scheduler's prefix-sharing credits, the serve admission ladder, and the
overload frontier's dominance check."""

from __future__ import annotations

import pytest

from repro.core.budget import BudgetLedger, LedgerBook
from repro.llm.pricing import (
    PRICES_PER_1K_TOKENS,
    UnknownModelError,
    cache_discount_usd,
    cost_usd,
    cost_usd_with_cache,
)
from repro.llm.reliability import SimulatedClock
from repro.llm.simulated import SimulatedLLM, parse_prompt
from repro.mqo.compression import PromptCompressor
from repro.mqo.prefix_sharing import shared_prefix_tokens
from repro.prompts.builder import PromptBuilder
from repro.runtime.scheduler import QueryScheduler
from repro.runtime.serve import (
    ADMISSION_DECISIONS,
    AdmissionPolicy,
    ServeRequest,
    ServingLayer,
    TenantSpec,
    synthetic_stream,
)


# ------------------------------------------------------------------ pricing


class TestCachePricing:
    def test_cached_rate_defaults_to_half_input(self):
        from repro.llm.pricing import ModelPrice

        assert ModelPrice(0.4, 0.8).cached_rate == pytest.approx(0.2)
        assert ModelPrice(0.4, 0.8, cached_input_per_1k=0.1).cached_rate == 0.1

    def test_discount_is_rate_difference(self):
        price = PRICES_PER_1K_TOKENS["gpt-3.5"]
        expected = 1000 / 1000.0 * (price.input_per_1k - price.cached_rate)
        assert cache_discount_usd("gpt-3.5", 1000) == pytest.approx(expected)

    def test_cost_with_cache_equals_gross_minus_discount(self):
        gross = cost_usd("gpt-4", 2000, 100)
        discount = cache_discount_usd("gpt-4", 500)
        assert cost_usd_with_cache("gpt-4", 2000, 100, cached_prompt_tokens=500) == (
            pytest.approx(gross - discount)
        )

    def test_zero_cached_tokens_changes_nothing(self):
        assert cost_usd_with_cache("gpt-3.5", 1234, 56) == cost_usd("gpt-3.5", 1234, 56)

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            cache_discount_usd("gpt-3.5", -1)
        with pytest.raises(ValueError, match="exceeds"):
            cost_usd_with_cache("gpt-3.5", 100, cached_prompt_tokens=101)
        with pytest.raises(UnknownModelError):
            cache_discount_usd("nonesuch", 10)


# ------------------------------------------------------------------ ledgers


class TestSharedCredits:
    def test_credit_keeps_gross_spend_and_nets_enforcement(self):
        ledger = BudgetLedger(budget=1000)
        ledger.charge(900)
        assert ledger.would_exceed(200)
        ledger.credit_shared(300, usd=0.01)
        # Gross stays put; the paid net is what enforcement sees.
        assert ledger.spent == 900
        assert ledger.shared_tokens == 300
        assert ledger.paid_tokens == 600
        assert not ledger.would_exceed(200)
        assert ledger.remaining == pytest.approx(400)
        assert ledger.paid_usd == pytest.approx(-0.01)

    def test_credit_validation(self):
        ledger = BudgetLedger()
        with pytest.raises(ValueError):
            ledger.credit_shared(-1)
        with pytest.raises(ValueError):
            ledger.credit_shared(1, usd=-0.5)

    def test_book_credits_tenant_and_global(self):
        book = LedgerBook(
            {"a": BudgetLedger(), "b": BudgetLedger()},
            global_ledger=BudgetLedger(),
        )
        book.charge("a", 500)
        book.credit_shared("a", 120, usd=0.002)
        assert book.ledger("a").shared_tokens == 120
        assert book.ledger("b").shared_tokens == 0
        assert book.global_ledger.shared_tokens == 120
        # The book-level total sums tenants (the global ledger mirrors it).
        assert book.shared_tokens == 120

    def test_snapshot_still_reports_gross(self):
        book = LedgerBook({"a": BudgetLedger()})
        book.charge("a", 100, usd=0.5)
        before = book.snapshot()
        book.credit_shared("a", 40, usd=0.1)
        assert book.snapshot() == before, "credits must not disturb gross state"


# --------------------------------------------------------- shared-first layout


class TestSharedFirstLayout:
    @pytest.fixture()
    def engines(self, tiny_graph, tiny_split, tiny_tag, make_tiny_engine):
        from repro.runtime.engine import MultiQueryEngine
        from repro.selection.registry import make_selector

        def build(shared_first: bool) -> "MultiQueryEngine":
            return MultiQueryEngine(
                graph=tiny_graph,
                llm=SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5),
                selector=make_selector("1-hop"),
                builder=PromptBuilder(
                    tiny_graph.class_names,
                    "paper",
                    "citation",
                    "Abstract",
                    shared_first=shared_first,
                ),
                labeled=tiny_split.labeled,
                max_neighbors=4,
                seed=9,
            )

        return build(False), build(True)

    def test_layouts_parse_identically(self, engines, tiny_split):
        default, shared = engines
        for node in (int(v) for v in tiny_split.queries[:6]):
            a = parse_prompt(default.build_prompt(node, include_neighbors=True)[0])
            b = parse_prompt(shared.build_prompt(node, include_neighbors=True)[0])
            assert a == b, f"layouts parse differently for node {node}"

    def test_layouts_predict_identically(self, engines, tiny_split):
        default, shared = engines
        queries = tiny_split.queries[:8]
        a = default.run(queries)
        b = shared.run(queries)
        assert [r.predicted_label for r in a.records] == [
            r.predicted_label for r in b.records
        ]

    def test_shared_first_front_loads_the_common_prefix(self, engines, tiny_split):
        default, shared = engines
        nodes = [int(v) for v in tiny_split.queries[:2]]
        tok = shared.llm.tokenizer
        d = [default.build_prompt(n, include_neighbors=True)[0] for n in nodes]
        s = [shared.build_prompt(n, include_neighbors=True)[0] for n in nodes]
        assert shared_prefix_tokens(s[0], s[1], tokenizer=tok) > shared_prefix_tokens(
            d[0], d[1], tokenizer=tok
        )


# -------------------------------------------------------- engine compressed rung


class TestEngineCompressedRung:
    def test_compressed_run_shrinks_tokens_and_stamps_records(
        self, make_tiny_engine, tiny_split
    ):
        queries = tiny_split.queries[:10]
        nodes = frozenset(int(v) for v in queries)
        base = make_tiny_engine().run(queries)
        engine = make_tiny_engine(compressor=PromptCompressor(target_ratio=0.5, seed=3))
        result = engine.run(queries, compressed=nodes)
        assert result.num_compressed > 0
        assert result.prompt_tokens < base.prompt_tokens
        for record in result.records:
            if record.compressed:
                assert record.outcome == "degraded_compressed"

    def test_preview_matches_execution_without_side_effects(
        self, make_tiny_engine, tiny_split
    ):
        engine = make_tiny_engine(compressor=PromptCompressor(target_ratio=0.5, seed=3))
        node = int(tiny_split.queries[0])
        before = engine.llm.usage.num_queries
        preview = engine.preview_prompt(node, include_neighbors=True, compress=True)
        assert engine.llm.usage.num_queries == before, "preview must not call the LLM"
        record = engine.execute_query(node, include_neighbors=True, compress=True)
        assert record.prompt_tokens == engine.llm.tokenizer.count(preview)

    def test_pruned_wins_over_compressed(self, make_tiny_engine, tiny_split):
        queries = tiny_split.queries[:6]
        nodes = frozenset(int(v) for v in queries)
        engine = make_tiny_engine(compressor=PromptCompressor(target_ratio=0.5))
        result = engine.run(queries, pruned=nodes, compressed=nodes)
        assert result.num_compressed == 0
        assert all(not r.compressed for r in result.records)


# ----------------------------------------------------- scheduler prefix credits


class TestSchedulerPrefixCredits:
    def test_plan_credits_engine_ledger_with_gross_unchanged(
        self, tiny_graph, tiny_split, tiny_tag
    ):
        from repro.runtime.engine import MultiQueryEngine
        from repro.selection.registry import make_selector

        def run(prefix_sharing: bool):
            scheduler = QueryScheduler(
                max_batch_size=4, prefix_sharing=prefix_sharing
            )
            engine = MultiQueryEngine(
                graph=tiny_graph,
                llm=SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5),
                selector=make_selector("1-hop"),
                builder=PromptBuilder(
                    tiny_graph.class_names,
                    "paper",
                    "citation",
                    "Abstract",
                    shared_first=True,
                ),
                labeled=tiny_split.labeled,
                max_neighbors=4,
                seed=9,
                scheduler=scheduler,
            )
            engine.ledger = BudgetLedger()
            engine.run(tiny_split.queries[:12])
            return engine, scheduler

        plain_engine, _ = run(prefix_sharing=False)
        shared_engine, scheduler = run(prefix_sharing=True)
        assert scheduler.last_plan is not None
        report = scheduler.report
        assert report.shared_prompt_tokens > 0
        assert shared_engine.ledger.shared_tokens == report.shared_prompt_tokens
        # Gross accounting is untouched by planning.
        assert shared_engine.ledger.spent == plain_engine.ledger.spent
        assert shared_engine.ledger.charges == plain_engine.ledger.charges
        assert plain_engine.ledger.shared_tokens == 0

    def test_guard_waves_skip_planning(self, tiny_graph, tiny_split, tiny_tag):
        from repro.runtime.engine import MultiQueryEngine
        from repro.selection.registry import make_selector

        scheduler = QueryScheduler(max_batch_size=4, prefix_sharing=True)
        engine = MultiQueryEngine(
            graph=tiny_graph,
            llm=SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5),
            selector=make_selector("1-hop"),
            builder=PromptBuilder(tiny_graph.class_names, "paper", "citation", "Abstract"),
            labeled=tiny_split.labeled,
            max_neighbors=4,
            seed=9,
            scheduler=scheduler,
        )
        engine.ledger = BudgetLedger(budget=1e9)
        engine.run_with_budget_guard(tiny_split.queries[:8])
        assert scheduler.last_plan is None
        assert scheduler.report.shared_prompt_tokens == 0


# ------------------------------------------------------------- serve admission


class TestServeCompressionRung:
    TENANTS = [TenantSpec("solo", max_queue_depth=64)]

    def test_admitted_compress_is_a_known_decision(self):
        assert "admitted_compress" in ADMISSION_DECISIONS

    def test_policy_orders_watermarks(self):
        with pytest.raises(ValueError, match="compress_watermark"):
            AdmissionPolicy(compress_watermark=8, degrade_watermark=4)
        with pytest.raises(ValueError, match="compress_watermark"):
            AdmissionPolicy(compress_watermark=9, shed_watermark=6)
        AdmissionPolicy(compress_watermark=2, degrade_watermark=4, shed_watermark=6)
        AdmissionPolicy(compress_watermark=3)

    def test_admission_pins_climb_the_ladder(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine(clock=SimulatedClock())
        layer = ServingLayer(
            engine,
            self.TENANTS,
            policy=AdmissionPolicy(compress_watermark=1, degrade_watermark=3),
        )
        node = int(tiny_split.queries[0])
        for _ in range(4):
            assert layer.admit(ServeRequest("solo", node)) is None
        pins = [pin for _, _, pin in layer._tenants["solo"].queue]
        assert pins == ["full", "compress", "compress", "degrade"]

    def _replay(self, make_tiny_engine, tiny_split, compressor):
        engine = make_tiny_engine(
            clock=SimulatedClock(), compressor=compressor
        )
        layer = ServingLayer(
            engine,
            [TenantSpec("solo", max_queue_depth=64)],
            policy=AdmissionPolicy(compress_watermark=1, wave_quota=2),
        )
        stream = synthetic_stream(self.TENANTS, tiny_split.queries, 12, seed=1)
        return layer.replay(stream)

    def test_compress_pin_without_compressor_falls_back_to_full(
        self, make_tiny_engine, tiny_split
    ):
        report = self._replay(make_tiny_engine, tiny_split, compressor=None)
        tiers = report.tier_counts
        assert "degraded_compressed" not in tiers
        assert tiers.get("ok", 0) == report.num_requests

    def test_compress_pin_with_compressor_serves_compressed(
        self, make_tiny_engine, tiny_split
    ):
        report = self._replay(
            make_tiny_engine, tiny_split, compressor=PromptCompressor(target_ratio=0.5)
        )
        assert report.tier_counts.get("degraded_compressed", 0) > 0


# ------------------------------------------------------------ overload frontier


class TestFrontierDominance:
    @staticmethod
    def _cell(multiplier, goodput, p99, shared=0):
        from repro.experiments.overload import OverloadCell

        return OverloadCell(
            multiplier=multiplier,
            offered=100,
            goodput=goodput,
            served_full=goodput,
            degraded=0,
            rejected=0,
            tier_counts={},
            p50_seconds=p99 / 2,
            p99_seconds=p99,
            total_tokens=1000,
            budget_utilization=0.5,
            shared_tokens=shared,
        )

    def _frontier(self, classic_cells, mqo_cells):
        from repro.experiments.overload import FrontierResult, OverloadResult

        return FrontierResult(
            classic=OverloadResult("cora", 48, classic_cells),
            mqo=OverloadResult("cora", 48, mqo_cells),
        )

    def test_dominates_requires_no_worse_everywhere_and_better_somewhere(self):
        classic = [self._cell(1.0, 50, 10.0), self._cell(2.0, 60, 20.0)]
        better = [self._cell(1.0, 50, 10.0), self._cell(2.0, 70, 18.0, shared=40)]
        assert self._frontier(classic, better).dominates()

    def test_equal_frontier_does_not_dominate(self):
        classic = [self._cell(1.0, 50, 10.0)]
        assert not self._frontier(classic, list(classic)).dominates()

    def test_any_regression_fails_dominance(self):
        classic = [self._cell(1.0, 50, 10.0), self._cell(2.0, 60, 20.0)]
        worse_goodput = [self._cell(1.0, 49, 9.0), self._cell(2.0, 70, 18.0)]
        worse_p99 = [self._cell(1.0, 55, 10.0), self._cell(2.0, 70, 21.0)]
        assert not self._frontier(classic, worse_goodput).dominates()
        assert not self._frontier(classic, worse_p99).dominates()

    def test_format_frontier_renders_verdict(self):
        from repro.experiments.overload import format_frontier

        classic = [self._cell(1.0, 50, 10.0)]
        mqo = [self._cell(1.0, 60, 9.0, shared=25)]
        text = format_frontier(self._frontier(classic, mqo))
        assert "dominates" in text
        assert "25" in text
