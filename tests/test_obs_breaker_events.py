"""Property test: breaker transition events faithfully mirror internal state.

For any randomized script of successes, failures, clock advances and call
admissions, the ``on_breaker_transition`` events an observer receives must
(1) chain — each event's ``old`` state is the previous event's ``new`` state,
starting from ``closed``; (2) follow only legal edges of the state machine;
(3) carry non-decreasing clock timestamps; and (4) replay to exactly the
state the breaker itself reports at every step.  Rejection events must match
the breaker's rejection counter one-for-one.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.reliability import CircuitBreaker, SimulatedClock
from repro.obs.hooks import RunObserver

LEGAL_EDGES = {
    ("closed", "open"),
    ("open", "half_open"),
    ("half_open", "open"),
    ("half_open", "closed"),
}

OPS = st.lists(
    st.sampled_from(["success", "failure", "advance", "allow"]),
    min_size=1,
    max_size=80,
)


class RecordingObserver(RunObserver):
    def __init__(self):
        self.transitions: list[tuple[str, str, float]] = []
        self.rejections = 0

    def on_breaker_transition(self, old: str, new: str, at: float) -> None:
        self.transitions.append((old, new, at))

    def on_breaker_rejection(self) -> None:
        self.rejections += 1


def replayed_state(transitions: list[tuple[str, str, float]]) -> str:
    """The state an external consumer reconstructs from the event stream."""
    return transitions[-1][1] if transitions else "closed"


@given(ops=OPS)
@settings(max_examples=60, deadline=None)
def test_transition_events_match_internal_state(ops):
    clock = SimulatedClock()
    observer = RecordingObserver()
    breaker = CircuitBreaker(
        failure_threshold=3,
        recovery_seconds=5.0,
        half_open_successes=2,
        clock=clock,
        observer=observer,
    )
    for op in ops:
        if op == "success":
            breaker.record_success()
        elif op == "failure":
            breaker.record_failure()
        elif op == "advance":
            clock.advance(2.0)
        else:
            breaker.allow()
        # Reading .state may itself emit the elapsed open → half_open event;
        # after it, the event stream must replay to exactly this state.
        assert breaker.state == replayed_state(observer.transitions)

    for old, new, _ in observer.transitions:
        assert (old, new) in LEGAL_EDGES
    for (_, prev_new, prev_at), (next_old, _, next_at) in zip(
        observer.transitions, observer.transitions[1:]
    ):
        assert next_old == prev_new  # events chain with no gaps
        assert next_at >= prev_at  # stamped on a monotonic clock

    assert observer.rejections == breaker.rejected_calls
    opens = sum(1 for _, new, _ in observer.transitions if new == "open")
    assert opens == breaker.times_opened


@given(ops=OPS)
@settings(max_examples=20, deadline=None)
def test_unobserved_breaker_behaves_identically(ops):
    """The observer is pure telemetry: state evolution is unchanged by it."""

    def run(observer):
        clock = SimulatedClock()
        breaker = CircuitBreaker(
            failure_threshold=3,
            recovery_seconds=5.0,
            half_open_successes=2,
            clock=clock,
            observer=observer,
        )
        states = []
        for op in ops:
            if op == "success":
                breaker.record_success()
            elif op == "failure":
                breaker.record_failure()
            elif op == "advance":
                clock.advance(2.0)
            else:
                breaker.allow()
            states.append(breaker.state)
        return states, breaker.times_opened, breaker.rejected_calls

    assert run(RecordingObserver()) == run(None)
