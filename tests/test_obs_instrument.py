"""Integration tests: instrumentation wired through the execution stack.

The contracts under test are the observability subsystem's core promises:

* an unobserved engine (the default) produces byte-identical records to an
  instrumented one — telemetry never perturbs execution;
* two same-seed instrumented runs emit identical trace JSONL modulo the
  run id;
* registry totals agree exactly with the run's own aggregates;
* a checkpoint-resumed run reports every cached record as a ``replayed``
  span with zero paid tokens.
"""

from __future__ import annotations

import pytest

from repro.core.boosting import QueryBoostingStrategy
from repro.io.runs import RunCheckpointer
from repro.llm.caching import CachingLLM
from repro.llm.reliability import (
    FlakyLLM,
    SimulatedClock,
    TransientLLMError,
    resilient,
)
from repro.llm.simulated import SimulatedLLM
from repro.obs import Instrumentation, instrument_stack, validate_trace_lines
from repro.obs.summary import outcome_breakdown, render_trace_summary

NUM_QUERIES = 12


@pytest.fixture()
def queries(tiny_split):
    return tiny_split.queries[:NUM_QUERIES]


def make_instr(run_id: str = "test-run", clock=None) -> Instrumentation:
    return Instrumentation(
        run_id=run_id,
        clock=clock,
        labels={"dataset": "tiny", "method": "1-hop", "strategy": "none", "model": "gpt-3.5"},
    )


class TestNonPerturbation:
    def test_observed_run_matches_unobserved(self, make_tiny_engine, queries):
        plain = make_tiny_engine().run(queries)
        instr = make_instr()
        observed = make_tiny_engine(observer=instr).run(queries)
        assert observed.records == plain.records

    def test_observed_boosting_matches_unobserved(self, make_tiny_engine, queries):
        plain = QueryBoostingStrategy().execute(make_tiny_engine(), queries)
        instr = make_instr()
        observed = QueryBoostingStrategy().execute(
            make_tiny_engine(observer=instr), queries
        )
        assert observed.run.records == plain.run.records
        assert observed.rounds == plain.rounds


class TestDeterminism:
    def test_same_seed_runs_emit_identical_jsonl_modulo_run_id(
        self, make_tiny_engine, queries
    ):
        jsonl = {}
        for run_id in ("run-aaa", "run-bbb"):
            instr = make_instr(run_id)
            QueryBoostingStrategy().execute(make_tiny_engine(observer=instr), queries)
            jsonl[run_id] = instr.tracer.to_jsonl()
        assert jsonl["run-aaa"].replace("run-aaa", "run-bbb") == jsonl["run-bbb"]

    def test_emitted_trace_validates_against_schema(self, make_tiny_engine, queries):
        instr = make_instr()
        make_tiny_engine(observer=instr).run(queries)
        stats = validate_trace_lines(instr.trace_lines())
        assert stats["num_spans"] > NUM_QUERIES  # queries plus their children
        assert stats["has_metrics"] is True


class TestRegistryAgreesWithRun:
    def test_token_and_query_totals(self, make_tiny_engine, queries):
        instr = make_instr()
        run = make_tiny_engine(observer=instr).run(queries)
        reg = instr.registry
        assert reg.total("repro_queries_total") == len(run.records)
        assert reg.total("repro_prompt_tokens_total") == sum(
            r.prompt_tokens for r in run.records
        )
        assert reg.total("repro_completion_tokens_total") == sum(
            r.completion_tokens for r in run.records
        )
        assert reg.total("repro_query_tokens") == len(run.records)
        assert reg.value("repro_runs_total", **instr.labels) == 1.0
        for outcome, count in run.outcome_counts.items():
            assert reg.total("repro_queries_total", outcome=outcome) == count

    def test_boosting_round_metrics(self, make_tiny_engine, queries):
        instr = make_instr()
        boosted = QueryBoostingStrategy().execute(
            make_tiny_engine(observer=instr), queries
        )
        reg = instr.registry
        assert reg.total("repro_boosting_rounds_total") == len(boosted.rounds)
        assert reg.total("repro_boosting_round_size") == len(boosted.rounds)
        round_spans = [s for s in instr.tracer.spans if s.name == "round"]
        assert [s.attributes["round_index"] for s in round_spans] == list(
            range(len(boosted.rounds))
        )
        # Every query span is parented by its round's span.
        query_spans = [s for s in instr.tracer.spans if s.name == "query"]
        round_ids = {s.span_id for s in round_spans}
        assert len(query_spans) == len(boosted.run.records)
        assert all(s.parent_id in round_ids for s in query_spans)

    def test_query_spans_carry_outcome_and_tokens(self, make_tiny_engine, queries):
        instr = make_instr()
        run = make_tiny_engine(observer=instr).run(queries)
        query_spans = [s for s in instr.tracer.spans if s.name == "query"]
        assert [s.attributes["prompt_tokens"] for s in query_spans] == [
            r.prompt_tokens for r in run.records
        ]
        assert [s.attributes["outcome"] for s in query_spans] == [
            r.outcome for r in run.records
        ]
        # Each query span wraps the full lifecycle as children.
        children = {s.parent_id for s in instr.tracer.spans if s.parent_id}
        assert all(s.span_id in children for s in query_spans)


class TestSummary:
    def test_summary_renders_run_breakdown(self, make_tiny_engine, queries):
        instr = make_instr()
        run = QueryBoostingStrategy().execute(
            make_tiny_engine(observer=instr), queries
        ).run
        text = render_trace_summary(instr.trace_lines())
        assert "run test-run" in text
        assert f"{len(run.records)} queries" in text
        assert "Boosting rounds" in text

    def test_outcome_breakdown_skips_recordless_query_spans(self):
        """A deferred query's failed span (no outcome attribute) is not a
        record; the breakdown must count records only."""
        instr = make_instr()
        with pytest.raises(RuntimeError):
            with instr.span("query", node=1):
                raise RuntimeError("llm gave up; node deferred")
        with instr.span("query", node=1, round_index=1) as span:
            span.set(outcome="ok", prompt_tokens=10, completion_tokens=2)
        tiers = outcome_breakdown(instr.trace_lines())
        assert tiers == [("ok", 1, 10, 2, None)]


class TestLatency:
    def test_latency_stamped_from_shared_clock(self, make_tiny_engine, tiny_tag, queries):
        clock = SimulatedClock()
        stack = resilient(
            SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5),
            advance_per_call=1.0,
            clock=clock,
        )
        instr = make_instr(clock=clock)
        run = make_tiny_engine(llm=stack, observer=instr, clock=clock).run(queries)
        # advance_per_call=1.0 and no retries: exactly 1 simulated second each.
        assert [r.latency_seconds for r in run.records] == [1.0] * len(run.records)
        assert run.total_latency_seconds == float(len(run.records))
        assert instr.registry.total("repro_query_latency_seconds") == len(run.records)

    def test_no_clock_leaves_latency_unset(self, make_tiny_engine, queries):
        run = make_tiny_engine(observer=make_instr()).run(queries)
        assert all(r.latency_seconds is None for r in run.records)
        assert run.total_latency_seconds is None


class TestCheckpointReplay:
    def test_resumed_run_reports_replayed_spans_with_zero_paid_tokens(
        self, make_tiny_engine, queries, tmp_path
    ):
        path = tmp_path / "checkpoint.json"
        first = make_tiny_engine().run(queries, checkpointer=RunCheckpointer(path))

        instr = make_instr()
        checkpointer = RunCheckpointer(path, observer=instr)
        resumed = make_tiny_engine(observer=instr).run(queries, checkpointer=checkpointer)
        assert resumed.records == first.records

        query_spans = [s for s in instr.tracer.spans if s.name == "query"]
        assert len(query_spans) == len(queries)
        assert all(s.attributes["replayed"] is True for s in query_spans)
        assert all(s.attributes["prompt_tokens"] == 0 for s in query_spans)

        reg = instr.registry
        assert reg.total("repro_queries_total", outcome="replayed") == len(queries)
        assert reg.total("repro_queries_total") == len(queries)
        # Replays never charge token or cost series.
        assert reg.total("repro_prompt_tokens_total") == 0.0
        assert reg.total("repro_completion_tokens_total") == 0.0
        assert reg.total("repro_cost_usd_total") == 0.0
        assert reg.total("repro_checkpoint_resumed_records_total") == len(queries)
        assert [s.name for s in instr.tracer.spans[:1]] == ["checkpoint_loaded"]

    def test_checkpoint_flushes_counted(self, make_tiny_engine, queries, tmp_path):
        instr = make_instr()
        checkpointer = RunCheckpointer(tmp_path / "ck.json", observer=instr)
        make_tiny_engine(observer=instr).run(queries, checkpointer=checkpointer)
        # flush_every=1: one flush per record plus the mark_complete flush.
        assert instr.registry.total("repro_checkpoint_flushes_total") == len(queries) + 1


class TestStackInstrumentation:
    def test_instrument_stack_reaches_every_layer(self, tiny_tag):
        instr = make_instr()
        flaky = FlakyLLM(
            SimulatedLLM(tiny_tag.vocabulary, seed=5), failure_rate=0.5, seed=1
        )
        stack = resilient(flaky, max_attempts=3, seed=2)
        cached = CachingLLM(stack)
        instrument_stack(cached, instr)
        assert cached.observer is instr
        assert stack.breaker.observer is instr
        assert stack.inner.observer is instr  # the retrier
        assert flaky.observer is instr

    def test_retry_and_injected_failure_metrics(self, tiny_tag, tiny_builder):
        instr = make_instr()
        flaky = FlakyLLM(
            SimulatedLLM(tiny_tag.vocabulary, seed=5),
            failure_rate=0.99,
            seed=2,  # with this stream all three attempts fail
            charge_failed_prompts=True,
        )
        stack = resilient(flaky, max_attempts=3, deadline_seconds=None, seed=2)
        instrument_stack(stack, instr)
        prompt = tiny_builder.zero_shot("t", "abc def")
        with pytest.raises(TransientLLMError):
            stack.complete(prompt)
        reg = instr.registry
        assert reg.total("repro_injected_failures_total") == 3.0
        assert reg.total("repro_retries_total") == 2.0
        assert reg.total("repro_wasted_prompt_tokens_total") == flaky.wasted_prompt_tokens
        assert reg.total("repro_retry_wait_seconds_total") == pytest.approx(
            stack.inner.simulated_wait_seconds
        )
        retry_events = [s for s in instr.tracer.spans if s.name == "retry"]
        assert [s.attributes["attempt"] for s in retry_events] == [0, 1]

    def test_cache_metrics(self, tiny_tag, tiny_builder):
        instr = make_instr()
        cached = CachingLLM(
            SimulatedLLM(tiny_tag.vocabulary, seed=5), max_entries=1, observer=instr
        )
        first = tiny_builder.zero_shot("t0", "abc def")
        second = tiny_builder.zero_shot("t1", "abc def")
        cached.complete(first)
        cached.complete(first)
        cached.complete(second)  # evicts `first`
        reg = instr.registry
        assert reg.total("repro_cache_hits_total") == cached.hits == 1
        assert reg.total("repro_cache_misses_total") == cached.misses == 2
        assert reg.total("repro_cache_evictions_total") == cached.evictions == 1
