"""Tests for the metrics registry: instruments, queries, exposition."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    TOKEN_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_is_monotonic(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3.0

    def test_histogram_buckets(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 3.0, 100.0):
            h.observe(value)
        # Per-bucket counts: (≤1, ≤2, ≤4, +Inf); cumulative at exposition.
        assert h.bucket_counts == [2, 0, 1, 1]
        assert h.cumulative() == [(1.0, 2), (2.0, 2), (4.0, 3), (math.inf, 4)]
        assert h.count == 4
        assert h.sum == pytest.approx(104.5)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))

    def test_histogram_rejects_nan(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0,)).observe(float("nan"))

    def test_default_bucket_constants_are_increasing(self):
        for bounds in (TOKEN_BUCKETS, LATENCY_BUCKETS):
            assert list(bounds) == sorted(bounds)


class TestRegistry:
    def test_get_or_create_returns_same_series(self):
        reg = MetricsRegistry()
        a = reg.counter("requests_total", outcome="ok")
        b = reg.counter("requests_total", outcome="ok")
        assert a is b
        a.inc()
        assert reg.value("requests_total", outcome="ok") == 1.0

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.counter("x_total", a="1", b="2").inc()
        assert reg.value("x_total", b="2", a="1") == 1.0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("thing")

    def test_histogram_bucket_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="other buckets"):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("ok_name", **{"bad-label": "x"})

    def test_total_filters_by_labels(self):
        reg = MetricsRegistry()
        reg.counter("queries_total", outcome="ok").inc(3)
        reg.counter("queries_total", outcome="abstained").inc(1)
        assert reg.total("queries_total") == 4.0
        assert reg.total("queries_total", outcome="ok") == 3.0
        assert reg.total("queries_total", outcome="missing") == 0.0

    def test_total_of_unknown_metric_is_zero(self):
        assert MetricsRegistry().total("never_registered") == 0.0

    def test_total_over_histograms_sums_counts(self):
        reg = MetricsRegistry()
        h = reg.histogram("tokens", buckets=(10.0,), outcome="ok")
        h.observe(3)
        h.observe(30)
        assert reg.total("tokens", outcome="ok") == 2.0

    def test_series_lists_every_label_set(self):
        reg = MetricsRegistry()
        reg.counter("q_total", outcome="ok").inc(2)
        reg.counter("q_total", outcome="retried").inc(1)
        series = reg.series("q_total")
        assert series[(("outcome", "ok"),)] == 2.0
        assert series[(("outcome", "retried"),)] == 1.0
        assert reg.series("unknown") == {}

    def test_snapshot_round_trips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "help text", outcome="ok").inc(2)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snapshot = json.loads(reg.to_json())
        assert snapshot["families"]["c_total"]["kind"] == "counter"
        assert snapshot["families"]["c_total"]["help"] == "help text"
        (c_series,) = snapshot["families"]["c_total"]["series"]
        assert c_series == {"labels": {"outcome": "ok"}, "value": 2.0}
        (h_series,) = snapshot["families"]["h"]["series"]
        assert h_series["count"] == 1
        assert h_series["buckets"][-1] == {"le": "+Inf", "count": 1}

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("repro_queries_total", "Queries", outcome="ok").inc(3)
        reg.gauge("repro_breaker_state").set(2)
        reg.histogram("repro_query_tokens", buckets=(10.0, 20.0)).observe(15)
        text = reg.to_prometheus()
        assert "# HELP repro_queries_total Queries" in text
        assert "# TYPE repro_queries_total counter" in text
        assert 'repro_queries_total{outcome="ok"} 3' in text
        assert "repro_breaker_state 2" in text
        assert 'repro_query_tokens_bucket{le="10"} 0' in text
        assert 'repro_query_tokens_bucket{le="20"} 1' in text
        assert 'repro_query_tokens_bucket{le="+Inf"} 1' in text
        assert "repro_query_tokens_sum 15" in text
        assert "repro_query_tokens_count 1" in text
        assert text.endswith("\n")

    def test_prometheus_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.counter("c_total", model='a"b\\c\nd').inc()
        line = next(
            x for x in reg.to_prometheus().splitlines() if x.startswith("c_total{")
        )
        assert line == 'c_total{model="a\\"b\\\\c\\nd"} 1'

    def test_prometheus_escapes_help_text(self):
        # Exposition-format 0.0.4: HELP text escapes backslash and line feed
        # only — a raw newline would truncate the comment and leave the rest
        # of the help string as an unparseable sample line.
        reg = MetricsRegistry()
        reg.counter("c_total", "tokens\nper C:\\path request").inc()
        lines = reg.to_prometheus().splitlines()
        help_line = next(x for x in lines if x.startswith("# HELP c_total"))
        assert help_line == "# HELP c_total tokens\\nper C:\\\\path request"
        # Exactly one physical line carries the help text.
        assert sum(1 for x in lines if x.startswith("# HELP")) == 1

    def test_prometheus_help_quotes_stay_literal(self):
        # HELP text is not quoted, so quotes must pass through unescaped
        # (escaping them would render literal backslashes in scrape UIs).
        reg = MetricsRegistry()
        reg.counter("c_total", 'rate of "good" answers').inc()
        text = reg.to_prometheus()
        assert '# HELP c_total rate of "good" answers' in text

    def test_prometheus_output_stays_machine_parseable_with_hostile_labels(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "h", tenant='line1\nline2"x\\y').inc(2)
        for line in reg.to_prometheus().splitlines():
            # No emitted physical line may be a bare continuation fragment:
            # every line is a comment or starts with the metric name.
            assert line.startswith("#") or line.startswith("c_total"), line
