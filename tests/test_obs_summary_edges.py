"""Edge cases for trace summaries (repro.obs.summary) and schema v2.

The summary renderer must degrade gracefully on the traces real runs can
legitimately produce: a run that died before any query, a single plain
wave, a fully degraded run that never reached the LLM, and v1 trace files
written before the format bump.
"""

from __future__ import annotations

import copy

import pytest

from repro.llm.reliability import SimulatedClock
from repro.obs.schema import (
    SUPPORTED_FORMAT_VERSIONS,
    TraceSchemaError,
    validate_trace_lines,
)
from repro.obs.summary import (
    cache_efficiency,
    outcome_breakdown,
    render_trace_summary,
    round_breakdown,
)
from repro.obs.tracing import TRACE_FORMAT_VERSION, SpanTracer


def empty_trace() -> list[dict]:
    return SpanTracer(run_id="empty", clock=SimulatedClock()).to_dicts()


def single_wave_trace() -> list[dict]:
    """One plain (unboosted) wave of three successful queries."""
    clock = SimulatedClock()
    tracer = SpanTracer(run_id="plain", clock=clock, labels={"dataset": "tiny"})
    for node in range(3):
        with tracer.span("query", node=node) as span:
            with tracer.span("llm_call", node=node):
                clock.advance(1.0)
            span.set(outcome="ok", prompt_tokens=50, completion_tokens=2)
    return tracer.to_dicts()


def degraded_only_trace() -> list[dict]:
    """Zero LLM calls: every query lands on the surrogate or abstains."""
    clock = SimulatedClock()
    tracer = SpanTracer(run_id="degraded", clock=clock)
    for node in range(4):
        with tracer.span("query", node=node) as span:
            name = "degrade_surrogate" if node % 2 else "abstain"
            with tracer.span(name, node=node):
                pass
            span.set(
                outcome="degraded_surrogate" if node % 2 else "abstained",
                prompt_tokens=0,
                completion_tokens=0,
            )
    return tracer.to_dicts()


def as_v1(lines: list[dict]) -> list[dict]:
    lines = copy.deepcopy(lines)
    lines[0]["format_version"] = 1
    return lines


class TestSummaryEdges:
    def test_empty_trace_renders(self):
        text = render_trace_summary(empty_trace())
        assert "no query spans in trace" in text
        assert outcome_breakdown(empty_trace()) == []
        assert round_breakdown(empty_trace()) == []
        assert cache_efficiency(empty_trace()) is None

    def test_single_wave_run_has_no_round_table(self):
        lines = single_wave_trace()
        text = render_trace_summary(lines)
        assert "Boosting rounds" not in text
        assert "3 queries" in text
        assert round_breakdown(lines) == []

    def test_zero_llm_call_run_summarizes_degradations(self):
        lines = degraded_only_trace()
        rows = {outcome: n for outcome, n, _, _, _ in outcome_breakdown(lines)}
        assert rows == {"degraded_surrogate": 2, "abstained": 2}
        text = render_trace_summary(lines)
        assert "0 paid tokens" in text

    def test_v1_trace_still_summarizes(self):
        text_v1 = render_trace_summary(as_v1(single_wave_trace()))
        text_v2 = render_trace_summary(single_wave_trace())
        assert text_v1 == text_v2  # format version never reaches the report


class TestSchemaVersions:
    def test_all_versions_up_to_current_supported(self):
        assert SUPPORTED_FORMAT_VERSIONS == tuple(
            range(1, TRACE_FORMAT_VERSION + 1)
        )
        assert TRACE_FORMAT_VERSION == 3

    def test_v2_trace_validates(self):
        validate_trace_lines(single_wave_trace())

    def test_v1_trace_validates_leniently(self):
        # v1 files predate the per-event attribute catalogue: spans missing
        # now-required attributes must still pass.
        lines = as_v1(single_wave_trace())
        for line in lines:
            if line.get("kind") == "span":
                line["attributes"].pop("node", None)
        validate_trace_lines(lines)

    def test_v2_enforces_required_attributes(self):
        lines = single_wave_trace()
        for line in lines:
            if line.get("name") == "llm_call":
                line["attributes"].pop("node")
        with pytest.raises(TraceSchemaError, match="llm_call.*node"):
            validate_trace_lines(lines)

    def test_v2_keeps_unknown_span_names_legal(self):
        clock = SimulatedClock()
        tracer = SpanTracer(run_id="open", clock=clock)
        with tracer.span("some_future_event", anything="goes"):
            pass
        validate_trace_lines(tracer.to_dicts())

    def test_unknown_version_rejected(self):
        lines = single_wave_trace()
        lines[0]["format_version"] = 99
        with pytest.raises(TraceSchemaError, match="format_version"):
            validate_trace_lines(lines)
