"""Tests for the span tracer and the trace-file schema validator."""

from __future__ import annotations

import pytest

from repro.llm.reliability import SimulatedClock
from repro.obs.schema import (
    TraceSchemaError,
    validate_trace_file,
    validate_trace_lines,
)
from repro.obs.schema import main as schema_main
from repro.obs.tracing import TRACE_FORMAT_VERSION, SpanTracer, read_trace


def make_trace(run_id: str = "t1") -> SpanTracer:
    clock = SimulatedClock()
    tracer = SpanTracer(run_id=run_id, clock=clock, labels={"dataset": "tiny"})
    with tracer.span("query", node=3):
        with tracer.span("llm_call", node=3):
            clock.advance(1.5)
            tracer.event("retry", attempt=0, wait_seconds=1.5)
    return tracer


class TestSpanTracer:
    def test_stack_parentage(self):
        tracer = make_trace()
        query, llm_call, retry = tracer.spans
        assert query.parent_id is None
        assert llm_call.parent_id == query.span_id
        assert retry.parent_id == llm_call.span_id

    def test_sequential_span_ids(self):
        tracer = make_trace()
        assert [s.span_id for s in tracer.spans] == ["s000001", "s000002", "s000003"]

    def test_clock_timestamps_and_durations(self):
        tracer = make_trace()
        query, llm_call, retry = tracer.spans
        assert (query.start, query.end) == (0.0, 1.5)
        assert llm_call.duration == 1.5
        assert retry.duration == 0.0 and retry.start == 1.5

    def test_no_clock_pins_timestamps_to_zero(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            pass
        assert tracer.spans[0].start == 0.0 and tracer.spans[0].end == 0.0

    def test_exception_marks_span_error_and_propagates(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("query"):
                raise RuntimeError("boom")
        span = tracer.spans[0]
        assert span.status == "error"
        assert span.attributes["error_type"] == "RuntimeError"
        assert span.end is not None
        assert tracer.current is None  # the stack unwound

    def test_current_tracks_innermost_open_span(self):
        tracer = SpanTracer()
        assert tracer.current is None
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                assert tracer.current is inner

    def test_set_attaches_attributes_after_start(self):
        tracer = SpanTracer()
        with tracer.span("query") as span:
            span.set(outcome="ok", prompt_tokens=12)
        assert tracer.spans[0].attributes == {"outcome": "ok", "prompt_tokens": 12}

    def test_jsonl_round_trip(self, tmp_path):
        tracer = make_trace()
        path = tracer.write_jsonl(tmp_path / "trace.jsonl")
        lines = read_trace(path)
        assert lines == tracer.to_dicts()
        header = lines[0]
        assert header["kind"] == "run"
        assert header["format_version"] == TRACE_FORMAT_VERSION
        assert header["num_spans"] == 3
        assert header["labels"] == {"dataset": "tiny"}

    def test_same_script_is_byte_identical_modulo_run_id(self):
        a, b = make_trace("aaa"), make_trace("bbb")
        assert a.to_jsonl().replace("aaa", "bbb") == b.to_jsonl()


class TestTraceSchema:
    def test_valid_trace_passes(self, tmp_path):
        path = make_trace().write_jsonl(tmp_path / "trace.jsonl")
        stats = validate_trace_file(path)
        assert stats == {
            "run_id": "t1",
            "num_spans": 3,
            "has_metrics": False,
            "labels": {"dataset": "tiny"},
        }

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceSchemaError, match="empty"):
            validate_trace_lines([])

    def test_header_must_come_first(self):
        lines = make_trace().to_dicts()
        with pytest.raises(TraceSchemaError, match="run header"):
            validate_trace_lines(lines[1:])

    def test_unknown_version_rejected(self):
        lines = make_trace().to_dicts()
        lines[0]["format_version"] = 99
        with pytest.raises(TraceSchemaError, match="format_version"):
            validate_trace_lines(lines)

    def test_mismatched_run_id_rejected(self):
        lines = make_trace().to_dicts()
        lines[2]["run_id"] = "other"
        with pytest.raises(TraceSchemaError, match="run_id"):
            validate_trace_lines(lines)

    def test_parent_must_reference_earlier_span(self):
        lines = make_trace().to_dicts()
        lines[1]["parent_id"] = "s999999"
        with pytest.raises(TraceSchemaError, match="earlier span"):
            validate_trace_lines(lines)

    def test_duplicate_span_id_rejected(self):
        lines = make_trace().to_dicts()
        lines[2]["span_id"] = lines[1]["span_id"]
        lines[2]["parent_id"] = None
        with pytest.raises(TraceSchemaError, match="duplicate span_id"):
            validate_trace_lines(lines)

    def test_duration_must_match_endpoints(self):
        lines = make_trace().to_dicts()
        lines[1]["duration"] = 42.0
        with pytest.raises(TraceSchemaError, match="duration"):
            validate_trace_lines(lines)

    def test_span_count_must_match_header(self):
        lines = make_trace().to_dicts()
        with pytest.raises(TraceSchemaError, match="num_spans"):
            validate_trace_lines(lines[:-1])

    def test_metrics_line_must_be_last(self):
        lines = make_trace().to_dicts()
        metrics = {"kind": "metrics", "run_id": "t1", "families": {}}
        assert validate_trace_lines(lines + [metrics])["has_metrics"] is True
        with pytest.raises(TraceSchemaError, match="last line"):
            validate_trace_lines(lines[:1] + [metrics] + lines[1:])

    def test_metrics_families_are_checked(self):
        lines = make_trace().to_dicts()
        metrics = {
            "kind": "metrics",
            "run_id": "t1",
            "families": {"x": {"kind": "nonsense", "series": []}},
        }
        with pytest.raises(TraceSchemaError, match="unknown kind"):
            validate_trace_lines(lines + [metrics])

    def test_cli_entry_point(self, tmp_path, capsys):
        path = make_trace().write_jsonl(tmp_path / "trace.jsonl")
        assert schema_main([str(path)]) == 0
        assert "OK: run t1" in capsys.readouterr().out

        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "span"}\n')
        assert schema_main([str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err

        assert schema_main([]) == 2
