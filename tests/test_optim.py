"""Tests for SGD and Adam optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.optim import SGD, Adam


def quadratic_grad(params):
    """Gradient of f(x) = ||x||^2 / 2 is x itself."""
    return [p.copy() for p in params]


class TestSGD:
    def test_descends_quadratic(self):
        opt = SGD(learning_rate=0.1)
        x = [np.array([10.0, -10.0])]
        for _ in range(200):
            opt.step(x, quadratic_grad(x))
        assert np.abs(x[0]).max() < 1e-3

    def test_momentum_accelerates(self):
        plain, momentum = [np.array([10.0])], [np.array([10.0])]
        opt_plain = SGD(learning_rate=0.01)
        opt_mom = SGD(learning_rate=0.01, momentum=0.9)
        for _ in range(50):
            opt_plain.step(plain, quadratic_grad(plain))
            opt_mom.step(momentum, quadratic_grad(momentum))
        assert abs(momentum[0][0]) < abs(plain[0][0])

    def test_updates_in_place(self):
        x = [np.ones(3)]
        ref = x[0]
        SGD(learning_rate=0.5).step(x, [np.ones(3)])
        assert ref is x[0]
        assert np.allclose(ref, 0.5)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0)
        with pytest.raises(ValueError):
            SGD(learning_rate=0.1, momentum=1.0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            SGD().step([np.ones(2)], [])


class TestAdam:
    def test_descends_quadratic(self):
        opt = Adam(learning_rate=0.1)
        x = [np.array([10.0, -10.0])]
        for _ in range(500):
            opt.step(x, quadratic_grad(x))
        assert np.abs(x[0]).max() < 1e-2

    def test_bias_correction_first_step(self):
        """First Adam step moves by ~learning_rate regardless of grad scale."""
        for scale in (1e-3, 1.0, 1e3):
            opt = Adam(learning_rate=0.1)
            x = [np.array([1.0])]
            opt.step(x, [np.array([scale])])
            assert 1.0 - x[0][0] == pytest.approx(0.1, rel=1e-3)

    def test_handles_multiple_params(self):
        opt = Adam(learning_rate=0.05)
        params = [np.array([5.0]), np.array([[1.0, -1.0]])]
        for _ in range(400):
            opt.step(params, quadratic_grad(params))
        assert all(np.abs(p).max() < 0.05 for p in params)

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(beta2=-0.1)
