"""Tests for the cost-accuracy Pareto extension."""

from __future__ import annotations

from repro.experiments.pareto import ParetoPoint, ParetoResult, format_pareto, run_pareto


class TestFrontier:
    def test_dominated_points_removed(self):
        result = ParetoResult(
            dataset="x",
            method="m",
            points=[
                ParetoPoint("a", 0.0, tokens=100, accuracy=70.0),
                ParetoPoint("b", 0.2, tokens=80, accuracy=71.0),   # dominates a
                ParetoPoint("c", 0.4, tokens=60, accuracy=65.0),
                ParetoPoint("d", 0.6, tokens=60, accuracy=64.0),   # dominated by c
            ],
        )
        frontier = result.frontier()
        assert [(p.strategy) for p in frontier] == ["c", "b"]

    def test_frontier_sorted_by_tokens(self):
        result = ParetoResult(
            dataset="x",
            method="m",
            points=[
                ParetoPoint("a", 0.0, tokens=300, accuracy=75.0),
                ParetoPoint("b", 0.5, tokens=100, accuracy=70.0),
            ],
        )
        frontier = result.frontier()
        assert [p.tokens for p in frontier] == [100, 300]


class TestRunPareto:
    def test_small_sweep(self):
        result = run_pareto(
            dataset="cora", method="1-hop", taus=(0.0, 0.5), num_queries=80, scale=0.15
        )
        assert len(result.points) == 4  # 2 taus x 2 strategies
        # Higher tau must not cost more tokens for the same strategy.
        prune_points = {p.tau: p for p in result.points if p.strategy == "prune"}
        assert prune_points[0.5].tokens <= prune_points[0.0].tokens
        out = format_pareto(result)
        assert "Pareto" in out and "prune+boost" in out
