"""Tests for shared-prefix MQO analysis."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mqo.prefix_sharing import (
    analyze_prefix_sharing,
    shared_prefix_tokens,
    sort_for_prefix_sharing,
)


class TestSharedPrefixTokens:
    def test_identical(self):
        assert shared_prefix_tokens("a b c", "a b c") == 3

    def test_partial(self):
        assert shared_prefix_tokens("a b c", "a b d") == 2

    def test_disjoint(self):
        assert shared_prefix_tokens("x y", "a b") == 0

    def test_prefix_containment(self):
        assert shared_prefix_tokens("a b", "a b c d") == 2

    def test_empty(self):
        assert shared_prefix_tokens("", "a") == 0

    @given(st.text(max_size=50), st.text(max_size=50))
    @settings(max_examples=50)
    def test_symmetric_and_bounded(self, a, b):
        from repro.text.tokenizer import Tokenizer

        s = shared_prefix_tokens(a, b)
        assert s == shared_prefix_tokens(b, a)
        t = Tokenizer()
        assert s <= min(t.count(a), t.count(b))


class TestSortForPrefixSharing:
    def test_groups_equal_prefixes(self):
        prompts = ["task B item 2", "task A item 1", "task B item 1", "task A item 2"]
        order = sort_for_prefix_sharing(prompts)
        ordered = [prompts[i] for i in order]
        assert ordered == sorted(prompts)

    def test_permutation(self):
        prompts = ["c", "a", "b"]
        assert sorted(sort_for_prefix_sharing(prompts)) == [0, 1, 2]


class TestAnalyze:
    def test_empty_batch(self):
        report = analyze_prefix_sharing([])
        assert report.total_tokens == 0 and report.savings_fraction == 0.0

    def test_identical_prompts_share_everything_after_first(self):
        report = analyze_prefix_sharing(["one two three"] * 4)
        assert report.total_tokens == 12
        assert report.shared_tokens == 9
        assert report.paid_tokens == 3

    def test_reordering_never_hurts(self):
        prompts = [f"shared prefix words variant {i % 3} tail {i}" for i in range(12)]
        unordered = analyze_prefix_sharing(prompts, reorder=False)
        ordered = analyze_prefix_sharing(prompts, reorder=True)
        assert ordered.shared_tokens >= unordered.shared_tokens
        assert ordered.total_tokens == unordered.total_tokens

    def test_savings_fraction(self):
        report = analyze_prefix_sharing(["a b"] * 2)
        assert report.savings_fraction == pytest.approx(0.5)

    def test_realistic_prompts_share_little_prefix(self):
        """Table III prompts lead with the target text, so prefix sharing is
        tiny — the structural reason the paper's black-box strategies are
        needed at all."""
        from repro.prompts.builder import PromptBuilder

        builder = PromptBuilder(["A", "B"])
        prompts = [builder.zero_shot(f"unique title {i}", f"unique abstract {i}") for i in range(10)]
        report = analyze_prefix_sharing(prompts)
        assert report.savings_fraction < 0.3
