"""Tests for preprocessing helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.preprocessing import one_hot, standardize


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2, 1]), num_classes=3)
        assert out.tolist() == [[1, 0, 0], [0, 0, 1], [0, 1, 0]]

    def test_empty(self):
        assert one_hot(np.array([], dtype=int), 3).shape == (0, 3)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), num_classes=3)


class TestStandardize:
    def test_train_becomes_standard(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5, 3, size=(200, 4))
        (scaled,) = standardize(x)
        assert np.allclose(scaled.mean(axis=0), 0, atol=1e-10)
        assert np.allclose(scaled.std(axis=0), 1, atol=1e-10)

    def test_others_use_train_statistics(self):
        train = np.array([[0.0], [2.0]])
        test = np.array([[1.0]])
        scaled_train, scaled_test = standardize(train, test)
        # mean 1, std 1 -> test value 1 maps to 0
        assert scaled_test[0, 0] == pytest.approx(0.0)

    def test_constant_columns_not_exploded(self):
        train = np.ones((10, 2))
        (scaled,) = standardize(train)
        assert np.isfinite(scaled).all()
        assert np.allclose(scaled, 0.0)
