"""Tests for the token pricing model."""

from __future__ import annotations

import pytest

from repro.llm.pricing import PRICES_PER_1K_TOKENS, UnknownModelError, cost_usd, known_models


class TestCost:
    def test_paper_example(self):
        """The paper's motivating number: 1,200 input tokens on GPT-3.5 ≈ $0.0006."""
        assert cost_usd("gpt-3.5", 1200) == pytest.approx(0.0006)

    def test_industrial_scale_example(self):
        """10M queries × 1,200 tokens ≈ $6,000 on GPT-3.5 (paper Sec. I)."""
        assert cost_usd("gpt-3.5", 1200 * 10_000_000) == pytest.approx(6000.0)

    def test_gpt4_is_60x_pricier_on_input(self):
        ratio = cost_usd("gpt-4", 1000) / cost_usd("gpt-3.5", 1000)
        assert ratio == pytest.approx(60.0)

    def test_output_tokens_priced_separately(self):
        in_only = cost_usd("gpt-3.5", 1000, 0)
        with_out = cost_usd("gpt-3.5", 1000, 1000)
        assert with_out == pytest.approx(in_only + PRICES_PER_1K_TOKENS["gpt-3.5"].output_per_1k)

    def test_case_insensitive(self):
        assert cost_usd("GPT-3.5", 1000) == cost_usd("gpt-3.5", 1000)

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            cost_usd("claude-9", 10)

    def test_unknown_model_error_names_the_known_models(self):
        with pytest.raises(UnknownModelError) as excinfo:
            cost_usd("claude-9", 10)
        message = str(excinfo.value)
        assert "claude-9" in message
        for name in known_models():
            assert name in message
        assert excinfo.value.model == "claude-9"

    def test_unknown_model_error_is_a_key_error(self):
        # Pre-existing callers catch KeyError; the richer error must still land.
        with pytest.raises(KeyError):
            cost_usd("claude-9", 10)

    def test_known_models_is_sorted_and_complete(self):
        assert known_models() == tuple(sorted(PRICES_PER_1K_TOKENS))

    def test_negative_tokens(self):
        with pytest.raises(ValueError):
            cost_usd("gpt-3.5", -1)

    def test_zero_cost_for_zero_tokens(self):
        assert cost_usd("gpt-4", 0, 0) == 0.0
