"""Tests for the per-model presets."""

from __future__ import annotations

import pytest

from repro.llm.profiles import MODEL_PROFILES, make_model
from repro.text.vocabulary import ClassVocabulary


@pytest.fixture(scope="module")
def vocab() -> ClassVocabulary:
    return ClassVocabulary.build(["A", "B", "C"], seed=0)


class TestMakeModel:
    def test_known_models(self, vocab):
        for name in MODEL_PROFILES:
            llm = make_model(name, vocab)
            assert llm.name == name

    def test_unknown_model(self, vocab):
        with pytest.raises(KeyError):
            make_model("gpt-9", vocab)

    def test_case_insensitive(self, vocab):
        assert make_model("GPT-3.5", vocab).name == "gpt-3.5"

    def test_profiles_match_paper_finding(self, vocab):
        """GPT-4o-mini underperforms GPT-3.5 on TAGs (Table VII), so its
        preset must be noisier and more biased."""
        gpt35 = make_model("gpt-3.5", vocab)
        mini = make_model("gpt-4o-mini", vocab)
        assert mini.noise_scale > gpt35.noise_scale
        assert mini.label_weight > gpt35.label_weight  # but boosts a bit more

    def test_bias_profiles_differ_between_models(self, vocab):
        import numpy as np

        a = make_model("gpt-3.5", vocab, seed=1)
        b = make_model("gpt-4o-mini", vocab, seed=1)
        assert not np.array_equal(a.bias.penalties, b.bias.penalties)

    def test_priced_model_names(self):
        """Preset names must exist in the pricing table so costs resolve."""
        from repro.llm.pricing import PRICES_PER_1K_TOKENS

        for name in MODEL_PROFILES:
            assert name in PRICES_PER_1K_TOKENS
