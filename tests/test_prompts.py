"""Tests for prompt construction (Table III templates)."""

from __future__ import annotations

import pytest

from repro.prompts.builder import NeighborEntry, PromptBuilder
from repro.prompts.link import LinkEndpoint, LinkPromptBuilder

CLASSES = ["Database", "Agents"]


@pytest.fixture()
def builder() -> PromptBuilder:
    return PromptBuilder(CLASSES, node_type="paper", edge_type="citation", text_field="Abstract")


class TestZeroShot:
    def test_contains_target_and_task(self, builder):
        prompt = builder.zero_shot("My Title", "My abstract text")
        assert "Target paper: Title: My Title" in prompt
        assert "Abstract: My abstract text" in prompt
        assert "[Database, Agents]" in prompt
        assert "Category: ['XX']" in prompt

    def test_no_neighbor_section(self, builder):
        prompt = builder.zero_shot("T", "A")
        assert "Neighbor" not in prompt


class TestWithNeighbors:
    def test_neighbor_blocks_numbered(self, builder):
        prompt = builder.with_neighbors(
            "T",
            "A",
            [NeighborEntry(title="N0"), NeighborEntry(title="N1")],
        )
        assert "Neighbor Paper0: {{" in prompt
        assert "Neighbor Paper1: {{" in prompt

    def test_labels_rendered_when_present(self, builder):
        prompt = builder.with_neighbors(
            "T", "A", [NeighborEntry(title="N0", label_name="Database"), NeighborEntry(title="N1")]
        )
        assert "Category: Database" in prompt
        assert prompt.count("Category: Database") == 1

    def test_abstracts_optional(self, builder):
        with_abs = builder.with_neighbors("T", "A", [NeighborEntry(title="N", abstract="NA")])
        without = builder.with_neighbors("T", "A", [NeighborEntry(title="N")])
        assert "Abstract: NA" in with_abs
        assert len(with_abs) > len(without)

    def test_sns_header_suffix(self, builder):
        ranked = builder.with_neighbors("T", "A", [NeighborEntry(title="N")], similarity_ranked=True)
        plain = builder.with_neighbors("T", "A", [NeighborEntry(title="N")])
        assert "from most related to least related" in ranked
        assert "from most related to least related" not in plain

    def test_empty_neighbors_degenerates_to_zero_shot(self, builder):
        assert builder.with_neighbors("T", "A", []) == builder.zero_shot("T", "A")

    def test_product_wording(self):
        pb = PromptBuilder(CLASSES, node_type="product", edge_type="co-purchase", text_field="Description")
        prompt = pb.with_neighbors("T", "A", [NeighborEntry(title="N")])
        assert "Target product" in prompt
        assert "co-purchase relationships" in prompt
        assert "Neighbor Product0" in prompt
        assert "Description: A" in prompt

    def test_requires_classes(self):
        with pytest.raises(ValueError):
            PromptBuilder([])


class TestLinkPrompts:
    def test_contains_both_endpoints(self):
        lb = LinkPromptBuilder()
        prompt = lb.build(
            LinkEndpoint("T1", "A1", neighbor_titles=("N1", "N2")),
            LinkEndpoint("T2", "A2"),
        )
        assert "First paper: Title: T1" in prompt
        assert "Second paper: Title: T2" in prompt
        assert "Neighbor 0: Title: N1" in prompt
        assert "Answer: ['Yes'] or Answer: ['No']" in prompt

    def test_no_neighbor_lines_without_context(self):
        lb = LinkPromptBuilder()
        prompt = lb.build(LinkEndpoint("T1", "A1"), LinkEndpoint("T2", "A2"))
        assert "Known citation neighbors" not in prompt
