"""Tests for the token pruning strategy (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pruning import TokenPruningPlan, plan_token_pruning


class TestPlanTokenPruning:
    def test_prunes_lowest_scores(self):
        nodes = np.array([10, 20, 30, 40])
        scores = np.array([0.9, 0.1, 0.5, 0.3])
        plan = plan_token_pruning(nodes, scores, tau=0.5)
        assert plan.pruned == {20, 40}
        assert list(plan.order) == [20, 40, 30, 10]

    def test_tau_zero(self):
        plan = plan_token_pruning(np.array([1, 2]), np.array([0.1, 0.2]), tau=0.0)
        assert plan.pruned == frozenset()

    def test_tau_one(self):
        plan = plan_token_pruning(np.array([1, 2]), np.array([0.1, 0.2]), tau=1.0)
        assert plan.pruned == {1, 2}

    def test_kept_is_complement(self):
        nodes = np.arange(10)
        scores = np.linspace(0, 1, 10)
        plan = plan_token_pruning(nodes, scores, tau=0.3)
        assert plan.kept | plan.pruned == set(range(10))
        assert plan.kept & plan.pruned == set()

    def test_ties_broken_by_node_id(self):
        plan = plan_token_pruning(np.array([5, 3]), np.array([0.5, 0.5]), tau=0.5)
        assert plan.pruned == {3}

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            plan_token_pruning(np.array([1]), np.array([0.5]), tau=1.5)

    def test_misaligned(self):
        with pytest.raises(ValueError):
            plan_token_pruning(np.array([1, 2]), np.array([0.5]), tau=0.5)

    @given(
        st.integers(min_value=1, max_value=60),
        st.floats(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_prune_count_matches_tau(self, n, tau, seed):
        rng = np.random.default_rng(seed)
        nodes = rng.permutation(n * 3)[:n]
        scores = rng.random(n)
        plan = plan_token_pruning(nodes, scores, tau)
        assert len(plan.pruned) == round(tau * n)
        # Pruned scores never exceed kept scores.
        by_node = dict(zip(nodes.tolist(), scores.tolist()))
        if plan.pruned and plan.kept:
            assert max(by_node[v] for v in plan.pruned) <= min(by_node[v] for v in plan.kept) + 1e-12


class TestStrategyExecution:
    @pytest.fixture()
    def strategy(self, tiny_graph, tiny_split, tiny_builder, tiny_tag):
        from repro.core.inadequacy import TextInadequacyScorer
        from repro.core.pruning import TokenPruningStrategy
        from repro.llm.simulated import SimulatedLLM
        from repro.ml.mlp import MLPClassifier

        scorer = TextInadequacyScorer(
            surrogate=MLPClassifier(hidden_sizes=(), epochs=80, learning_rate=0.05),
            calibration_per_class=8,
            seed=1,
        )
        scorer.fit(tiny_graph, tiny_split.labeled, SimulatedLLM(tiny_tag.vocabulary, seed=5), tiny_builder)
        return TokenPruningStrategy(scorer)

    def test_execute_prunes_expected_fraction(self, strategy, make_tiny_engine, tiny_split):
        engine = make_tiny_engine()
        result, plan = strategy.execute(engine, tiny_split.queries, tau=0.25)
        pruned_records = [r for r in result.records if r.pruned]
        assert len(pruned_records) == len(plan.pruned) == round(0.25 * tiny_split.num_queries)

    def test_pruned_run_costs_fewer_tokens(self, strategy, make_tiny_engine, tiny_split):
        base = make_tiny_engine().run(tiny_split.queries)
        pruned, _ = strategy.execute(make_tiny_engine(), tiny_split.queries, tau=0.5)
        assert pruned.total_tokens < base.total_tokens

    def test_accuracy_not_collapsed(self, strategy, make_tiny_engine, tiny_split):
        """Pruning 20% saturated queries must not crater accuracy (Q1 shape)."""
        base = make_tiny_engine().run(tiny_split.queries)
        pruned, _ = strategy.execute(make_tiny_engine(), tiny_split.queries, tau=0.2)
        assert pruned.accuracy >= base.accuracy - 0.05

    def test_plan_by_budget(self, strategy, tiny_split):
        n = tiny_split.num_queries
        plan = strategy.plan_by_budget(
            tiny_split.queries, budget=n * 400.0, avg_tokens_full=500.0, avg_tokens_neighbor=200.0
        )
        assert plan.tau == pytest.approx(0.5)
        assert len(plan.pruned) == round(0.5 * n)
