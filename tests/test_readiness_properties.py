"""Property-based audits of the readiness DAG (Hypothesis-drawn configs).

For any drawn boosting configuration — query count, neighborhood method,
failure injection, pruning, scheduler shape — the DAG dispatch plan must
produce a readiness ledger that is:

* **acyclic** — label reads only ever point backward in settle order;
* **sound** — every read a query declared had settled before the query
  dispatched (``violations`` empty, settle op < dispatch op per edge);
* **canonical** — a stable topological sort of the event graph replays the
  exact serial dispatch order, i.e. pipelining never reorders anything the
  serial semantics could observe.

And, the point of the whole exercise: the run itself stays bit-identical
to serial (simulated) or record-identical to wave-threads (threads).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime.scheduler import QueryScheduler

from tests.equivalence import Scenario, assert_equivalent, run_scenario

SETTINGS = dict(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

scenarios = st.builds(
    Scenario,
    strategy=st.just("boost"),
    num_queries=st.integers(min_value=2, max_value=16),
    method=st.sampled_from(["1-hop", "2-hop", "sns"]),
    prune_fraction=st.sampled_from([0.0, 0.25]),
    failure_rate=st.sampled_from([0.0, 0.3]),
    use_ladder=st.just(True),
    observe=st.booleans(),
)

batch_sizes = st.sampled_from([None, 1, 3, 8])
worker_counts = st.integers(min_value=1, max_value=5)


def check_dag_invariants(scheduler: QueryScheduler) -> None:
    dag = scheduler.dag
    assert dag is not None and dag.events, "DAG dispatch must populate the ledger"
    assert dag.violations == [], f"read-before-settle: {dag.violations}"
    assert dag.is_acyclic(), "readiness DAG has a cycle"
    assert dag.reads_settled_at_dispatch(), (
        "a query's read-set was not fully settled at dispatch time"
    )
    assert dag.topological_order() == dag.canonical_order(), (
        "topological replay diverged from the canonical serial order"
    )
    for event in dag.events:
        assert event.ready_at <= event.dispatched_at + 1e-9, (
            f"node {event.node} dispatched before it was ready"
        )
        if event.blocked_by is not None:
            assert event.blocked_by in event.reads, (
                "blocking producer must be one of the declared reads"
            )


class TestSimulatedDagProperties:
    @given(scenario=scenarios, batch=batch_sizes, workers=worker_counts)
    @settings(**SETTINGS)
    def test_ledger_invariants_and_serial_identity(
        self, tiny_tag, tiny_split, tiny_builder, scenario, batch, workers
    ):
        serial = run_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        scheduler = QueryScheduler(
            max_batch_size=batch, max_concurrency=workers, dispatch="dag"
        )
        dag_run = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder, scheduler=scheduler
        )
        assert_equivalent(serial, dag_run)
        check_dag_invariants(scheduler)

    @given(scenario=scenarios, workers=worker_counts)
    @settings(**SETTINGS)
    def test_relaxed_and_redispatched_queries_are_barriers(
        self, tiny_tag, tiny_split, tiny_builder, scenario, workers
    ):
        """Queries with unknowable read-sets (γ-relaxation, deferral
        re-enqueues) must declare the conservative barrier dependency, and
        fresh queries must declare a read-set drawn from their selector's
        label support."""
        scheduler = QueryScheduler(
            max_batch_size=4, max_concurrency=workers, dispatch="dag"
        )
        run_scenario(scenario, tiny_tag, tiny_split, tiny_builder, scheduler=scheduler)
        seen: dict[int, int] = {}
        for event in scheduler.dag.events:
            count = seen.get(event.node, 0)
            if count > 0 and not event.replayed:
                assert event.barrier, (
                    f"re-dispatched node {event.node} must be a barrier item"
                )
            seen[event.node] = count + 1


class TestThreadsDagProperties:
    @given(
        n=st.integers(min_value=2, max_value=12),
        method=st.sampled_from(["1-hop", "sns"]),
        workers=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_pipelined_executor_keeps_ledger_sound(
        self, tiny_tag, tiny_split, tiny_builder, n, method, workers
    ):
        scenario = Scenario(strategy="boost", num_queries=n, method=method)
        wave = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder,
            scheduler=QueryScheduler(
                max_batch_size=4, max_concurrency=workers, mode="threads"
            ),
        )
        scheduler = QueryScheduler(
            max_batch_size=4, max_concurrency=workers, mode="threads", dispatch="dag"
        )
        dag_run = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder, scheduler=scheduler
        )
        assert_equivalent(wave, dag_run, compare_traces=False)
        check_dag_invariants(scheduler)
