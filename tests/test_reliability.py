"""Tests for failure injection and retry wrappers."""

from __future__ import annotations

import pytest

from repro.llm.caching import CachingLLM
from repro.llm.reliability import FlakyLLM, RetryingLLM, TransientLLMError
from repro.llm.simulated import SimulatedLLM
from repro.prompts.builder import PromptBuilder
from repro.text.vocabulary import ClassVocabulary


@pytest.fixture()
def prompt_and_inner():
    vocab = ClassVocabulary.build(["A", "B"], seed=0)
    inner = SimulatedLLM(vocab, seed=1)
    prompt = PromptBuilder(["A", "B"]).zero_shot("t", " ".join(vocab.class_words[0][:8]))
    return prompt, inner


class TestFlakyLLM:
    def test_deterministic_failures(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        outcomes = []
        flaky = FlakyLLM(inner, failure_rate=0.5, seed=3)
        for _ in range(20):
            try:
                flaky.complete(prompt)
                outcomes.append(True)
            except TransientLLMError:
                outcomes.append(False)
        flaky2 = FlakyLLM(SimulatedLLM(inner.vocabulary, seed=1), failure_rate=0.5, seed=3)
        outcomes2 = []
        for _ in range(20):
            try:
                flaky2.complete(prompt)
                outcomes2.append(True)
            except TransientLLMError:
                outcomes2.append(False)
        assert outcomes == outcomes2
        assert not all(outcomes) and any(outcomes)

    def test_zero_rate_never_fails(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        flaky = FlakyLLM(inner, failure_rate=0.0)
        for _ in range(5):
            flaky.complete(prompt)
        assert flaky.failures == 0

    def test_failed_calls_cost_nothing(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        flaky = FlakyLLM(inner, failure_rate=0.99, seed=0)
        with pytest.raises(TransientLLMError):
            for _ in range(50):
                flaky.complete(prompt)
        assert inner.usage.total_tokens == flaky.usage.total_tokens

    def test_invalid_rate(self, prompt_and_inner):
        _, inner = prompt_and_inner
        with pytest.raises(ValueError):
            FlakyLLM(inner, failure_rate=1.0)


class TestRetryingLLM:
    def test_recovers_from_transient_failures(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        flaky = FlakyLLM(inner, failure_rate=0.4, seed=7)
        retrying = RetryingLLM(flaky, max_attempts=6)
        for _ in range(20):
            response = retrying.complete(prompt)
            assert response.text
        assert retrying.retries > 0

    def test_gives_up_after_max_attempts(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        always_down = FlakyLLM(inner, failure_rate=0.999, seed=1)
        retrying = RetryingLLM(always_down, max_attempts=3)
        with pytest.raises(TransientLLMError, match="gave up after 3 attempts"):
            retrying.complete(prompt)

    def test_backoff_schedule_capped(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        always_down = FlakyLLM(inner, failure_rate=0.999, seed=1)
        retrying = RetryingLLM(always_down, max_attempts=5, base_delay=1.0, max_delay=3.0)
        with pytest.raises(TransientLLMError):
            retrying.complete(prompt)
        # Waits: 1, 2, 3(cap), 3(cap) = 9 simulated seconds.
        assert retrying.simulated_wait_seconds == pytest.approx(9.0)

    def test_usage_tracks_only_successes(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        flaky = FlakyLLM(inner, failure_rate=0.4, seed=7)
        retrying = RetryingLLM(flaky, max_attempts=6)
        for _ in range(10):
            retrying.complete(prompt)
        assert retrying.usage.num_queries == 10

    def test_composes_with_cache(self, prompt_and_inner):
        """Realistic production stack: retry(flaky) under a cache."""
        prompt, inner = prompt_and_inner
        stack = CachingLLM(RetryingLLM(FlakyLLM(inner, failure_rate=0.3, seed=2), max_attempts=8))
        first = stack.complete(prompt)
        second = stack.complete(prompt)
        assert first.text == second.text
        assert stack.hits == 1

    def test_invalid_params(self, prompt_and_inner):
        _, inner = prompt_and_inner
        with pytest.raises(ValueError):
            RetryingLLM(inner, max_attempts=0)
        with pytest.raises(ValueError):
            RetryingLLM(inner, base_delay=5.0, max_delay=1.0)
