"""Tests for failure injection, retry, circuit breaking, and the clock."""

from __future__ import annotations

import pytest

from repro.llm.caching import CachingLLM
from repro.llm.reliability import (
    CircuitBreaker,
    CircuitBreakerLLM,
    CircuitOpenError,
    FlakyLLM,
    RetryingLLM,
    SimulatedClock,
    TransientLLMError,
    resilient,
    stack_retries,
)
from repro.llm.simulated import SimulatedLLM
from repro.prompts.builder import PromptBuilder
from repro.text.vocabulary import ClassVocabulary


@pytest.fixture()
def prompt_and_inner():
    vocab = ClassVocabulary.build(["A", "B"], seed=0)
    inner = SimulatedLLM(vocab, seed=1)
    prompt = PromptBuilder(["A", "B"]).zero_shot("t", " ".join(vocab.class_words[0][:8]))
    return prompt, inner


class TestFlakyLLM:
    def test_deterministic_failures(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        outcomes = []
        flaky = FlakyLLM(inner, failure_rate=0.5, seed=3)
        for _ in range(20):
            try:
                flaky.complete(prompt)
                outcomes.append(True)
            except TransientLLMError:
                outcomes.append(False)
        flaky2 = FlakyLLM(SimulatedLLM(inner.vocabulary, seed=1), failure_rate=0.5, seed=3)
        outcomes2 = []
        for _ in range(20):
            try:
                flaky2.complete(prompt)
                outcomes2.append(True)
            except TransientLLMError:
                outcomes2.append(False)
        assert outcomes == outcomes2
        assert not all(outcomes) and any(outcomes)

    def test_zero_rate_never_fails(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        flaky = FlakyLLM(inner, failure_rate=0.0)
        for _ in range(5):
            flaky.complete(prompt)
        assert flaky.failures == 0

    def test_failed_calls_cost_nothing(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        flaky = FlakyLLM(inner, failure_rate=0.99, seed=0)
        with pytest.raises(TransientLLMError):
            for _ in range(50):
                flaky.complete(prompt)
        assert inner.usage.total_tokens == flaky.usage.total_tokens

    def test_invalid_rate(self, prompt_and_inner):
        _, inner = prompt_and_inner
        with pytest.raises(ValueError):
            FlakyLLM(inner, failure_rate=1.0)

    def test_invalid_key(self, prompt_and_inner):
        _, inner = prompt_and_inner
        with pytest.raises(ValueError):
            FlakyLLM(inner, key="node")

    def test_charged_failures_accumulate_waste(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        flaky = FlakyLLM(inner, failure_rate=0.5, seed=3, charge_failed_prompts=True)
        for _ in range(20):
            try:
                flaky.complete(prompt)
            except TransientLLMError:
                pass
        assert flaky.failures > 0
        assert flaky.wasted_prompt_tokens == flaky.failures * flaky.tokenizer.count(prompt)

    def test_prompt_key_failures_independent_of_call_order(self, prompt_and_inner):
        """``key="prompt"`` draws failures from (prompt, attempt), so skipping
        other prompts — as a resumed checkpoint does — cannot shift them."""
        prompt, inner = prompt_and_inner
        other = prompt + " other"

        def outcomes_for(flaky, p, tries):
            out = []
            for _ in range(tries):
                try:
                    flaky.complete(p)
                    out.append(True)
                except TransientLLMError:
                    out.append(False)
            return out

        flaky_a = FlakyLLM(inner, failure_rate=0.5, seed=3, key="prompt")
        interleaved = outcomes_for(flaky_a, other, 7)
        pattern_a = outcomes_for(flaky_a, prompt, 10)

        flaky_b = FlakyLLM(SimulatedLLM(inner.vocabulary, seed=1), 0.5, seed=3, key="prompt")
        pattern_b = outcomes_for(flaky_b, prompt, 10)
        assert pattern_a == pattern_b
        assert not all(interleaved) or not all(pattern_a)


class TestRetryingLLM:
    def test_recovers_from_transient_failures(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        flaky = FlakyLLM(inner, failure_rate=0.4, seed=7)
        retrying = RetryingLLM(flaky, max_attempts=6)
        for _ in range(20):
            response = retrying.complete(prompt)
            assert response.text
        assert retrying.retries > 0

    def test_gives_up_after_max_attempts(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        always_down = FlakyLLM(inner, failure_rate=0.999, seed=1)
        retrying = RetryingLLM(always_down, max_attempts=3)
        with pytest.raises(TransientLLMError, match="gave up after 3 attempts"):
            retrying.complete(prompt)

    def test_backoff_schedule_capped(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        always_down = FlakyLLM(inner, failure_rate=0.999, seed=1)
        retrying = RetryingLLM(always_down, max_attempts=5, base_delay=1.0, max_delay=3.0)
        with pytest.raises(TransientLLMError):
            retrying.complete(prompt)
        # Waits: 1, 2, 3(cap), 3(cap) = 9 simulated seconds.
        assert retrying.simulated_wait_seconds == pytest.approx(9.0)

    def test_usage_tracks_only_successes(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        flaky = FlakyLLM(inner, failure_rate=0.4, seed=7)
        retrying = RetryingLLM(flaky, max_attempts=6)
        for _ in range(10):
            retrying.complete(prompt)
        assert retrying.usage.num_queries == 10

    def test_composes_with_cache(self, prompt_and_inner):
        """Realistic production stack: retry(flaky) under a cache."""
        prompt, inner = prompt_and_inner
        stack = CachingLLM(RetryingLLM(FlakyLLM(inner, failure_rate=0.3, seed=2), max_attempts=8))
        first = stack.complete(prompt)
        second = stack.complete(prompt)
        assert first.text == second.text
        assert stack.hits == 1

    def test_invalid_params(self, prompt_and_inner):
        _, inner = prompt_and_inner
        with pytest.raises(ValueError):
            RetryingLLM(inner, max_attempts=0)
        with pytest.raises(ValueError):
            RetryingLLM(inner, base_delay=5.0, max_delay=1.0)
        with pytest.raises(ValueError):
            RetryingLLM(inner, jitter=1.5)
        with pytest.raises(ValueError):
            RetryingLLM(inner, deadline_seconds=0.0)

    def test_jitter_shortens_waits_deterministically(self, prompt_and_inner):
        prompt, inner = prompt_and_inner

        def total_wait(jitter):
            down = FlakyLLM(SimulatedLLM(inner.vocabulary, seed=1), 0.999, seed=1)
            retrying = RetryingLLM(
                down, max_attempts=5, base_delay=1.0, max_delay=3.0, jitter=jitter, seed=4
            )
            with pytest.raises(TransientLLMError):
                retrying.complete(prompt)
            return retrying.simulated_wait_seconds

        unjittered = total_wait(0.0)
        assert unjittered == pytest.approx(9.0)
        jittered = total_wait(0.5)
        assert 0.5 * unjittered <= jittered < unjittered
        assert jittered == pytest.approx(total_wait(0.5))  # same seed, same waits

    def test_deadline_gives_up_before_sleeping_past_budget(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        down = FlakyLLM(inner, failure_rate=0.999, seed=1)
        retrying = RetryingLLM(
            down, max_attempts=10, base_delay=1.0, max_delay=8.0, deadline_seconds=4.0
        )
        with pytest.raises(TransientLLMError, match="deadline of 4.0s exhausted"):
            retrying.complete(prompt)
        # Waits 1 + 2 = 3s fit the budget; the next 4s wait would not.
        assert retrying.simulated_wait_seconds == pytest.approx(3.0)
        assert retrying.deadline_give_ups == 1

    def test_waits_advance_shared_clock(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        clock = SimulatedClock()
        down = FlakyLLM(inner, failure_rate=0.999, seed=1)
        retrying = RetryingLLM(down, max_attempts=3, base_delay=1.0, clock=clock)
        with pytest.raises(TransientLLMError):
            retrying.complete(prompt)
        assert clock.now == pytest.approx(retrying.simulated_wait_seconds)


class TestSimulatedClock:
    def test_advances_monotonically(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SimulatedClock(start=-1.0)
        with pytest.raises(ValueError):
            SimulatedClock().advance(-0.1)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.rejected_calls == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_recovers_through_half_open(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_seconds=10.0, half_open_successes=2, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_seconds=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == "half_open"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.times_opened == 2


class TestCircuitBreakerLLM:
    def test_open_circuit_fails_fast(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        down = FlakyLLM(inner, failure_rate=0.999, seed=1)
        breaker = CircuitBreaker(failure_threshold=2)
        guarded = CircuitBreakerLLM(down, breaker=breaker)
        for _ in range(2):
            with pytest.raises(TransientLLMError):
                guarded.complete(prompt)
        calls_before = down.calls
        with pytest.raises(CircuitOpenError):
            guarded.complete(prompt)
        assert down.calls == calls_before  # rejected without touching the backend

    def test_circuit_open_error_is_not_retried(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        down = FlakyLLM(inner, failure_rate=0.999, seed=1)
        breaker = CircuitBreaker(failure_threshold=1)
        retrying = RetryingLLM(CircuitBreakerLLM(down, breaker=breaker), max_attempts=5)
        with pytest.raises(TransientLLMError):
            retrying.complete(prompt)
        with pytest.raises(CircuitOpenError):
            retrying.complete(prompt)
        assert retrying.simulated_wait_seconds < 5 * 8.0  # no waiting out an open circuit

    def test_advance_per_call_lets_breaker_recover(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        clock = SimulatedClock()
        healthy = FlakyLLM(inner, failure_rate=0.0)
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_seconds=5.0, half_open_successes=1, clock=clock
        )
        guarded = CircuitBreakerLLM(healthy, breaker=breaker, advance_per_call=2.0)
        breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            guarded.complete(prompt)
        with pytest.raises(CircuitOpenError):
            guarded.complete(prompt)
        # Third call advances the clock past recovery; the probe succeeds.
        assert guarded.complete(prompt).text
        assert breaker.state == "closed"


class TestResilientStack:
    def test_absorbs_transient_failures(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        flaky = FlakyLLM(inner, failure_rate=0.4, seed=7)
        stack = resilient(flaky, max_attempts=6)
        for _ in range(20):
            assert stack.complete(prompt).text
        assert stack.breaker.times_opened == 0
        assert stack_retries(stack) == stack.inner.retries > 0

    def test_sustained_outage_trips_breaker(self, prompt_and_inner):
        prompt, inner = prompt_and_inner
        down = FlakyLLM(inner, failure_rate=0.999, seed=1)
        stack = resilient(down, max_attempts=2, failure_threshold=3)
        for _ in range(10):
            with pytest.raises(TransientLLMError):
                stack.complete(prompt)
        assert stack.breaker.times_opened >= 1
        assert stack.breaker.rejected_calls > 0
