"""Tests for ASCII table rendering."""

from __future__ import annotations

import pytest

from repro.experiments.report import format_value, percent_change, render_table


class TestFormatValue:
    def test_floats_rounded(self):
        assert format_value(1.23456) == "1.2"
        assert format_value(1.23456, precision=3) == "1.235"

    def test_ints_grouped(self):
        assert format_value(1234567) == "1,234,567"

    def test_strings_passthrough(self):
        assert format_value("abc") == "abc"

    def test_bools_not_grouped(self):
        assert format_value(True) == "True"


class TestRenderTable:
    def test_aligned_output(self):
        out = render_table(["A", "BBB"], [[1, 2], [33, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equal width

    def test_contains_cells(self):
        out = render_table(["x"], [["hello"]])
        assert "hello" in out and "| x" in out

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [[1]])

    def test_empty_headers(self):
        with pytest.raises(ValueError):
            render_table([], [])


class TestPercentChange:
    def test_positive(self):
        assert percent_change(110, 100) == pytest.approx(10.0)

    def test_negative(self):
        assert percent_change(95, 100) == pytest.approx(-5.0)

    def test_zero_base(self):
        with pytest.raises(ValueError):
            percent_change(1, 0)
