"""Tests for response formatting and parsing."""

from __future__ import annotations

import pytest

from repro.llm.responses import ABSTAIN, format_category_response, parse_category_response

CLASSES = ["Case_Based", "Neural_Networks", "Theory"]


class TestFormat:
    def test_canonical_form(self):
        assert format_category_response("Theory") == "Category: ['Theory']"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_category_response("")


class TestParse:
    def test_roundtrip(self):
        for i, name in enumerate(CLASSES):
            assert parse_category_response(format_category_response(name), CLASSES) == i

    def test_double_quotes(self):
        assert parse_category_response('Category: ["Theory"]', CLASSES) == 2

    def test_case_insensitive(self):
        assert parse_category_response("category: ['theory']", CLASSES) == 2

    def test_bare_class_name(self):
        assert parse_category_response("Neural_Networks", CLASSES) == 1

    def test_name_with_different_separators(self):
        assert parse_category_response("Category: ['neural networks']", CLASSES) == 1

    def test_embedded_in_prose(self):
        text = "The paper is most likely about Theory given its content."
        assert parse_category_response(text, CLASSES) == 2

    def test_unknown_returns_none(self):
        assert parse_category_response("no idea", CLASSES) is None

    def test_requires_classes(self):
        with pytest.raises(ValueError):
            parse_category_response("x", [])

    def test_whitespace_tolerance(self):
        assert parse_category_response("Category:   [ 'Theory' ]", CLASSES) == 2


class TestAbstainOnGarbage:
    """Malformed real-API output must abstain, never raise."""

    @pytest.mark.parametrize(
        "garbage",
        [
            "",
            "   \n\t  ",
            "I cannot classify this document.",
            "Category: []",
            "Category: ['Quantum_Gravity']",
            "```json\n{\"category\": null}\n```",
            "ERROR 429: rate limit exceeded",
            "?????",
        ],
    )
    def test_garbage_returns_abstain(self, garbage):
        assert parse_category_response(garbage, CLASSES) is ABSTAIN

    @pytest.mark.parametrize("non_string", [None, 42, b"Theory", ["Theory"]])
    def test_non_string_returns_abstain(self, non_string):
        assert parse_category_response(non_string, CLASSES) is ABSTAIN

    def test_abstain_is_none(self):
        # QueryRecord stores predicted_label=None for abstentions; the
        # sentinel must stay interchangeable with that representation.
        assert ABSTAIN is None
