"""Tests for response formatting and parsing."""

from __future__ import annotations

import pytest

from repro.llm.responses import format_category_response, parse_category_response

CLASSES = ["Case_Based", "Neural_Networks", "Theory"]


class TestFormat:
    def test_canonical_form(self):
        assert format_category_response("Theory") == "Category: ['Theory']"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_category_response("")


class TestParse:
    def test_roundtrip(self):
        for i, name in enumerate(CLASSES):
            assert parse_category_response(format_category_response(name), CLASSES) == i

    def test_double_quotes(self):
        assert parse_category_response('Category: ["Theory"]', CLASSES) == 2

    def test_case_insensitive(self):
        assert parse_category_response("category: ['theory']", CLASSES) == 2

    def test_bare_class_name(self):
        assert parse_category_response("Neural_Networks", CLASSES) == 1

    def test_name_with_different_separators(self):
        assert parse_category_response("Category: ['neural networks']", CLASSES) == 1

    def test_embedded_in_prose(self):
        text = "The paper is most likely about Theory given its content."
        assert parse_category_response(text, CLASSES) == 2

    def test_unknown_returns_none(self):
        assert parse_category_response("no idea", CLASSES) is None

    def test_requires_classes(self):
        with pytest.raises(ValueError):
            parse_category_response("x", [])

    def test_whitespace_tolerance(self):
        assert parse_category_response("Category:   [ 'Theory' ]", CLASSES) == 2
