"""Hypothesis fuzz lock on the response parser's never-raise contract.

:func:`repro.llm.responses.parse_category_response` promises that *no*
completion value can raise — arbitrary unicode, truncated canonical
responses, mojibake-mangled bytes, binary garbage: every one must parse to
a valid class index or abstain.  The chaos subsystem's malformed-payload
faults feed the parser exactly these shapes mid-run, so this contract is
what keeps an injected corruption from aborting a run.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.responses import (
    ABSTAIN,
    format_category_response,
    parse_category_response,
)
from repro.runtime.chaos import MUTATION_MODES, mutate_text
from repro.utils.rng import spawn_rng

CLASS_NAMES = ["Theory", "Neural_Networks", "Rule Learning", "Case Based"]

completions = st.one_of(
    st.text(max_size=300),
    st.text(alphabet=st.characters(min_codepoint=0, max_codepoint=0x10FFFF), max_size=120),
    st.binary(max_size=120).map(lambda b: b.decode("utf-8", errors="replace")),
)


def assert_parses_or_abstains(text: str, class_names=None) -> int | None:
    result = parse_category_response(text, class_names or CLASS_NAMES)
    names = class_names or CLASS_NAMES
    assert result is ABSTAIN or 0 <= result < len(names)
    return result


@given(text=completions)
@settings(max_examples=300, deadline=None)
def test_arbitrary_completions_never_raise(text):
    assert_parses_or_abstains(text)


@given(
    index=st.integers(min_value=0, max_value=len(CLASS_NAMES) - 1),
    cut=st.integers(min_value=0, max_value=40),
)
@settings(max_examples=100, deadline=None)
def test_truncated_canonical_responses_never_raise(index, cut):
    canonical = format_category_response(CLASS_NAMES[index])
    truncated = canonical[: max(0, len(canonical) - cut)]
    assert_parses_or_abstains(truncated)


@given(
    index=st.integers(min_value=0, max_value=len(CLASS_NAMES) - 1),
    mode=st.sampled_from(MUTATION_MODES),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=150, deadline=None)
def test_chaos_mutated_responses_never_raise(index, mode, seed):
    """The exact corruption shapes MalformedPayload injects mid-run."""
    canonical = format_category_response(CLASS_NAMES[index])
    mutated = mutate_text(canonical, mode, spawn_rng(seed, "fuzz", mode))
    assert_parses_or_abstains(mutated)


@given(
    text=completions,
    class_names=st.lists(st.text(min_size=1, max_size=20), min_size=1, max_size=6),
)
@settings(max_examples=150, deadline=None)
def test_arbitrary_class_rosters_never_raise(text, class_names):
    """Even rosters whose names normalize away must parse-or-abstain."""
    assert_parses_or_abstains(text, class_names)


@given(index=st.integers(min_value=0, max_value=len(CLASS_NAMES) - 1))
@settings(max_examples=20, deadline=None)
def test_canonical_round_trip_still_parses(index):
    """The fuzz lock must not come at the cost of the happy path."""
    canonical = format_category_response(CLASS_NAMES[index])
    assert parse_category_response(canonical, CLASS_NAMES) == index


def test_non_string_and_empty_abstain():
    assert parse_category_response(None, CLASS_NAMES) is ABSTAIN
    assert parse_category_response(b"Category: ['Theory']", CLASS_NAMES) is ABSTAIN
    assert parse_category_response("", CLASS_NAMES) is ABSTAIN
    assert parse_category_response("   \n\t", CLASS_NAMES) is ABSTAIN
