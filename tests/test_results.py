"""Tests for run records and aggregates."""

from __future__ import annotations

import pytest

from repro.runtime.results import QueryRecord, RunResult


def record(node=0, true=1, pred=1, pt=100, ct=5, nbrs=2, labels=1, pseudo=0, pruned=False, rnd=None):
    return QueryRecord(
        node=node,
        true_label=true,
        predicted_label=pred,
        prompt_tokens=pt,
        completion_tokens=ct,
        num_neighbors=nbrs,
        num_neighbor_labels=labels,
        num_pseudo_labels=pseudo,
        pruned=pruned,
        round_index=rnd,
    )


class TestQueryRecord:
    def test_correct(self):
        assert record(pred=1, true=1).correct
        assert not record(pred=0, true=1).correct

    def test_unparseable_is_incorrect(self):
        assert not record(pred=None).correct

    def test_total_tokens(self):
        assert record(pt=10, ct=3).total_tokens == 13


class TestRunResult:
    def test_accuracy(self):
        result = RunResult([record(pred=1), record(pred=0), record(pred=1)])
        assert result.accuracy == pytest.approx(2 / 3)

    def test_empty_accuracy_raises(self):
        with pytest.raises(ValueError):
            RunResult().accuracy

    def test_token_sums(self):
        result = RunResult([record(pt=10, ct=1), record(pt=20, ct=2)])
        assert result.prompt_tokens == 30
        assert result.completion_tokens == 3
        assert result.total_tokens == 33

    def test_queries_with_neighbors(self):
        result = RunResult([record(nbrs=0), record(nbrs=3)])
        assert result.queries_with_neighbors == 1

    def test_pseudo_label_uses(self):
        result = RunResult([record(pseudo=2), record(pseudo=1)])
        assert result.pseudo_label_uses == 3

    def test_num_rounds(self):
        result = RunResult([record(rnd=0), record(rnd=0), record(rnd=2)])
        assert result.num_rounds == 2

    def test_cost_usd(self):
        result = RunResult([record(pt=1000, ct=0)])
        assert result.cost_usd("gpt-3.5") == pytest.approx(0.0005)

    def test_cost_usd_or_none_for_unpriced(self):
        result = RunResult([record()])
        assert result.cost_usd_or_none("instructglm-1hop-raw-nopath") is None
        assert result.cost_usd_or_none("gpt-3.5") is not None

    def test_add_and_extend(self):
        result = RunResult()
        result.add(record())
        result.extend([record(), record()])
        assert result.num_queries == 3
