"""Multi-model cascade router: policy, aggregation, engine integration."""

from __future__ import annotations

import math

import pytest

from repro.core.boosting import QueryBoostingStrategy
from repro.core.budget import BudgetLedger
from repro.io.runs import RunCheckpointer
from repro.llm.interface import LLMClient, LLMResponse
from repro.llm.pricing import cost_usd
from repro.llm.profiles import make_model
from repro.runtime.router import (
    CascadeRouter,
    EscalationPolicy,
    RoutedResponse,
    RouterTier,
    TierAttempt,
    make_tiers,
)


class ScriptedLLM(LLMClient):
    """Returns a fixed (text, confidence) regardless of prompt."""

    def __init__(self, name: str, text: str, confidence: float | None = None):
        super().__init__(name)
        self.text = text
        self.confidence = confidence

    def _complete(self, prompt: str) -> str:
        return self.text

    def _complete_with_confidence(self, prompt: str):
        return self.text, self.confidence


def two_tiers(
    cheap_text="Category: Alpha",
    cheap_conf=0.9,
    strong_text="Category: Beta",
    strong_conf=0.95,
):
    return [
        RouterTier("cheap-sim", ScriptedLLM("cheap-sim", cheap_text, cheap_conf)),
        RouterTier("strong-sim", ScriptedLLM("strong-sim", strong_text, strong_conf)),
    ]


CLASSES = ["Alpha", "Beta", "Gamma", "Delta"]


class TestEscalationPolicy:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="escalate_on"):
            EscalationPolicy(escalate_on="sometimes")

    def test_rejects_out_of_range_confidence(self):
        with pytest.raises(ValueError, match="confidence_threshold"):
            EscalationPolicy(confidence_threshold=1.5)

    def test_entry_tier_jumps_on_high_inadequacy(self):
        policy = EscalationPolicy(inadequacy_threshold=0.5)
        assert policy.entry_tier(0.2, num_tiers=3) == 0
        assert policy.entry_tier(0.5, num_tiers=3) == 2
        assert policy.entry_tier(None, num_tiers=3) == 0

    def test_entry_rule_disabled_under_confidence_only(self):
        policy = EscalationPolicy(escalate_on="confidence")
        assert policy.entry_tier(0.99, num_tiers=2) == 0

    def test_escalation_reasons(self):
        policy = EscalationPolicy(confidence_threshold=0.6)
        low = LLMResponse("Category: Alpha", 10, 3, confidence=0.3)
        high = LLMResponse("Category: Alpha", 10, 3, confidence=0.9)
        assert policy.escalation_reason(low, predicted=0, parse_checked=True) == "low_confidence"
        assert policy.escalation_reason(high, predicted=0, parse_checked=True) is None
        assert policy.escalation_reason(high, predicted=None, parse_checked=True) == "abstain"
        # No class names -> abstention rule off; confidence still applies.
        assert policy.escalation_reason(high, predicted=None, parse_checked=False) is None
        assert policy.escalation_reason(low, predicted=None, parse_checked=False) == "low_confidence"

    def test_never_mode_pins_cheap_tier(self):
        policy = EscalationPolicy(escalate_on="never")
        assert policy.entry_tier(0.99, num_tiers=2) == 0
        bad = LLMResponse("nonsense", 10, 3, confidence=0.0)
        assert policy.escalation_reason(bad, predicted=None, parse_checked=True) is None

    def test_confidence_none_never_escalates(self):
        policy = EscalationPolicy(confidence_threshold=0.99)
        blind = LLMResponse("Category: Alpha", 10, 3, confidence=None)
        assert policy.escalation_reason(blind, predicted=0, parse_checked=True) is None


class TestCascadeRouter:
    def test_requires_tiers_and_unique_names(self):
        with pytest.raises(ValueError, match="at least one tier"):
            CascadeRouter([])
        tier = RouterTier("dup", ScriptedLLM("dup", "x"))
        with pytest.raises(ValueError, match="unique"):
            CascadeRouter([tier, tier])

    def test_confident_cheap_answer_stops_at_entry_tier(self):
        router = CascadeRouter(two_tiers(), class_names=CLASSES)
        routed = router.complete(0, "classify this")
        assert routed.tier == "cheap-sim"
        assert routed.escalations == 0
        assert routed.text == "Category: Alpha"
        assert len(routed.attempts) == 1

    def test_low_confidence_escalates_and_aggregates_tokens(self):
        router = CascadeRouter(two_tiers(cheap_conf=0.2), class_names=CLASSES)
        routed = router.complete(0, "classify this")
        assert routed.tier == "strong-sim"
        assert routed.escalations == 1
        assert routed.attempts[0].reason == "low_confidence"
        # Both tier attempts are paid for.
        expected = sum(a.prompt_tokens + a.completion_tokens for a in routed.attempts)
        assert routed.total_tokens == expected
        assert len(routed.attempts) == 2

    def test_abstention_escalates(self):
        router = CascadeRouter(
            two_tiers(cheap_text="no category here", cheap_conf=0.99),
            class_names=CLASSES,
        )
        routed = router.complete(0, "classify this")
        assert routed.tier == "strong-sim"
        assert routed.attempts[0].reason == "abstain"

    def test_terminal_tier_never_escalates(self):
        router = CascadeRouter(
            two_tiers(cheap_conf=0.1, strong_text="gibberish", strong_conf=0.1),
            class_names=CLASSES,
        )
        routed = router.complete(0, "classify this")
        assert routed.tier == "strong-sim"
        assert routed.escalations == 1
        assert routed.attempts[-1].reason is None

    def test_high_inadequacy_enters_strong_tier_directly(self):
        router = CascadeRouter(
            two_tiers(),
            policy=EscalationPolicy(inadequacy_threshold=0.5),
            inadequacy={7: 0.9, 8: 0.1},
            class_names=CLASSES,
        )
        hard = router.complete(7, "classify this")
        easy = router.complete(8, "classify this")
        assert hard.entry_tier_index == 1 and hard.escalations == 0
        assert hard.tier == "strong-sim"
        assert len(hard.attempts) == 1  # no wasted cheap call
        assert easy.entry_tier_index == 0 and easy.tier == "cheap-sim"

    def test_priced_tiers_charge_real_dollars(self):
        tiers = [
            RouterTier("gpt-4o-mini", ScriptedLLM("gpt-4o-mini", "Category: Alpha", 0.1)),
            RouterTier("gpt-3.5", ScriptedLLM("gpt-3.5", "Category: Beta", 0.9)),
        ]
        router = CascadeRouter(tiers, class_names=CLASSES)
        routed = router.complete(0, "classify this")
        a0, a1 = routed.attempts
        expected = cost_usd("gpt-4o-mini", a0.prompt_tokens, a0.completion_tokens) + cost_usd(
            "gpt-3.5", a1.prompt_tokens, a1.completion_tokens
        )
        assert math.isclose(routed.cost_usd, expected)

    def test_unpriced_tiers_cost_zero(self):
        router = CascadeRouter(two_tiers(), class_names=CLASSES)
        assert router.complete(0, "classify this").cost_usd == 0.0

    def test_stats_and_replay_accounting(self):
        router = CascadeRouter(two_tiers(cheap_conf=0.2), class_names=CLASSES)
        router.complete(0, "classify this")
        router.note_replayed("cheap-sim")
        router.note_replayed(None)  # pre-router records carry no tier
        stats = router.stats()
        assert stats["resolved_by_tier"] == {"cheap-sim": 0, "strong-sim": 1}
        assert stats["replayed_by_tier"] == {"cheap-sim": 1, "strong-sim": 0}
        assert stats["escalations"] == 1

    def test_make_tiers_preserves_order(self):
        tiers = make_tiers(
            ["cheap-sim", "strong-sim"], lambda name: ScriptedLLM(name, "x")
        )
        assert [t.name for t in tiers] == ["cheap-sim", "strong-sim"]


class TestRoutedEngine:
    def make_router(self, tag, inadequacy=None, confidence_threshold=0.6):
        return CascadeRouter(
            [
                RouterTier("gpt-4o-mini", make_model("gpt-4o-mini", tag.vocabulary, seed=21)),
                RouterTier("gpt-3.5", make_model("gpt-3.5", tag.vocabulary, seed=5)),
            ],
            policy=EscalationPolicy(
                escalate_on="both",
                inadequacy_threshold=0.7,
                confidence_threshold=confidence_threshold,
            ),
            inadequacy=inadequacy,
            class_names=list(tag.graph.class_names),
        )

    def test_records_carry_cascade_provenance(self, make_tiny_engine, tiny_tag, tiny_split):
        router = self.make_router(
            tiny_tag, inadequacy={int(v): (int(v) % 10) / 10 for v in tiny_split.queries}
        )
        engine = make_tiny_engine(router=router)
        result = engine.run(tiny_split.queries[:16])
        assert all(r.tier in ("gpt-4o-mini", "gpt-3.5") for r in result.records)
        assert sum(result.tier_counts.values()) == 16
        assert result.routed_cost_usd is not None and result.routed_cost_usd > 0
        for r in result.records:
            if r.escalations > 0:
                # An escalated record paid at least two prompt passes.
                assert r.tier == "gpt-3.5"

    def test_ledger_charges_tokens_and_dollars_once(
        self, make_tiny_engine, tiny_tag, tiny_split
    ):
        router = self.make_router(tiny_tag)
        engine = make_tiny_engine(router=router)
        engine.ledger = BudgetLedger()
        result = engine.run(tiny_split.queries[:10])
        assert engine.ledger.charges == 10
        assert engine.ledger.spent == result.total_tokens
        assert math.isclose(engine.ledger.spent_usd, result.routed_cost_usd)

    def test_boosting_pseudo_labels_record_producing_tier(
        self, make_tiny_engine, tiny_tag, tiny_split
    ):
        router = self.make_router(tiny_tag)
        engine = make_tiny_engine(router=router)
        boosted = QueryBoostingStrategy().execute(engine, tiny_split.queries[:12])
        assert all(r.tier is not None for r in boosted.run.records)
        # Each published pseudo-label traces back to a record with a tier.
        by_node = {r.node: r for r in boosted.run.records}
        assert engine._pseudo, "boosting published no pseudo-labels"
        for node in engine._pseudo:
            assert by_node[node].tier in ("gpt-4o-mini", "gpt-3.5")

    def test_resume_replays_tier_decisions_without_duplicate_calls(
        self, make_tiny_engine, tiny_tag, tiny_split, tmp_path
    ):
        queries = tiny_split.queries[:12]
        inadequacy = {int(v): (int(v) % 10) / 10 for v in queries}

        # Fresh full run: the reference execution.
        fresh_router = self.make_router(tiny_tag, inadequacy=inadequacy)
        fresh = make_tiny_engine(router=fresh_router).run(queries)

        # Interrupted run: first half persists, then a brand-new stack resumes.
        path = tmp_path / "ckpt.json"
        half_router = self.make_router(tiny_tag, inadequacy=inadequacy)
        make_tiny_engine(router=half_router).run(
            queries[:6], checkpointer=RunCheckpointer(path)
        )

        resumed_router = self.make_router(tiny_tag, inadequacy=inadequacy)
        resumed_engine = make_tiny_engine(router=resumed_router)
        resumed = resumed_engine.run(queries, checkpointer=RunCheckpointer(path))

        assert [
            (r.node, r.predicted_label, r.tier, r.escalations, r.cost_usd)
            for r in resumed.records
        ] == [
            (r.node, r.predicted_label, r.tier, r.escalations, r.cost_usd)
            for r in fresh.records
        ]
        # Replayed records issued zero LLM calls on the resumed stack: the
        # tier clients only ever saw the 6 not-yet-checkpointed queries.
        stats = resumed_router.stats()
        executed = sum(stats["resolved_by_tier"].values())
        assert executed == 6
        assert sum(stats["replayed_by_tier"].values()) == 6
        total_calls = sum(t.llm.usage.num_queries for t in resumed_router.tiers)
        attempts = 6 + stats["escalations"]
        assert total_calls == attempts

    def test_routed_response_duck_types_llm_response(self):
        routed = RoutedResponse(
            text="Category: Alpha",
            prompt_tokens=10,
            completion_tokens=4,
            confidence=0.8,
            tier="strong-sim",
            tier_index=1,
            entry_tier_index=0,
            escalations=1,
            cost_usd=0.0,
            attempts=(
                TierAttempt("cheap-sim", 5, 2, 0.1, 0.0, True, "low_confidence"),
                TierAttempt("strong-sim", 5, 2, 0.8, 0.0, False, None),
            ),
        )
        assert routed.total_tokens == 14
