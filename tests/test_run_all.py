"""Tests for the run-everything orchestrator."""

from __future__ import annotations

from repro.experiments.run_all import ExperimentOutcome, run_all, write_report


class TestRegistry:
    def test_covers_every_paper_artifact(self):
        from repro.experiments.run_all import _registry

        names = [name for name, _, _ in _registry(num_queries=10)]
        assert names == [
            "fig3", "table4", "fig7", "table5", "table6",
            "fig8", "table7", "table8", "table9", "table10",
        ]


class TestWriteReport:
    def test_report_contains_sections_and_failures(self, tmp_path):
        outcomes = [
            ExperimentOutcome(name="ok", title="OK experiment", text="| table |", seconds=1.0),
            ExperimentOutcome(name="bad", title="Broken one", text="", seconds=0.1, error="Boom: x"),
        ]
        path = write_report(outcomes, tmp_path / "report.md")
        content = path.read_text()
        assert "## OK experiment" in content
        assert "| table |" in content
        assert "**FAILED**: Boom: x" in content

    def test_outcome_ok_property(self):
        assert ExperimentOutcome("a", "t", "x", 0.1).ok
        assert not ExperimentOutcome("a", "t", "", 0.1, error="e").ok


class TestRunAllSmoke:
    def test_single_experiment_path_works(self, monkeypatch, tmp_path):
        """Exercise run_all's error isolation with a stubbed registry."""
        import repro.experiments.run_all as run_all_module

        def fake_registry(num_queries):
            return [
                ("good", "Good", lambda: "fine"),
                ("bad", "Bad", lambda: (_ for _ in ()).throw(RuntimeError("nope"))),
            ]

        monkeypatch.setattr(run_all_module, "_registry", fake_registry)
        outcomes = run_all_module.run_all(num_queries=5)
        assert outcomes[0].ok and outcomes[0].text == "fine"
        assert not outcomes[1].ok and "nope" in outcomes[1].error
        report = write_report(outcomes, tmp_path / "r.md")
        assert "fine" in report.read_text()
