"""Tests for k-hop BFS sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.sampling import bfs_hops, k_hop_neighbors
from repro.graph.tag import TextAttributedGraph
from repro.text.corpus import NodeText


@pytest.fixture(scope="module")
def path_graph() -> TextAttributedGraph:
    # 0 - 1 - 2 - 3 - 4 plus a branch 1 - 5
    edges = np.array([(0, 1), (1, 2), (2, 3), (3, 4), (1, 5)])
    n = 6
    return TextAttributedGraph.from_edges(
        num_nodes=n,
        edges=edges,
        labels=np.zeros(n, dtype=np.int64),
        texts=[NodeText(f"t{i}", f"a{i}") for i in range(n)],
        features=np.zeros((n, 2), dtype=np.float32),
        class_names=["only"],
    )


class TestBfsHops:
    def test_layers(self, path_graph):
        layers = bfs_hops(path_graph, 0, 3)
        assert list(layers[1]) == [1]
        assert list(layers[2]) == [2, 5]
        assert list(layers[3]) == [3]

    def test_zero_hops(self, path_graph):
        assert bfs_hops(path_graph, 0, 0) == {}

    def test_stops_when_exhausted(self, path_graph):
        layers = bfs_hops(path_graph, 0, 100)
        assert max(layers) == 4  # graph diameter from node 0

    def test_node_never_in_layers(self, path_graph):
        layers = bfs_hops(path_graph, 2, 5)
        for layer in layers.values():
            assert 2 not in layer

    def test_invalid_node(self, path_graph):
        with pytest.raises(ValueError):
            bfs_hops(path_graph, 99, 1)

    def test_negative_hops(self, path_graph):
        with pytest.raises(ValueError):
            bfs_hops(path_graph, 0, -1)


class TestKHop:
    def test_one_hop(self, path_graph):
        assert list(k_hop_neighbors(path_graph, 1, 1)) == [0, 2, 5]

    def test_two_hop_unions_layers(self, path_graph):
        assert list(k_hop_neighbors(path_graph, 0, 2)) == [1, 2, 5]

    def test_isolated_node(self):
        g = TextAttributedGraph.from_edges(
            num_nodes=2,
            edges=np.empty((0, 2), dtype=np.int64),
            labels=np.zeros(2, dtype=np.int64),
            texts=[NodeText("t", "a")] * 2,
            features=np.zeros((2, 1), dtype=np.float32),
            class_names=["only"],
        )
        assert k_hop_neighbors(g, 0, 3).size == 0

    def test_monotone_in_k(self, path_graph):
        for node in range(path_graph.num_nodes):
            prev: set[int] = set()
            for k in range(1, 5):
                current = set(k_hop_neighbors(path_graph, node, k).tolist())
                assert prev <= current
                prev = current
