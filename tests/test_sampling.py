"""Tests for k-hop BFS sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.sampling import bfs_hops, k_hop_neighbors, partition_graph
from repro.graph.tag import TextAttributedGraph
from repro.text.corpus import NodeText


@pytest.fixture(scope="module")
def path_graph() -> TextAttributedGraph:
    # 0 - 1 - 2 - 3 - 4 plus a branch 1 - 5
    edges = np.array([(0, 1), (1, 2), (2, 3), (3, 4), (1, 5)])
    n = 6
    return TextAttributedGraph.from_edges(
        num_nodes=n,
        edges=edges,
        labels=np.zeros(n, dtype=np.int64),
        texts=[NodeText(f"t{i}", f"a{i}") for i in range(n)],
        features=np.zeros((n, 2), dtype=np.float32),
        class_names=["only"],
    )


class TestBfsHops:
    def test_layers(self, path_graph):
        layers = bfs_hops(path_graph, 0, 3)
        assert list(layers[1]) == [1]
        assert list(layers[2]) == [2, 5]
        assert list(layers[3]) == [3]

    def test_zero_hops(self, path_graph):
        assert bfs_hops(path_graph, 0, 0) == {}

    def test_stops_when_exhausted(self, path_graph):
        layers = bfs_hops(path_graph, 0, 100)
        assert max(layers) == 4  # graph diameter from node 0

    def test_node_never_in_layers(self, path_graph):
        layers = bfs_hops(path_graph, 2, 5)
        for layer in layers.values():
            assert 2 not in layer

    def test_invalid_node(self, path_graph):
        with pytest.raises(ValueError):
            bfs_hops(path_graph, 99, 1)

    def test_negative_hops(self, path_graph):
        with pytest.raises(ValueError):
            bfs_hops(path_graph, 0, -1)


class TestKHop:
    def test_one_hop(self, path_graph):
        assert list(k_hop_neighbors(path_graph, 1, 1)) == [0, 2, 5]

    def test_two_hop_unions_layers(self, path_graph):
        assert list(k_hop_neighbors(path_graph, 0, 2)) == [1, 2, 5]

    def test_isolated_node(self):
        g = TextAttributedGraph.from_edges(
            num_nodes=2,
            edges=np.empty((0, 2), dtype=np.int64),
            labels=np.zeros(2, dtype=np.int64),
            texts=[NodeText("t", "a")] * 2,
            features=np.zeros((2, 1), dtype=np.float32),
            class_names=["only"],
        )
        assert k_hop_neighbors(g, 0, 3).size == 0

    def test_monotone_in_k(self, path_graph):
        for node in range(path_graph.num_nodes):
            prev: set[int] = set()
            for k in range(1, 5):
                current = set(k_hop_neighbors(path_graph, node, k).tolist())
                assert prev <= current
                prev = current


class TestPartitionGraph:
    @pytest.fixture(scope="class")
    def cora(self):
        from repro.experiments.common import load_setup

        return load_setup("cora", num_queries=40, scale=0.15).graph

    def test_one_part_is_trivial(self, path_graph):
        partition = partition_graph(path_graph, 1)
        assert partition.num_parts == 1
        assert partition.assignment.tolist() == [0] * path_graph.num_nodes
        assert partition.cut_edges == 0
        assert partition.cut_fraction == 0.0

    def test_every_node_assigned_exactly_once(self, cora):
        partition = partition_graph(cora, 3)
        assert partition.num_nodes == cora.num_nodes
        assert sorted(
            n for part in range(3) for n in partition.part(part).tolist()
        ) == list(range(cora.num_nodes))

    def test_balance_within_slack(self, cora):
        slack = 0.15
        partition = partition_graph(cora, 4, balance_slack=slack)
        ideal = cora.num_nodes / 4
        for size in partition.sizes():
            assert size <= int(ideal * (1 + slack)) + 1

    def test_deterministic(self, cora):
        a = partition_graph(cora, 4)
        b = partition_graph(cora, 4)
        assert a.assignment.tolist() == b.assignment.tolist()

    def test_cut_stats_consistent(self, cora):
        partition = partition_graph(cora, 2)
        u, v = cora.edge_array().T
        crossing = int((partition.assignment[u] != partition.assignment[v]).sum())
        assert partition.cut_edges == crossing
        assert partition.total_edges == len(u)
        assert 0.0 < partition.cut_fraction < 1.0
        assert partition.same_label_cut_edges <= partition.cut_edges

    def test_homophily_weight_protects_same_label_edges(self, cora):
        neutral = partition_graph(cora, 2, homophily_weight=0.0)
        homophil = partition_graph(cora, 2, homophily_weight=4.0)
        # Same-label edges make up no greater a share of the cut when they
        # are the expensive ones to cut.
        def same_label_share(p):
            return p.same_label_cut_edges / p.cut_edges if p.cut_edges else 0.0

        assert same_label_share(homophil) <= same_label_share(neutral) + 1e-9

    def test_part_of_matches_assignment(self, cora):
        partition = partition_graph(cora, 2)
        for node in range(0, cora.num_nodes, 37):
            assert partition.part_of(node) == int(partition.assignment[node])

    def test_crosses(self, path_graph):
        partition = partition_graph(path_graph, 2)
        u, v = path_graph.edge_array().T
        for uu, vv in zip(u.tolist(), v.tolist()):
            expected = partition.part_of(uu) != partition.part_of(vv)
            assert partition.crosses(uu, vv) == expected

    def test_invalid_num_parts(self, path_graph):
        with pytest.raises(ValueError):
            partition_graph(path_graph, 0)
        with pytest.raises(ValueError):
            partition_graph(path_graph, path_graph.num_nodes + 1)
