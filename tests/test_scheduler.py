"""Unit tests for the batched query scheduler (waves, overlap, modes)."""

from __future__ import annotations

import pytest

from repro.llm.reliability import FlakyLLM, LatencyLLM, SimulatedClock
from repro.llm.simulated import SimulatedLLM
from repro.runtime.scheduler import (
    DISPATCH_MODES,
    QueryScheduler,
    SchedulerReport,
    WaveStats,
    WorkItem,
    _chunks,
)

from tests.equivalence import Scenario, assert_equivalent, run_scenario


class TestConstruction:
    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            QueryScheduler(max_batch_size=0)

    def test_rejects_bad_concurrency(self):
        with pytest.raises(ValueError, match="max_concurrency"):
            QueryScheduler(max_concurrency=0)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            QueryScheduler(mode="celery")

    def test_modes_registry(self):
        assert DISPATCH_MODES == ("simulated", "threads")


class TestChunks:
    def test_none_means_one_batch(self):
        assert _chunks([1, 2, 3], None) == [[1, 2, 3]]

    def test_splits_evenly_and_remainder(self):
        assert _chunks(list(range(7)), 3) == [[0, 1, 2], [3, 4, 5], [6]]

    def test_empty(self):
        assert _chunks([], 3) == []


class TestOverlapAccounting:
    def test_single_worker_is_serial(self):
        scheduler = QueryScheduler(max_concurrency=1)
        serial, overlapped = scheduler._overlap([1.0, 2.0, 3.0])
        assert serial == overlapped == 6.0

    def test_perfect_overlap(self):
        scheduler = QueryScheduler(max_concurrency=3)
        serial, overlapped = scheduler._overlap([2.0, 2.0, 2.0])
        assert serial == 6.0
        assert overlapped == 2.0

    def test_greedy_next_free_worker(self):
        # Canonical-order assignment: [3, 1, 1, 1] on 2 workers gives
        # worker A = 3, worker B = 1+1+1 = 3.
        scheduler = QueryScheduler(max_concurrency=2)
        serial, overlapped = scheduler._overlap([3.0, 1.0, 1.0, 1.0])
        assert serial == 6.0
        assert overlapped == 3.0

    def test_batch_barrier_limits_overlap(self):
        # Batches of 2 on 2 workers: each batch's makespan is its max.
        scheduler = QueryScheduler(max_batch_size=2, max_concurrency=2)
        serial, overlapped = scheduler._overlap([2.0, 1.0, 2.0, 1.0])
        assert serial == 6.0
        assert overlapped == 4.0

    def test_zero_latency_speedup_is_one(self):
        stats = WaveStats(0, 4, 0, 0, 1, 0.0, 0.0)
        assert stats.speedup == 1.0

    def test_report_aggregates(self):
        report = SchedulerReport(
            waves=[
                WaveStats(0, 4, 0, 0, 2, 8.0, 4.0),
                WaveStats(1, 2, 1, 0, 1, 4.0, 2.0),
            ]
        )
        assert report.num_waves == 2
        assert report.num_batches == 3
        assert report.num_queries == 6
        assert report.serial_seconds == 12.0
        assert report.overlapped_seconds == 6.0
        assert report.speedup == 2.0


class TestWaveDispatch:
    def test_rejects_bad_on_failure(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine(scheduler=QueryScheduler())
        items = [WorkItem(node=int(tiny_split.queries[0]), on_failure="explode")]
        with pytest.raises(ValueError, match="on_failure"):
            engine.scheduler.run_wave(engine, items)

    def test_records_in_canonical_order(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine(scheduler=QueryScheduler(max_batch_size=3, max_concurrency=2))
        nodes = [int(v) for v in tiny_split.queries[:10]]
        outcome = engine.scheduler.run_wave(engine, [WorkItem(node=n) for n in nodes])
        assert [r.node for r in outcome.records] == nodes
        assert outcome.deferred == []
        assert outcome.stats.num_queries == 10
        assert outcome.stats.num_batches == 4

    def test_replays_skip_execution(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine(scheduler=QueryScheduler())
        nodes = [int(v) for v in tiny_split.queries[:4]]
        first = engine.scheduler.run_wave(engine, [WorkItem(node=n) for n in nodes])
        calls_before = engine.llm.usage.num_queries
        replay_engine = make_tiny_engine(scheduler=QueryScheduler())
        outcome = replay_engine.scheduler.run_wave(
            replay_engine,
            [WorkItem(node=n, cached=r) for n, r in zip(nodes, first.records)],
        )
        assert [r.node for r in outcome.records] == nodes
        assert outcome.stats.num_replayed == 4
        assert replay_engine.llm.usage.num_queries == 0
        assert engine.llm.usage.num_queries == calls_before

    def test_deferral_on_transient_failure(self, make_tiny_engine, tiny_split, tiny_tag):
        flaky = FlakyLLM(
            SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5),
            failure_rate=0.999,
            seed=13,
        )
        engine = make_tiny_engine(llm=flaky, scheduler=QueryScheduler())
        nodes = [int(v) for v in tiny_split.queries[:3]]
        deferred_calls = []
        outcome = engine.scheduler.run_wave(
            engine,
            [
                WorkItem(node=n, on_failure="raise", on_defer=lambda n=n: deferred_calls.append(n))
                for n in nodes
            ],
        )
        assert outcome.records == []
        assert outcome.deferred == nodes
        assert deferred_calls == nodes
        assert outcome.stats.num_deferred == 3

    def test_wave_index_advances(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine(scheduler=QueryScheduler())
        nodes = [int(v) for v in tiny_split.queries[:2]]
        first = engine.scheduler.run_wave(engine, [WorkItem(node=nodes[0])])
        second = engine.scheduler.run_wave(engine, [WorkItem(node=nodes[1])])
        assert (first.stats.wave_index, second.stats.wave_index) == (0, 1)
        assert engine.scheduler.report.num_waves == 2

    def test_after_execute_fires_per_fresh_record(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine(scheduler=QueryScheduler())
        nodes = [int(v) for v in tiny_split.queries[:5]]
        seen = []
        engine.scheduler.run_wave(
            engine, [WorkItem(node=n, after_execute=lambda r: seen.append(r.node)) for n in nodes]
        )
        assert seen == nodes

    def test_decide_include_forces_ordered_dispatch_in_threads_mode(
        self, make_tiny_engine, tiny_split
    ):
        # A decide_include callable reads mutable mid-wave state, so even the
        # thread dispatcher must fall back to canonical in-order execution.
        engine = make_tiny_engine(
            scheduler=QueryScheduler(max_concurrency=4, mode="threads")
        )
        nodes = [int(v) for v in tiny_split.queries[:6]]
        order = []

        def decide(node):
            order.append(node)
            return True

        outcome = engine.scheduler.run_wave(
            engine, [WorkItem(node=n, decide_include=lambda n=n: decide(n)) for n in nodes]
        )
        assert order == nodes
        assert [r.node for r in outcome.records] == nodes


class TestVirtualOverlapWithLatency:
    def test_simulated_latency_overlaps_without_extra_calls(
        self, make_tiny_engine, tiny_split, tiny_tag
    ):
        clock = SimulatedClock()
        inner = SimulatedLLM(tiny_tag.vocabulary, name="gpt-3.5", seed=5)
        llm = LatencyLLM(inner, clock=clock, seconds_per_call=1.0)
        scheduler = QueryScheduler(max_batch_size=8, max_concurrency=4)
        engine = make_tiny_engine(llm=llm, clock=clock, scheduler=scheduler)
        nodes = [int(v) for v in tiny_split.queries[:16]]
        outcome = engine.scheduler.run_wave(engine, [WorkItem(node=n) for n in nodes])
        assert len(outcome.records) == 16
        assert inner.usage.num_queries == 16  # zero extra calls
        assert outcome.stats.serial_seconds == pytest.approx(16.0)
        assert outcome.stats.overlapped_seconds == pytest.approx(4.0)
        assert outcome.stats.speedup == pytest.approx(4.0)


class TestEngineIntegration:
    def test_plain_run_matches_serial(self, tiny_tag, tiny_split, tiny_builder):
        scenario = Scenario(strategy="none", num_queries=14)
        serial = run_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        batched = run_scenario(
            scenario,
            tiny_tag,
            tiny_split,
            tiny_builder,
            scheduler=QueryScheduler(max_batch_size=4, max_concurrency=3),
        )
        assert_equivalent(serial, batched)
        assert batched.scheduler_report.num_waves == 1
        assert batched.scheduler_report.num_batches == 4

    def test_boosted_run_matches_serial(self, tiny_tag, tiny_split, tiny_builder):
        scenario = Scenario(strategy="boost", num_queries=16)
        serial = run_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        batched = run_scenario(
            scenario,
            tiny_tag,
            tiny_split,
            tiny_builder,
            scheduler=QueryScheduler(max_batch_size=4, max_concurrency=2),
        )
        assert_equivalent(serial, batched)
        # One wave per boosting round.
        assert batched.scheduler_report.num_waves == len(batched.rounds)

    def test_guarded_run_matches_serial(self, tiny_tag, tiny_split, tiny_builder):
        scenario = Scenario(strategy="guard", num_queries=12, budget_slack=0.4)
        serial = run_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        batched = run_scenario(
            scenario,
            tiny_tag,
            tiny_split,
            tiny_builder,
            scheduler=QueryScheduler(max_batch_size=5, max_concurrency=4),
        )
        assert_equivalent(serial, batched)
        # The guard must actually have rationed something for this to bite.
        assert any(r["pruned"] for r in serial.records)
        assert any(not r["pruned"] for r in serial.records)

    def test_threads_mode_matches_serial_records(self, tiny_tag, tiny_split, tiny_builder):
        scenario = Scenario(strategy="none", num_queries=12)
        serial = run_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        threaded = run_scenario(
            scenario,
            tiny_tag,
            tiny_split,
            tiny_builder,
            scheduler=QueryScheduler(max_batch_size=6, max_concurrency=4, mode="threads"),
        )
        assert_equivalent(serial, threaded, compare_traces=False)
