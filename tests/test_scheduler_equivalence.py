"""Property-based batched-vs-serial equivalence (the tentpole guarantee).

Hypothesis draws scenarios — strategy, query count, pruning, budget slack,
failure injection, cache/ladder/checkpoint/instrumentation wiring — and
(batch size, concurrency) scheduler configurations, then asserts the
batched run reproduces the serial run artifact for artifact via the
:mod:`tests.equivalence` harness.  Every draw is fully seeded, so failures
shrink and replay deterministically.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime.scheduler import QueryScheduler

from tests.equivalence import Scenario, assert_equivalent, run_scenario

SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

batch_sizes = st.sampled_from([None, 1, 3, 8])
worker_counts = st.integers(min_value=1, max_value=6)


def scheduler_from(batch: int | None, workers: int) -> QueryScheduler:
    return QueryScheduler(max_batch_size=batch, max_concurrency=workers)


class TestPlainRunEquivalence:
    @given(
        n=st.integers(min_value=1, max_value=20),
        prune=st.floats(min_value=0.0, max_value=1.0),
        batch=batch_sizes,
        workers=worker_counts,
        observe=st.booleans(),
    )
    @settings(**SETTINGS)
    def test_records_traces_and_usage_match(
        self, tiny_tag, tiny_split, tiny_builder, n, prune, batch, workers, observe
    ):
        scenario = Scenario(
            strategy="none", num_queries=n, prune_fraction=prune, observe=observe
        )
        serial = run_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        batched = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder,
            scheduler=scheduler_from(batch, workers),
        )
        assert_equivalent(serial, batched)

    @given(
        n=st.integers(min_value=2, max_value=16),
        batch=batch_sizes,
        workers=worker_counts,
    )
    @settings(**SETTINGS)
    def test_cached_runs_match(
        self, tiny_tag, tiny_split, tiny_builder, n, batch, workers
    ):
        scenario = Scenario(strategy="none", num_queries=n, use_cache=True)
        serial = run_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        batched = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder,
            scheduler=scheduler_from(batch, workers),
        )
        assert_equivalent(serial, batched)


class TestGuardedRunEquivalence:
    @given(
        n=st.integers(min_value=2, max_value=16),
        slack=st.floats(min_value=0.0, max_value=2.0),
        batch=batch_sizes,
        workers=worker_counts,
    )
    @settings(**SETTINGS)
    def test_ledger_and_rationing_match(
        self, tiny_tag, tiny_split, tiny_builder, n, slack, batch, workers
    ):
        scenario = Scenario(strategy="guard", num_queries=n, budget_slack=slack)
        serial = run_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        batched = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder,
            scheduler=scheduler_from(batch, workers),
        )
        assert_equivalent(serial, batched)
        assert batched.ledger is not None


class TestBoostedRunEquivalence:
    @given(
        n=st.integers(min_value=2, max_value=20),
        prune=st.floats(min_value=0.0, max_value=0.6),
        batch=batch_sizes,
        workers=worker_counts,
    )
    @settings(**SETTINGS)
    def test_round_structure_matches(
        self, tiny_tag, tiny_split, tiny_builder, n, prune, batch, workers
    ):
        scenario = Scenario(strategy="boost", num_queries=n, prune_fraction=prune)
        serial = run_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        batched = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder,
            scheduler=scheduler_from(batch, workers),
        )
        assert_equivalent(serial, batched)
        assert batched.rounds == serial.rounds

    @given(
        n=st.integers(min_value=2, max_value=14),
        rate=st.floats(min_value=0.05, max_value=0.5),
        attempts=st.integers(min_value=1, max_value=4),
        batch=batch_sizes,
        workers=worker_counts,
    )
    @settings(**SETTINGS)
    def test_flaky_deferrals_match(
        self, tiny_tag, tiny_split, tiny_builder, n, rate, attempts, batch, workers
    ):
        # Failure scripts are keyed by prompt, so the injected pattern is
        # identical across serial and batched execution; deferrals must
        # land on the same nodes in the same rounds.
        scenario = Scenario(
            strategy="boost",
            num_queries=n,
            failure_rate=rate,
            max_attempts=attempts,
            use_ladder=True,
        )
        serial = run_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        batched = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder,
            scheduler=scheduler_from(batch, workers),
        )
        assert_equivalent(serial, batched)


class TestRoutedRunEquivalence:
    @given(
        n=st.integers(min_value=1, max_value=20),
        strategy=st.sampled_from(["none", "boost"]),
        batch=batch_sizes,
        workers=worker_counts,
        observe=st.booleans(),
    )
    @settings(**SETTINGS)
    def test_cascade_decisions_match(
        self, tiny_tag, tiny_split, tiny_builder, n, strategy, batch, workers, observe
    ):
        # Routing is a pure function of (node, prompt): the cascade's tier
        # choices, escalations, per-tier spend and aggregate records must be
        # bit-identical however dispatch batches the queries.
        scenario = Scenario(strategy=strategy, num_queries=n, route=True, observe=observe)
        serial = run_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        batched = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder,
            scheduler=scheduler_from(batch, workers),
        )
        assert_equivalent(serial, batched)
        assert serial.router_stats is not None
        assert sum(serial.router_stats["resolved_by_tier"].values()) >= n

    @given(
        n=st.integers(min_value=2, max_value=14),
        batch=batch_sizes,
        workers=worker_counts,
    )
    @settings(**SETTINGS)
    def test_routed_thread_dispatch_merges_canonically(
        self, tiny_tag, tiny_split, tiny_builder, n, batch, workers
    ):
        # Thread dispatch runs each query's full cascade on a worker; records
        # and router stats still merge identically (traces legitimately differ).
        scenario = Scenario(strategy="none", num_queries=n, route=True)
        serial = run_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        threaded = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder,
            scheduler=QueryScheduler(
                max_batch_size=batch, max_concurrency=workers, mode="threads"
            ),
        )
        assert_equivalent(serial, threaded, compare_traces=False)


class TestCheckpointEquivalence:
    @given(
        n=st.integers(min_value=2, max_value=14),
        strategy=st.sampled_from(["none", "boost"]),
        batch=batch_sizes,
        workers=worker_counts,
    )
    @settings(**SETTINGS)
    def test_checkpoint_bytes_match(
        self, tiny_tag, tiny_split, tiny_builder, tmp_path_factory,
        n, strategy, batch, workers,
    ):
        scenario = Scenario(strategy=strategy, num_queries=n, checkpoint=True)
        base = tmp_path_factory.mktemp("ckpt")
        serial = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder,
            checkpoint_path=base / "serial.json",
        )
        batched = run_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder,
            scheduler=scheduler_from(batch, workers),
            checkpoint_path=base / "batched.json",
        )
        assert_equivalent(serial, batched)
        assert serial.checkpoint_text is not None
