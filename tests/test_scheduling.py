"""Tests for the pseudo-label utilization simulation (Fig. 8 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scheduling import pseudo_label_utilization
from repro.selection.random_khop import KHopRandomSelector


class TestUtilization:
    def test_reports_have_expected_shape(self, tiny_graph, tiny_split):
        report = pseudo_label_utilization(
            tiny_graph,
            tiny_split.queries,
            tiny_split.labeled,
            KHopRandomSelector(k=1),
            max_neighbors=4,
            num_rounds=10,
            scheduled=True,
        )
        assert report.queries == tiny_split.num_queries
        assert 1 <= report.rounds <= 10
        assert report.utilization >= 0

    def test_scheduling_does_not_reduce_utilization(self, tiny_graph, tiny_split):
        """The algorithm's purpose: scheduled >= random (Fig. 8's shape)."""
        common = dict(
            graph=tiny_graph,
            queries=tiny_split.queries,
            labeled=tiny_split.labeled,
            selector=KHopRandomSelector(k=2),
            max_neighbors=4,
            num_rounds=10,
            seed=3,
        )
        scheduled = pseudo_label_utilization(scheduled=True, **common)
        random_ = pseudo_label_utilization(scheduled=False, **common)
        assert scheduled.utilization >= random_.utilization

    def test_larger_config_more_utilization(self, tiny_graph, tiny_split):
        """2-hop M=10 must beat 1-hop M=4 (richer query associations)."""
        small = pseudo_label_utilization(
            tiny_graph, tiny_split.queries, tiny_split.labeled,
            KHopRandomSelector(k=1), max_neighbors=4, num_rounds=10, scheduled=True,
        )
        large = pseudo_label_utilization(
            tiny_graph, tiny_split.queries, tiny_split.labeled,
            KHopRandomSelector(k=2), max_neighbors=10, num_rounds=10, scheduled=True,
        )
        assert large.utilization >= small.utilization

    def test_single_round_has_zero_utilization(self, tiny_graph, tiny_split):
        """All queries in one round -> no earlier pseudo-labels to use."""
        report = pseudo_label_utilization(
            tiny_graph, tiny_split.queries, tiny_split.labeled,
            KHopRandomSelector(k=2), max_neighbors=10, num_rounds=1, scheduled=True,
        )
        assert report.utilization == 0

    def test_deterministic(self, tiny_graph, tiny_split):
        args = (tiny_graph, tiny_split.queries, tiny_split.labeled, KHopRandomSelector(k=1), 4)
        a = pseudo_label_utilization(*args, num_rounds=5, scheduled=False, seed=7)
        b = pseudo_label_utilization(*args, num_rounds=5, scheduled=False, seed=7)
        assert a == b

    def test_empty_queries_rejected(self, tiny_graph, tiny_split):
        with pytest.raises(ValueError):
            pseudo_label_utilization(
                tiny_graph, np.array([], dtype=np.int64), tiny_split.labeled,
                KHopRandomSelector(k=1), 4,
            )
