"""Tests for neighbor-selection methods."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.sampling import k_hop_neighbors
from repro.selection.base import VanillaSelector
from repro.selection.random_khop import KHopRandomSelector
from repro.selection.registry import METHOD_NAMES, make_selector
from repro.selection.sns import SNSSelector
from repro.utils.rng import spawn_rng


def label_map_for(graph, labeled) -> dict[int, int]:
    return {int(v): int(graph.labels[v]) for v in labeled}


class TestVanilla:
    def test_selects_nothing(self, tiny_graph, tiny_split, rng):
        sel = VanillaSelector()
        assert sel.select(tiny_graph, 0, label_map_for(tiny_graph, tiny_split.labeled), 4, rng) == []


class TestKHopRandom:
    def test_respects_max(self, tiny_graph, tiny_split, rng):
        sel = KHopRandomSelector(k=2)
        labels = label_map_for(tiny_graph, tiny_split.labeled)
        for node in tiny_split.queries[:20]:
            assert len(sel.select(tiny_graph, int(node), labels, 4, rng)) <= 4

    def test_candidates_within_k_hops(self, tiny_graph, tiny_split, rng):
        sel = KHopRandomSelector(k=1)
        labels = label_map_for(tiny_graph, tiny_split.labeled)
        for node in tiny_split.queries[:20]:
            allowed = set(k_hop_neighbors(tiny_graph, int(node), 1).tolist())
            chosen = sel.select(tiny_graph, int(node), labels, 4, rng)
            assert all(sn.node in allowed for sn in chosen)

    def test_labeled_preferred(self, tiny_graph, tiny_split, rng):
        sel = KHopRandomSelector(k=2)
        labels = label_map_for(tiny_graph, tiny_split.labeled)
        for node in tiny_split.queries[:30]:
            candidates = k_hop_neighbors(tiny_graph, int(node), 2)
            n_labeled = sum(1 for v in candidates if int(v) in labels)
            chosen = sel.select(tiny_graph, int(node), labels, 4, rng)
            chosen_labeled = sum(1 for sn in chosen if sn.label is not None)
            assert chosen_labeled == min(4, n_labeled)

    def test_no_duplicates(self, tiny_graph, tiny_split, rng):
        sel = KHopRandomSelector(k=2)
        labels = label_map_for(tiny_graph, tiny_split.labeled)
        for node in tiny_split.queries[:20]:
            chosen = [sn.node for sn in sel.select(tiny_graph, int(node), labels, 6, rng)]
            assert len(chosen) == len(set(chosen))

    def test_labels_attached_correctly(self, tiny_graph, tiny_split, rng):
        sel = KHopRandomSelector(k=1)
        labels = label_map_for(tiny_graph, tiny_split.labeled)
        for node in tiny_split.queries[:20]:
            for sn in sel.select(tiny_graph, int(node), labels, 4, rng):
                assert sn.label == labels.get(sn.node)

    def test_zero_max_neighbors(self, tiny_graph, tiny_split, rng):
        sel = KHopRandomSelector(k=1)
        assert sel.select(tiny_graph, int(tiny_split.queries[0]), {}, 0, rng) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KHopRandomSelector(k=0)


class TestSNS:
    def test_prefers_labeled(self, tiny_graph, tiny_split, rng):
        sel = SNSSelector()
        labels = label_map_for(tiny_graph, tiny_split.labeled)
        found_any = False
        for node in tiny_split.queries[:30]:
            chosen = sel.select(tiny_graph, int(node), labels, 4, rng)
            if chosen and all(sn.label is not None for sn in chosen):
                found_any = True
        assert found_any

    def test_similarity_ordering(self, tiny_graph, tiny_split, rng):
        """Selected neighbors arrive most-similar-first."""
        from repro.text.similarity import cosine_similarity

        sel = SNSSelector()
        labels = label_map_for(tiny_graph, tiny_split.labeled)
        for node in tiny_split.queries[:20]:
            chosen = sel.select(tiny_graph, int(node), labels, 4, rng)
            if len(chosen) < 2 or any(sn.label is None for sn in chosen):
                continue
            sims = [
                cosine_similarity(tiny_graph.features[int(node)], tiny_graph.features[sn.node])
                for sn in chosen
            ]
            assert all(sims[i] >= sims[i + 1] - 1e-9 for i in range(len(sims) - 1))

    def test_fallback_to_unlabeled_one_hop(self, tiny_graph, tiny_split, rng):
        sel = SNSSelector()
        node = int(tiny_split.queries[0])
        chosen = sel.select(tiny_graph, node, {}, 4, rng)  # nothing labeled anywhere
        one_hop = set(k_hop_neighbors(tiny_graph, node, 1).tolist())
        assert all(sn.node in one_hop for sn in chosen)
        assert all(sn.label is None for sn in chosen)

    def test_deterministic_given_rng_seed(self, tiny_graph, tiny_split):
        sel = SNSSelector()
        labels = label_map_for(tiny_graph, tiny_split.labeled)
        node = int(tiny_split.queries[1])
        a = sel.select(tiny_graph, node, labels, 4, spawn_rng(1, "s"))
        b = sel.select(tiny_graph, node, labels, 4, spawn_rng(1, "s"))
        assert a == b

    def test_invalid_hops(self):
        with pytest.raises(ValueError):
            SNSSelector(max_hops=0)


class TestRegistry:
    @pytest.mark.parametrize("name", METHOD_NAMES)
    def test_known_methods(self, name):
        make_selector(name)

    def test_aliases(self):
        assert isinstance(make_selector("1hop"), KHopRandomSelector)
        assert isinstance(make_selector("zero-shot"), VanillaSelector)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_selector("3-hop")

    def test_sns_flagged_similarity_ranked(self):
        assert make_selector("sns").similarity_ranked
        assert not make_selector("1-hop").similarity_ranked
