"""Tests for the multi-tenant serving layer (admission, fairness, budgets)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.budget import BudgetLedger, LedgerBook
from repro.llm.reliability import SimulatedClock
from repro.obs import Instrumentation
from repro.runtime.fallback import DegradationLadder
from repro.runtime.results import OUTCOME_TIERS
from repro.runtime.serve import (
    ADMISSION_DECISIONS,
    SERVE_STATUSES,
    AdmissionPolicy,
    ServeOutcome,
    ServeRequest,
    ServingLayer,
    TenantSpec,
    load_requests,
    save_requests,
    synthetic_stream,
)

REJECT_TIERS = tuple(d for d in ADMISSION_DECISIONS if d.startswith("rejected"))
DEGRADED_TIERS = ("degraded_pruned", "degraded_surrogate", "abstained")


class _StubSurrogate:
    """Always predicts class 0 with full confidence."""

    def __init__(self, num_classes: int):
        self.num_classes = num_classes

    def predict_proba(self, nodes):
        probs = np.zeros((len(nodes), self.num_classes))
        probs[:, 0] = 1.0
        return probs


def make_layer(make_tiny_engine, tenants, policy=None, ladder=None, **kwargs):
    engine = make_tiny_engine(clock=SimulatedClock(), ladder=ladder)
    return ServingLayer(engine, tenants, policy=policy, **kwargs)


def full_cost(engine, node: int, reserve: int = 32) -> int:
    prompt, _ = engine.build_prompt(node, include_neighbors=True)
    return engine.llm.tokenizer.count(prompt) + reserve


def pruned_cost(engine, node: int, reserve: int = 32) -> int:
    prompt, _ = engine.build_prompt(node, include_neighbors=False)
    return engine.llm.tokenizer.count(prompt) + reserve


def requests_at_zero(tenants: list[str], per_tenant: int, nodes) -> list[ServeRequest]:
    """``per_tenant`` requests for each tenant, interleaved, all at t=0."""
    nodes = [int(v) for v in nodes]
    out = []
    for i in range(per_tenant):
        for j, tenant in enumerate(tenants):
            out.append(ServeRequest(tenant, nodes[(i * len(tenants) + j) % len(nodes)]))
    return out


class TestValidation:
    def test_request_rejects_negative_arrival(self):
        with pytest.raises(ValueError, match="arrival"):
            ServeRequest("a", 1, arrival=-1.0)

    def test_tenant_spec_validation(self):
        with pytest.raises(ValueError, match="name"):
            TenantSpec("")
        with pytest.raises(ValueError, match="weight"):
            TenantSpec("a", weight=0)
        with pytest.raises(ValueError, match="max_queue_depth"):
            TenantSpec("a", max_queue_depth=0)

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="wave_quota"):
            AdmissionPolicy(wave_quota=0)
        with pytest.raises(ValueError, match="completion_reserve"):
            AdmissionPolicy(completion_reserve=-1)
        with pytest.raises(ValueError, match="degrade_watermark"):
            AdmissionPolicy(degrade_watermark=0)
        with pytest.raises(ValueError, match="shed_watermark"):
            AdmissionPolicy(degrade_watermark=8, shed_watermark=4)

    def test_outcome_rejects_unknown_status(self):
        with pytest.raises(ValueError, match="status"):
            ServeOutcome(
                request=ServeRequest("a", 1),
                status="vanished",
                tier="ok",
                record=None,
                queued_at=None,
                dispatched_at=None,
                completed_at=0.0,
            )

    def test_layer_requires_tenants(self, make_tiny_engine):
        with pytest.raises(ValueError, match="tenant"):
            make_layer(make_tiny_engine, [])

    def test_layer_rejects_duplicate_tenants(self, make_tiny_engine):
        with pytest.raises(ValueError, match="unique"):
            make_layer(make_tiny_engine, [TenantSpec("a"), TenantSpec("a")])

    def test_layer_rejects_engine_with_ledger(self, make_tiny_engine):
        engine = make_tiny_engine(clock=SimulatedClock())
        engine.ledger = BudgetLedger(budget=100)
        with pytest.raises(ValueError, match="ledger"):
            ServingLayer(engine, [TenantSpec("a")])

    def test_admit_unknown_tenant_raises(self, make_tiny_engine):
        layer = make_layer(make_tiny_engine, [TenantSpec("a")])
        with pytest.raises(KeyError, match="ghost"):
            layer.admit(ServeRequest("ghost", 1))


class TestLedgerBook:
    def test_unknown_tenant_raises(self):
        book = LedgerBook({"a": BudgetLedger(budget=10)})
        with pytest.raises(KeyError):
            book.ledger("b")

    def test_tenant_and_global_limits_both_bind(self):
        book = LedgerBook(
            {"a": BudgetLedger(budget=10), "b": BudgetLedger(budget=100)},
            global_ledger=BudgetLedger(budget=15),
        )
        assert book.would_exceed("a", 11)
        assert not book.would_exceed("b", 14)
        assert book.would_exceed("b", 16)  # global ceiling, not b's own
        book.charge("a", 10)
        assert book.exhausted("a")
        assert not book.exhausted("b")
        assert book.would_exceed("b", 6)  # 10 of the global 15 already spent
        book.charge("b", 5)
        assert book.exhausted("b")  # global ledger dry

    def test_usd_exhaustion_counts(self):
        book = LedgerBook({"a": BudgetLedger(cost_budget_usd=0.01)})
        assert book.would_exceed("a", 0, usd=0.02)
        book.charge("a", 5, usd=0.01)
        assert book.exhausted("a")

    def test_snapshot_includes_global(self):
        book = LedgerBook(
            {"a": BudgetLedger(budget=10)}, global_ledger=BudgetLedger(budget=20)
        )
        book.charge("a", 3, usd=0.001)
        snap = book.snapshot()
        assert snap["a"] == (3, 1, 0.001)
        assert snap["__global__"] == (3, 1, 0.001)
        assert "__global__" not in LedgerBook({"a": BudgetLedger()}).snapshot()


class TestAdmission:
    def test_queue_full_rejects(self, make_tiny_engine, tiny_split):
        layer = make_layer(make_tiny_engine, [TenantSpec("a", max_queue_depth=2)])
        nodes = [int(v) for v in tiny_split.queries[:3]]
        assert layer.admit(ServeRequest("a", nodes[0])) is None
        assert layer.admit(ServeRequest("a", nodes[1])) is None
        outcome = layer.admit(ServeRequest("a", nodes[2]))
        assert outcome is not None
        assert outcome.status == "rejected"
        assert outcome.tier == "rejected_queue_full"
        assert outcome.cycle is None and outcome.record is None

    def test_shed_watermark_rejects_globally(self, make_tiny_engine, tiny_split):
        layer = make_layer(
            make_tiny_engine,
            [TenantSpec("a"), TenantSpec("b")],
            policy=AdmissionPolicy(shed_watermark=2),
        )
        nodes = [int(v) for v in tiny_split.queries[:3]]
        assert layer.admit(ServeRequest("a", nodes[0])) is None
        assert layer.admit(ServeRequest("a", nodes[1])) is None
        outcome = layer.admit(ServeRequest("b", nodes[2]))  # b's queue is empty
        assert outcome is not None and outcome.tier == "rejected_overload"

    def test_degrade_watermark_pins_zero_shot(self, make_tiny_engine, tiny_split):
        layer = make_layer(
            make_tiny_engine,
            [TenantSpec("a")],
            policy=AdmissionPolicy(degrade_watermark=1, wave_quota=8),
        )
        nodes = [int(v) for v in tiny_split.queries[:4]]
        report = layer.replay([ServeRequest("a", n) for n in nodes])
        assert [o.status for o in report.outcomes] == [
            "served",
            "degraded",
            "degraded",
            "degraded",
        ]
        for outcome in report.outcomes[1:]:
            assert outcome.tier == "degraded_pruned"
            assert outcome.record is not None and outcome.record.pruned
            assert outcome.answered  # degraded is still goodput

    def test_dry_tenant_rejected_at_admission(self, make_tiny_engine):
        layer = make_layer(make_tiny_engine, [TenantSpec("a", token_budget=50)])
        layer.book.charge("a", 50)
        outcome = layer.admit(ServeRequest("a", 1))
        assert outcome is not None and outcome.tier == "rejected_budget"

    def test_admissions_reported_to_observer(self, make_tiny_engine, tiny_split):
        instr = Instrumentation(run_id="serve-test")
        layer = make_layer(
            make_tiny_engine,
            [TenantSpec("a", max_queue_depth=1)],
            observer=instr,
        )
        nodes = [int(v) for v in tiny_split.queries[:2]]
        layer.admit(ServeRequest("a", nodes[0]))
        layer.admit(ServeRequest("a", nodes[1]))
        families = instr.registry.snapshot()["families"]
        counts = {
            tuple(sorted(entry["labels"].items())): entry["value"]
            for entry in families["repro_serve_admissions_total"]["series"]
        }
        assert counts[(("decision", "admitted"), ("tenant", "a"))] == 1
        assert counts[(("decision", "rejected_queue_full"), ("tenant", "a"))] == 1


class TestFairness:
    def test_weighted_drr_shares(self, make_tiny_engine, tiny_split):
        layer = make_layer(
            make_tiny_engine,
            [TenantSpec("alpha", weight=2), TenantSpec("beta", weight=1)],
            policy=AdmissionPolicy(wave_quota=3),
        )
        stream = requests_at_zero(["alpha", "beta"], 12, tiny_split.queries)
        report = layer.replay(stream)
        # While both tenants are backlogged every cycle serves 2 alpha + 1
        # beta — the 2:1 weights, not the 1:1 arrival mix.
        for cycle in range(6):
            tenants = [
                o.request.tenant for o in report.outcomes if o.cycle == cycle
            ]
            assert tenants.count("alpha") == 2
            assert tenants.count("beta") == 1

    def test_no_tenant_starves(self, make_tiny_engine, tiny_split):
        tenants = [
            TenantSpec("alpha", weight=3),
            TenantSpec("beta", weight=1),
            TenantSpec("gamma", weight=1),
        ]
        layer = make_layer(
            make_tiny_engine, tenants, policy=AdmissionPolicy(wave_quota=2)
        )
        report = layer.replay(
            requests_at_zero([t.name for t in tenants], 8, tiny_split.queries)
        )
        assert all(o.cycle is not None for o in report.outcomes)
        # Everyone is backlogged from cycle 0 to their last service; the DRR
        # rotation bounds any wait at len(tenants) cycles.
        for spec in tenants:
            cycles = sorted(
                o.cycle for o in report.outcomes if o.request.tenant == spec.name
            )
            assert cycles[0] < len(tenants)
            assert all(gap <= len(tenants) for gap in np.diff(np.asarray(cycles)))


class TestBudgetGate:
    def test_falls_back_to_pruned_prompt(self, make_tiny_engine, tiny_split):
        probe = make_tiny_engine()
        node = int(tiny_split.queries[0])
        budget = (full_cost(probe, node) + pruned_cost(probe, node)) / 2
        layer = make_layer(make_tiny_engine, [TenantSpec("a", token_budget=budget)])
        report = layer.replay([ServeRequest("a", node)])
        (outcome,) = report.outcomes
        assert outcome.status == "degraded"
        assert outcome.tier == "degraded_pruned"
        assert outcome.record.pruned and outcome.answered

    def test_falls_back_to_surrogate(self, make_tiny_engine, tiny_graph, tiny_split):
        ladder = DegradationLadder(
            surrogate=_StubSurrogate(len(tiny_graph.class_names))
        )
        layer = make_layer(
            make_tiny_engine, [TenantSpec("a", token_budget=1)], ladder=ladder
        )
        report = layer.replay([ServeRequest("a", int(tiny_split.queries[0]))])
        (outcome,) = report.outcomes
        assert outcome.status == "degraded"
        assert outcome.tier == "degraded_surrogate"
        assert outcome.answered and outcome.record.total_tokens == 0
        assert layer.book.ledger("a").spent == 0

    def test_abstains_without_surrogate(self, make_tiny_engine, tiny_split):
        layer = make_layer(
            make_tiny_engine,
            [TenantSpec("a", token_budget=1)],
            ladder=DegradationLadder(),
        )
        report = layer.replay([ServeRequest("a", int(tiny_split.queries[0]))])
        (outcome,) = report.outcomes
        assert outcome.tier == "abstained" and not outcome.answered
        assert report.goodput == 0

    def test_rejects_when_no_ladder(self, make_tiny_engine, tiny_split):
        layer = make_layer(make_tiny_engine, [TenantSpec("a", token_budget=1)])
        report = layer.replay([ServeRequest("a", int(tiny_split.queries[0]))])
        (outcome,) = report.outcomes
        assert outcome.status == "rejected"
        assert outcome.tier == "rejected_budget"
        assert outcome.cycle is not None  # rejected at dispatch, not admission

    def test_usd_budget_binds(self, make_tiny_engine, tiny_split):
        # A dollar budget priced below one gpt-3.5 call forces the ladder
        # even though the token budget is unlimited.
        layer = make_layer(
            make_tiny_engine,
            [TenantSpec("a", usd_budget=1e-07)],
            ladder=DegradationLadder(),
            price_model="gpt-3.5",
        )
        report = layer.replay([ServeRequest("a", int(tiny_split.queries[0]))])
        assert report.outcomes[0].tier == "abstained"
        assert layer.book.ledger("a").spent_usd <= 1e-07

    def test_global_ceiling_spans_tenants(self, make_tiny_engine, tiny_split):
        probe = make_tiny_engine()
        nodes = [int(v) for v in tiny_split.queries[:6]]
        per_full = max(full_cost(probe, n) for n in nodes)
        layer = make_layer(
            make_tiny_engine,
            [TenantSpec("a"), TenantSpec("b")],
            ladder=DegradationLadder(),
            global_budget=2.5 * per_full,
        )
        stream = [ServeRequest("a" if i % 2 == 0 else "b", n) for i, n in enumerate(nodes)]
        report = layer.replay(stream)
        assert layer.book.global_ledger.spent <= 2.5 * per_full
        assert any(o.tier in ("abstained", "degraded_pruned") for o in report.outcomes)


class TestOverloadGracefulDegradation:
    """The acceptance sweep, at unit-test scale on the tiny graph."""

    ADMISSIBLE = 12

    def run_at(self, make_tiny_engine, tiny_split, multiplier: float):
        probe = make_tiny_engine()
        sample = [int(v) for v in tiny_split.queries[:16]]
        avg_full = float(np.mean([full_cost(probe, n) for n in sample]))
        # 25% slack over the exact average absorbs per-node cost variance and
        # the weight-proportional randomness of tenant draws at 1x load.
        per_tenant = 1.25 * self.ADMISSIBLE * avg_full / 4.0
        tenants = [
            TenantSpec("alpha", weight=2, token_budget=2 * per_tenant),
            TenantSpec("beta", weight=1, token_budget=per_tenant),
            TenantSpec("gamma", weight=1, token_budget=per_tenant),
        ]
        layer = make_layer(
            make_tiny_engine,
            tenants,
            policy=AdmissionPolicy(wave_quota=4),
            ladder=DegradationLadder(),
        )
        offered = int(multiplier * self.ADMISSIBLE)
        stream = synthetic_stream(tenants, tiny_split.queries, offered, seed=23)
        return layer.replay(stream), layer, tenants

    def test_goodput_survives_2x_overload(self, make_tiny_engine, tiny_split):
        baseline, _, _ = self.run_at(make_tiny_engine, tiny_split, 1.0)
        overloaded, layer, tenants = self.run_at(make_tiny_engine, tiny_split, 2.0)
        # At 1x the budgets absorb everything, mostly at full fidelity.
        assert baseline.goodput == self.ADMISSIBLE
        assert baseline.status_counts["served"] >= self.ADMISSIBLE // 2
        # At 2x goodput holds at or above the admitted capacity: the excess
        # degrades to cheaper rungs instead of collapsing throughput.
        assert overloaded.goodput >= baseline.goodput
        assert overloaded.status_counts["degraded"] > 0
        # No tenant overdraws its ledger.
        for spec in tenants:
            assert layer.book.ledger(spec.name).spent <= spec.token_budget
        # Every degraded/rejected request carries an explicit outcome tier.
        for outcome in overloaded.outcomes:
            assert outcome.status in SERVE_STATUSES
            if outcome.status == "served":
                assert outcome.tier in ("ok", "retried")
            elif outcome.status == "degraded":
                assert outcome.tier in DEGRADED_TIERS
            else:
                assert outcome.tier in REJECT_TIERS
        assert sum(overloaded.tier_counts.values()) == overloaded.num_requests

    def test_report_aggregates_are_consistent(self, make_tiny_engine, tiny_split):
        report, _, _ = self.run_at(make_tiny_engine, tiny_split, 2.0)
        summaries = report.tenant_summaries()
        assert sum(s.submitted for s in summaries.values()) == report.num_requests
        assert sum(s.answered for s in summaries.values()) == report.goodput
        statuses = report.status_counts
        assert sum(statuses.values()) == report.num_requests
        for summary in summaries.values():
            assert summary.served + summary.degraded + summary.rejected == summary.submitted
            assert summary.percentile(99) >= summary.percentile(50) >= 0.0
        assert report.latency_percentile(99) >= report.latency_percentile(50)


class TestStreams:
    def test_save_load_roundtrip(self, tmp_path):
        stream = [
            ServeRequest("a", 3, arrival=0.5),
            ServeRequest("b", 7, include_neighbors=False),
        ]
        path = save_requests(stream, tmp_path / "stream.jsonl")
        assert load_requests(path) == stream

    def test_load_rejects_unknown_fields(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"tenant": "a", "node": 1, "priority": 9}\n')
        with pytest.raises(ValueError, match="priority"):
            load_requests(path)

    def test_synthetic_stream_is_deterministic(self, tiny_split):
        tenants = [TenantSpec("a", weight=2), TenantSpec("b")]
        one = synthetic_stream(tenants, tiny_split.queries, 30, arrival_window=5, seed=4)
        two = synthetic_stream(tenants, tiny_split.queries, 30, arrival_window=5, seed=4)
        assert one == two
        assert one != synthetic_stream(
            tenants, tiny_split.queries, 30, arrival_window=5, seed=5
        )

    def test_synthetic_stream_shape(self, tiny_split):
        tenants = [TenantSpec("a", weight=3), TenantSpec("b", weight=1)]
        stream = synthetic_stream(
            tenants, tiny_split.queries, 200, arrival_window=10, seed=0
        )
        arrivals = [r.arrival for r in stream]
        assert arrivals == sorted(arrivals)
        assert all(0 <= a <= 10 for a in arrivals)
        by_tenant = [r.tenant for r in stream]
        assert by_tenant.count("a") > by_tenant.count("b")  # 3:1 weights
        with pytest.raises(ValueError, match="num_requests"):
            synthetic_stream(tenants, tiny_split.queries, 0)


class TestSurrogateQuery:
    def test_requires_ladder(self, make_tiny_engine):
        engine = make_tiny_engine()
        with pytest.raises(ValueError, match="ladder"):
            engine.surrogate_query(1)

    def test_abstains_without_surrogate(self, make_tiny_engine, tiny_split):
        engine = make_tiny_engine(ladder=DegradationLadder())
        record = engine.surrogate_query(int(tiny_split.queries[0]))
        assert record.outcome == "abstained"
        assert record.outcome in OUTCOME_TIERS
        assert record.predicted_label is None
        assert record.prompt_tokens == 0 and record.completion_tokens == 0

    def test_surrogate_answers(self, make_tiny_engine, tiny_graph, tiny_split):
        engine = make_tiny_engine(
            ladder=DegradationLadder(
                surrogate=_StubSurrogate(len(tiny_graph.class_names))
            )
        )
        record = engine.surrogate_query(int(tiny_split.queries[0]))
        assert record.outcome == "degraded_surrogate"
        assert record.predicted_label == 0
        assert record.confidence == 1.0
