"""Serving-layer serial-vs-scheduled equivalence.

The serving layer inherits the scheduler's contract: with simulated
dispatch, a batched wave must be **bit-identical** to serial execution —
same outcomes, same ledger book, same trace spans, same metrics (minus the
``repro_scheduler_*`` families).  Thread dispatch is outcomes/ledger-equal
only.  Replays of the same stream on a fresh identical stack must also be
bit-identical (the replay-exactness acceptance criterion).
"""

from __future__ import annotations

import pytest

from repro.runtime.scheduler import QueryScheduler

from tests.equivalence import (
    ServeScenario,
    assert_serve_equivalent,
    run_serve_scenario,
)

SCENARIOS = {
    "plain": ServeScenario(),
    "single-tenant": ServeScenario(num_tenants=1, num_requests=10),
    "budgeted": ServeScenario(token_budget=1200.0, num_requests=20),
    "usd-budgeted": ServeScenario(usd_budget=0.003, num_requests=14),
    "global-ceiling": ServeScenario(global_budget=2500.0, num_requests=20),
    "watermarked": ServeScenario(
        degrade_watermark=4, shed_watermark=8, num_requests=24
    ),
    "arrival-window": ServeScenario(arrival_window=6.0, num_requests=20),
    "no-ladder": ServeScenario(use_ladder=False, token_budget=900.0),
    "tight-waves": ServeScenario(wave_quota=1, num_requests=12),
    "everything": ServeScenario(
        num_tenants=4,
        num_requests=28,
        arrival_window=4.0,
        token_budget=900.0,
        global_budget=2600.0,
        degrade_watermark=5,
        shed_watermark=12,
        seed=3,
    ),
}


def batched_scheduler() -> QueryScheduler:
    return QueryScheduler(max_batch_size=4, max_concurrency=3)


class TestSimulatedDispatchBitIdentical:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scheduled_serve_matches_serial(
        self, name, tiny_tag, tiny_split, tiny_builder
    ):
        scenario = SCENARIOS[name]
        serial = run_serve_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        batched = run_serve_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder, scheduler=batched_scheduler()
        )
        assert_serve_equivalent(serial, batched)

    def test_replay_exactness_same_stream_same_bits(
        self, tiny_tag, tiny_split, tiny_builder
    ):
        scenario = SCENARIOS["everything"]
        first = run_serve_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder, scheduler=batched_scheduler()
        )
        second = run_serve_scenario(
            scenario, tiny_tag, tiny_split, tiny_builder, scheduler=batched_scheduler()
        )
        assert_serve_equivalent(first, second)
        # Bit-for-bit including the scheduler's own metric families.
        assert second.metrics == first.metrics
        assert second.trace == first.trace


class TestThreadDispatchOutcomeEqual:
    def test_thread_serve_matches_serial_outcomes(
        self, tiny_tag, tiny_split, tiny_builder
    ):
        # Thread-mode calls interleave on the shared simulated clock, so the
        # scenario drops per-call latency to keep outcome stamps comparable.
        scenario = ServeScenario(
            num_requests=20, token_budget=1500.0, seconds_per_call=0.0
        )
        serial = run_serve_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        threaded = run_serve_scenario(
            scenario,
            tiny_tag,
            tiny_split,
            tiny_builder,
            scheduler=QueryScheduler(
                max_batch_size=4, max_concurrency=3, mode="threads"
            ),
        )
        assert_serve_equivalent(serial, threaded, compare_traces=False)
