"""Property-based invariants of the serving layer.

Two promises hold for *every* configuration, not just the hand-picked ones:

- **Budget safety** — no tenant's ledger ever exceeds its token or dollar
  budget, and the global ceiling is never overdrawn, whatever the offered
  load, watermarks or wave shape.
- **Fairness** — the deficit-round-robin dispatcher starves no tenant with
  a non-empty queue: when everyone is backlogged from t=0, each tenant is
  first served within ``len(tenants)`` cycles and never waits more than
  ``len(tenants)`` cycles between services.

Scenarios are drawn as :class:`~tests.equivalence.ServeScenario` data and
run serially without instrumentation (the equivalence suite already pins
scheduled and observed runs to the serial ones).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime.serve import ADMISSION_DECISIONS, SERVE_STATUSES

from tests.equivalence import ServeScenario, run_serve_scenario

SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

REJECT_TIERS = tuple(d for d in ADMISSION_DECISIONS if d.startswith("rejected"))

scenarios = st.builds(
    ServeScenario,
    num_requests=st.integers(min_value=1, max_value=24),
    num_tenants=st.integers(min_value=1, max_value=4),
    arrival_window=st.sampled_from([0.0, 3.0]),
    token_budget=st.sampled_from([None, 150.0, 700.0, 2000.0]),
    usd_budget=st.sampled_from([None, 0.001, 0.01]),
    global_budget=st.sampled_from([None, 1200.0]),
    degrade_watermark=st.sampled_from([None, 2, 6]),
    shed_watermark=st.sampled_from([None, 8]),
    wave_quota=st.integers(min_value=1, max_value=6),
    use_ladder=st.booleans(),
    seconds_per_call=st.just(0.0),
    observe=st.just(False),
    seed=st.integers(min_value=0, max_value=5),
)


class TestBudgetSafety:
    @given(scenario=scenarios)
    @settings(**SETTINGS)
    def test_no_ledger_ever_overdrawn(
        self, tiny_tag, tiny_split, tiny_builder, scenario
    ):
        capture = run_serve_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        book = capture.report.book
        for spec in capture.tenants:
            ledger = book.ledger(spec.name)
            if spec.token_budget is not None:
                assert ledger.spent <= spec.token_budget
            if spec.usd_budget is not None:
                assert ledger.spent_usd <= spec.usd_budget
        if scenario.global_budget is not None:
            assert book.global_ledger.spent <= scenario.global_budget

    @given(scenario=scenarios)
    @settings(**SETTINGS)
    def test_every_request_settles_with_explicit_tier(
        self, tiny_tag, tiny_split, tiny_builder, scenario
    ):
        capture = run_serve_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        outcomes = capture.report.outcomes
        assert len(outcomes) == scenario.num_requests
        for outcome in outcomes:
            assert outcome.status in SERVE_STATUSES
            if outcome.status == "served":
                assert outcome.tier in ("ok", "retried")
            elif outcome.status == "degraded":
                assert outcome.tier in (
                    "degraded_pruned",
                    "degraded_surrogate",
                    "abstained",
                )
            else:
                assert outcome.tier in REJECT_TIERS
            if outcome.answered:
                assert outcome.status != "rejected"


class TestFairness:
    @given(
        num_tenants=st.integers(min_value=1, max_value=4),
        per_tenant=st.integers(min_value=2, max_value=8),
        wave_quota=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=3),
    )
    @settings(**SETTINGS)
    def test_no_backlogged_tenant_starves(
        self, tiny_tag, tiny_split, tiny_builder, num_tenants, per_tenant, wave_quota, seed
    ):
        # All arrivals at t=0 and no budgets/watermarks: every tenant stays
        # backlogged from cycle 0 until its last service, so its service
        # cycles expose the dispatcher's worst-case wait directly.
        scenario = ServeScenario(
            num_requests=num_tenants * per_tenant,
            num_tenants=num_tenants,
            wave_quota=wave_quota,
            seconds_per_call=0.0,
            observe=False,
            seed=seed,
        )
        capture = run_serve_scenario(scenario, tiny_tag, tiny_split, tiny_builder)
        outcomes = capture.report.outcomes
        assert all(o.cycle is not None for o in outcomes)
        submitted = {o.request.tenant for o in outcomes}
        for tenant in submitted:
            cycles = sorted(o.cycle for o in outcomes if o.request.tenant == tenant)
            # The rotation makes every tenant dispatch-head once per
            # ``num_tenants`` cycles, and a backlogged head is always served.
            assert cycles[0] < num_tenants, (
                "tenant waited past the rotation bound for first service"
            )
            gaps = [b - a for a, b in zip(cycles, cycles[1:])]
            assert all(gap <= num_tenants for gap in gaps), (
                f"tenant {tenant} waited {max(gaps)} cycles between services"
            )
