"""Tests for cosine-similarity ranking utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.text.similarity import cosine_similarity, pairwise_cosine, top_k_similar


class TestCosine:
    def test_identical_vectors(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_opposite(self):
        assert cosine_similarity(np.array([1.0]), np.array([-1.0])) == pytest.approx(-1.0)

    def test_zero_vector(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            cosine_similarity(np.ones(2), np.ones(3))

    @given(
        arrays(np.float64, 4, elements=st.floats(-5, 5)),
        arrays(np.float64, 4, elements=st.floats(-5, 5)),
    )
    def test_bounded(self, a, b):
        assert -1.0 - 1e-9 <= cosine_similarity(a, b) <= 1.0 + 1e-9


class TestPairwise:
    def test_matches_scalar_cosine(self):
        q = np.array([1.0, 2.0, 0.0])
        cands = np.array([[1.0, 2.0, 0.0], [0.0, 0.0, 1.0], [2.0, 4.0, 0.0]])
        sims = pairwise_cosine(q, cands)
        for i in range(3):
            assert sims[i] == pytest.approx(cosine_similarity(q, cands[i]))

    def test_zero_rows_get_zero(self):
        sims = pairwise_cosine(np.ones(2), np.zeros((3, 2)))
        assert (sims == 0).all()

    def test_zero_query(self):
        sims = pairwise_cosine(np.zeros(2), np.ones((3, 2)))
        assert (sims == 0).all()

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            pairwise_cosine(np.ones(2), np.ones((3, 4)))


class TestTopK:
    def test_orders_by_similarity(self):
        q = np.array([1.0, 0.0])
        cands = np.array([[0.0, 1.0], [1.0, 0.1], [1.0, 0.0]])
        order = top_k_similar(q, cands, k=3)
        assert list(order) == [2, 1, 0]

    def test_k_truncates(self):
        q = np.ones(2)
        cands = np.eye(2)
        assert top_k_similar(q, cands, k=1).shape == (1,)

    def test_k_larger_than_candidates(self):
        q = np.ones(2)
        cands = np.eye(2)
        assert top_k_similar(q, cands, k=10).shape == (2,)

    def test_ties_broken_by_index(self):
        q = np.array([1.0, 0.0])
        cands = np.array([[2.0, 0.0], [1.0, 0.0]])
        assert list(top_k_similar(q, cands, k=2)) == [0, 1]

    def test_negative_k(self):
        with pytest.raises(ValueError):
            top_k_similar(np.ones(2), np.eye(2), k=-1)
