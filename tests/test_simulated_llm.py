"""Tests for the simulated black-box LLM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.llm.responses import parse_category_response
from repro.llm.simulated import SimulatedLLM, parse_prompt
from repro.prompts.builder import NeighborEntry, PromptBuilder
from repro.text.vocabulary import ClassVocabulary


@pytest.fixture(scope="module")
def vocab() -> ClassVocabulary:
    return ClassVocabulary.build(["Apple", "Banana", "Cherry"], seed=9, words_per_class=40)


@pytest.fixture(scope="module")
def builder() -> PromptBuilder:
    return PromptBuilder(["Apple", "Banana", "Cherry"])


def class_text(vocab: ClassVocabulary, k: int, n: int = 20) -> str:
    return " ".join(vocab.class_words[k][:n])


class TestParsePrompt:
    def test_roundtrip_with_builder(self, vocab, builder):
        prompt = builder.with_neighbors(
            "my title",
            "my abstract",
            [
                NeighborEntry(title="n0 title", label_name="Apple"),
                NeighborEntry(title="n1 title"),
            ],
        )
        parsed = parse_prompt(prompt)
        assert parsed.target_title == "my title"
        assert parsed.target_abstract == "my abstract"
        assert parsed.neighbor_texts == ("n0 title", "n1 title")
        assert parsed.neighbor_labels == ("Apple", None)
        assert parsed.category_names == ("Apple", "Banana", "Cherry")

    def test_neighbor_abstract_included_in_text(self, vocab, builder):
        prompt = builder.with_neighbors(
            "t", "a", [NeighborEntry(title="nt", abstract="nabs")]
        )
        parsed = parse_prompt(prompt)
        assert parsed.neighbor_texts == ("nt nabs",)

    def test_missing_target_rejected(self):
        with pytest.raises(ValueError, match="Target"):
            parse_prompt("Categories:\n[A]\n")

    def test_missing_categories_rejected(self):
        with pytest.raises(ValueError, match="Categories"):
            parse_prompt("Target paper: Title: t\nAbstract: a\n")


class TestClassification:
    def test_clear_text_classified_correctly(self, vocab, builder):
        llm = SimulatedLLM(vocab, noise_scale=0.01, seed=0)
        for k, name in enumerate(vocab.class_names):
            prompt = builder.zero_shot(f"about {name}", class_text(vocab, k))
            response = llm.complete(prompt)
            assert parse_category_response(response.text, list(vocab.class_names)) == k

    def test_neighbor_labels_shift_prediction(self, vocab, builder):
        """Ambiguous text + strong label votes should follow the labels."""
        llm = SimulatedLLM(vocab, label_weight=2.0, noise_scale=0.01, seed=0)
        mixed = class_text(vocab, 0, 10) + " " + class_text(vocab, 1, 10)
        neighbors = [NeighborEntry(title="n", label_name="Banana") for _ in range(3)]
        prompt = builder.with_neighbors("ambiguous", mixed, neighbors)
        response = llm.complete(prompt)
        assert parse_category_response(response.text, list(vocab.class_names)) == 1

    def test_deterministic_per_node(self, vocab, builder):
        llm = SimulatedLLM(vocab, seed=0)
        prompt = builder.zero_shot("some title", class_text(vocab, 2, 5))
        assert llm.complete(prompt).text == llm.complete(prompt).text

    def test_noise_stable_across_prompt_variants(self, vocab, builder):
        """Same node, different neighbors -> same node noise (paired design)."""
        llm = SimulatedLLM(vocab, seed=0)
        a = llm._node_noise("title x")
        b = llm._node_noise("title x")
        assert np.array_equal(a, b)

    def test_different_models_read_differently(self, vocab, builder):
        a = SimulatedLLM(vocab, name="m1", seed=0)._node_noise("t")
        b = SimulatedLLM(vocab, name="m2", seed=0)._node_noise("t")
        assert not np.array_equal(a, b)

    def test_usage_tracked(self, vocab, builder):
        llm = SimulatedLLM(vocab, seed=0)
        prompt = builder.zero_shot("t", class_text(vocab, 0, 5))
        response = llm.complete(prompt)
        assert llm.usage.num_queries == 1
        assert llm.usage.prompt_tokens == response.prompt_tokens > 0
        assert llm.usage.completion_tokens == response.completion_tokens > 0

    def test_empty_prompt_rejected(self, vocab):
        with pytest.raises(ValueError):
            SimulatedLLM(vocab).complete("")

    def test_unknown_categories_answer_first(self, vocab):
        llm = SimulatedLLM(vocab, seed=0)
        prompt = (
            "Target paper: Title: t\nAbstract: a\n"
            "Task:\nCategories:\n[Zed, Yed]\nWhich category does the target paper belong to?\n"
            "Please output the most likely category as a Python list: Category: ['XX']."
        )
        assert llm.complete(prompt).text == "Category: ['Zed']"


class TestDilution:
    def test_more_neighbors_weaken_text_evidence(self, vocab, builder):
        llm = SimulatedLLM(vocab, dilution_rate=0.2, neighbor_weight=0.0, noise_scale=0.0, seed=0)
        clear = builder.zero_shot("t", class_text(vocab, 0))
        diluted = builder.with_neighbors(
            "t", class_text(vocab, 0), [NeighborEntry(title="x") for _ in range(4)]
        )
        score_clear = llm.score_classes(parse_prompt(clear))
        score_diluted = llm.score_classes(parse_prompt(diluted))
        # Dilution shrinks the top-class score (noise/labels are zero here;
        # keyword-free neighbor titles vote uniformly which we subtract).
        uniform = 0.0  # neighbor_weight=0 -> no vote at all
        assert score_diluted[0] + uniform < score_clear[0]


class TestValidation:
    def test_negative_weight_rejected(self, vocab):
        with pytest.raises(ValueError):
            SimulatedLLM(vocab, label_weight=-0.1)

    def test_bias_size_mismatch(self, vocab):
        from repro.llm.bias import BiasProfile

        with pytest.raises(ValueError, match="bias"):
            SimulatedLLM(vocab, bias=BiasProfile(penalties=np.zeros(5)))
