"""Tests for labeled/query splits."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.splits import LabeledSplit, make_split


class TestMakeSplit:
    def test_per_class_counts(self, tiny_graph):
        split = make_split(tiny_graph, num_queries=50, labeled_per_class=10, seed=0)
        for c in range(tiny_graph.num_classes):
            members = (tiny_graph.labels[split.labeled] == c).sum()
            assert members == min(10, int((tiny_graph.labels == c).sum()))

    def test_disjoint(self, tiny_graph):
        split = make_split(tiny_graph, num_queries=50, labeled_per_class=10, seed=0)
        assert np.intersect1d(split.labeled, split.queries).size == 0

    def test_query_count(self, tiny_graph):
        split = make_split(tiny_graph, num_queries=37, labeled_per_class=5, seed=0)
        assert split.num_queries == 37

    def test_fraction_mode(self, tiny_graph):
        split = make_split(tiny_graph, num_queries=20, labeled_fraction=0.25, seed=0)
        assert split.num_labeled == round(tiny_graph.num_nodes * 0.25)

    def test_deterministic(self, tiny_graph):
        a = make_split(tiny_graph, num_queries=50, labeled_per_class=10, seed=4)
        b = make_split(tiny_graph, num_queries=50, labeled_per_class=10, seed=4)
        assert np.array_equal(a.labeled, b.labeled)
        assert np.array_equal(a.queries, b.queries)

    def test_both_modes_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="exactly one"):
            make_split(tiny_graph, num_queries=10, labeled_per_class=5, labeled_fraction=0.1)

    def test_neither_mode_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="exactly one"):
            make_split(tiny_graph, num_queries=10)

    def test_too_many_queries(self, tiny_graph):
        with pytest.raises(ValueError, match="cannot sample"):
            make_split(tiny_graph, num_queries=10**6, labeled_per_class=1)

    def test_invalid_fraction(self, tiny_graph):
        with pytest.raises(ValueError):
            make_split(tiny_graph, num_queries=10, labeled_fraction=1.0)

    @given(st.integers(min_value=1, max_value=15), st.integers(min_value=1, max_value=40))
    @settings(max_examples=25, deadline=None)
    def test_properties_hold_for_any_sizes(self, tiny_graph, per_class, num_queries):
        split = make_split(tiny_graph, num_queries=num_queries, labeled_per_class=per_class, seed=1)
        assert np.intersect1d(split.labeled, split.queries).size == 0
        assert split.num_queries == num_queries
        assert np.array_equal(split.labeled, np.unique(split.labeled))


class TestLabeledSplit:
    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            LabeledSplit(labeled=np.array([1, 2]), queries=np.array([2, 3]))
