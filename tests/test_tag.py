"""Tests for the TextAttributedGraph container and CSR invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.tag import TextAttributedGraph
from repro.text.corpus import NodeText


def make_graph(num_nodes: int, edges) -> TextAttributedGraph:
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    return TextAttributedGraph.from_edges(
        num_nodes=num_nodes,
        edges=edges,
        labels=np.zeros(num_nodes, dtype=np.int64),
        texts=[NodeText(title=f"t{i}", abstract=f"a{i}") for i in range(num_nodes)],
        features=np.zeros((num_nodes, 3), dtype=np.float32),
        class_names=["only"],
    )


class TestFromEdges:
    def test_symmetric_adjacency(self):
        g = make_graph(4, [(0, 1), (1, 2)])
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(1)) == [0, 2]
        assert list(g.neighbors(2)) == [1]
        assert list(g.neighbors(3)) == []

    def test_counts(self):
        g = make_graph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_nodes == 4
        assert g.num_edges == 3

    def test_degree_vector(self):
        g = make_graph(4, [(0, 1), (1, 2)])
        assert list(g.degree()) == [1, 2, 1, 0]
        assert g.degree(1) == 2

    def test_has_edge(self):
        g = make_graph(3, [(0, 2)])
        assert g.has_edge(0, 2) and g.has_edge(2, 0)
        assert not g.has_edge(0, 1)

    def test_edge_array_roundtrip(self):
        edges = [(0, 1), (1, 3), (2, 3)]
        g = make_graph(4, edges)
        assert sorted(map(tuple, g.edge_array())) == sorted(edges)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="[Ss]elf-loop"):
            make_graph(3, [(1, 1)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            make_graph(3, [(0, 5)])

    def test_empty_graph(self):
        g = make_graph(2, np.empty((0, 2)))
        assert g.num_edges == 0
        assert list(g.neighbors(0)) == []


class TestValidation:
    def test_bad_indptr_length(self):
        with pytest.raises(ValueError, match="indptr"):
            TextAttributedGraph(
                indptr=np.array([0, 0]),
                indices=np.array([], dtype=np.int64),
                labels=np.zeros(2, dtype=np.int64),
                texts=[NodeText("t", "a")] * 2,
                features=np.zeros((2, 1), dtype=np.float32),
                class_names=["only"],
            )

    def test_misaligned_texts(self):
        with pytest.raises(ValueError, match="texts"):
            TextAttributedGraph(
                indptr=np.array([0, 0, 0]),
                indices=np.array([], dtype=np.int64),
                labels=np.zeros(2, dtype=np.int64),
                texts=[NodeText("t", "a")],
                features=np.zeros((2, 1), dtype=np.float32),
                class_names=["only"],
            )

    def test_labels_out_of_range(self):
        with pytest.raises(ValueError, match="labels"):
            TextAttributedGraph(
                indptr=np.array([0, 0]),
                indices=np.array([], dtype=np.int64),
                labels=np.array([5]),
                texts=[NodeText("t", "a")],
                features=np.zeros((1, 1), dtype=np.float32),
                class_names=["only"],
            )


@st.composite
def random_edge_lists(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    pairs = draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).map(
                lambda p: (min(p), max(p))
            ),
            max_size=20,
        )
    )
    edges = [(u, v) for u, v in pairs if u != v]
    return n, edges


class TestCSRProperties:
    @given(random_edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_csr_invariants(self, data):
        n, edges = data
        g = make_graph(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
        # indptr monotone, covers indices
        assert g.indptr[0] == 0 and g.indptr[-1] == len(g.indices)
        assert (np.diff(g.indptr) >= 0).all()
        # neighbor lists sorted, symmetric, no self-loops
        for v in range(n):
            nbrs = g.neighbors(v)
            assert (np.diff(nbrs) > 0).all() if nbrs.size > 1 else True
            assert v not in nbrs
            for u in nbrs:
                assert v in g.neighbors(int(u))
        # edge count preserved
        assert g.num_edges == len(edges)
