"""Tests for the deterministic tokenizer."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenizer import Tokenizer, count_tokens


class TestTokenize:
    def test_simple_words(self):
        assert Tokenizer().tokenize("graph mining") == ["graph", "mining"]

    def test_punctuation_is_tokenized(self):
        tokens = Tokenizer().tokenize("hello, world.")
        assert tokens == ["hello", ",", "world", "."]

    def test_long_words_are_split(self):
        tokens = Tokenizer(max_piece_len=4).tokenize("abcdefghij")
        assert tokens == ["abcd", "efgh", "ij"]

    def test_lowercasing(self):
        assert Tokenizer().tokenize("Graph") == ["graph"]
        assert Tokenizer(lowercase=False).tokenize("Graph") == ["Graph"]

    def test_empty_text(self):
        assert Tokenizer().tokenize("") == []

    def test_invalid_piece_len(self):
        with pytest.raises(ValueError):
            Tokenizer(max_piece_len=0)


class TestWords:
    def test_words_keep_whole_tokens(self):
        words = Tokenizer(max_piece_len=4).words("abcdefghij again")
        assert words == ["abcdefghij", "again"]

    def test_words_skip_punctuation(self):
        assert Tokenizer().words("a, b!") == ["a", "b"]


class TestCount:
    def test_count_matches_tokenize(self):
        t = Tokenizer()
        text = "multi-query optimization for LLMs, 2025."
        assert t.count(text) == len(t.tokenize(text))

    def test_module_level_count(self):
        assert count_tokens("two words") == 2

    @given(st.text(max_size=300))
    def test_deterministic(self, text):
        assert Tokenizer().count(text) == Tokenizer().count(text)

    @given(st.text(max_size=200), st.text(max_size=200))
    def test_concatenation_superadditive_with_space(self, a, b):
        """Tokens of 'a b' >= max(tokens(a), tokens(b)) — joining never loses tokens."""
        t = Tokenizer()
        combined = t.count(f"{a} {b}")
        assert combined >= max(t.count(a), t.count(b))

    @given(st.text(alphabet=st.characters(categories=("Ll", "Nd")), min_size=1, max_size=60))
    def test_alnum_text_tokens_bounded_by_length(self, text):
        assert 1 <= Tokenizer().count(text) <= len(text)
