"""Trace-format compatibility: v1, v2, and v3 files all validate.

Schema v3 (this repo's DAG-dispatch release) added only *optional* span
attributes — ``dag_ready``/``dag_dispatched``/``dag_settled``/
``dag_blocked_by`` on batched query spans, ``dag_pipelined`` on wave spans
— so the validator must keep accepting archived v1 and v2 traces unchanged
while rejecting versions it has never seen.  The committed
``golden_scheduler_trace_v2.jsonl`` pins the last v2 golden byte-for-byte;
the live v3 golden sits beside it.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.obs.schema import (
    SUPPORTED_FORMAT_VERSIONS,
    TraceSchemaError,
    validate_trace_lines,
)
from repro.obs.tracing import TRACE_FORMAT_VERSION
from repro.runtime.scheduler import QueryScheduler

from tests.equivalence import (
    Scenario,
    readiness_attribute_count,
    run_scenario,
    strip_readiness_attributes,
)

DATA = Path(__file__).parent / "data"


def read_jsonl(path: Path) -> list[dict]:
    return [json.loads(line) for line in path.read_text().splitlines() if line.strip()]


def make_v1_trace() -> list[dict]:
    """A minimal v1-era trace: envelope only, no attribute catalogue."""
    header = {
        "kind": "run",
        "format_version": 1,
        "run_id": "v1-run",
        "labels": {"dataset": "tiny"},
        "num_spans": 2,
    }
    spans = [
        {
            "kind": "span",
            "run_id": "v1-run",
            "span_id": "s000001",
            "parent_id": None,
            "name": "query",
            "start": 0.0,
            "end": 1.0,
            "duration": 1.0,
            "status": "ok",
            "attributes": {},  # v1 predates required attributes
        },
        {
            "kind": "span",
            "run_id": "v1-run",
            "span_id": "s000002",
            "parent_id": "s000001",
            "name": "llm_call",
            "start": 0.0,
            "end": 0.5,
            "duration": 0.5,
            "status": "ok",
            "attributes": {},
        },
    ]
    return [header, *spans]


class TestVersionMatrix:
    def test_supported_versions_are_exactly_one_through_current(self):
        assert SUPPORTED_FORMAT_VERSIONS == (1, 2, 3)
        assert TRACE_FORMAT_VERSION == 3

    def test_v1_trace_validates_without_attribute_catalogue(self):
        stats = validate_trace_lines(make_v1_trace())
        assert stats["num_spans"] == 2

    def test_v2_catalogue_applies_from_v2_on(self):
        """The same catalogue-violating span is legal in v1, illegal in v2+."""
        for version in (2, 3):
            lines = make_v1_trace()
            lines[0]["format_version"] = version
            with pytest.raises(TraceSchemaError, match="missing required"):
                validate_trace_lines(lines)

    def test_committed_v2_golden_validates(self):
        lines = read_jsonl(DATA / "golden_scheduler_trace_v2.jsonl")
        assert lines[0]["format_version"] == 2
        stats = validate_trace_lines(lines)
        assert stats["num_spans"] == lines[0]["num_spans"]

    def test_committed_v3_golden_validates(self):
        lines = read_jsonl(DATA / "golden_scheduler_trace.jsonl")
        assert lines[0]["format_version"] == 3
        validate_trace_lines(lines)

    def test_v2_and_v3_goldens_differ_only_in_header_version(self):
        v2 = read_jsonl(DATA / "golden_scheduler_trace_v2.jsonl")
        v3 = read_jsonl(DATA / "golden_scheduler_trace.jsonl")
        assert v2[0]["format_version"] == 2 and v3[0]["format_version"] == 3
        v2_header = dict(v2[0], format_version=3)
        assert [v2_header, *v2[1:]] == v3, (
            "v3 regeneration must be additive; the wave-dispatch golden "
            "changes only its header version"
        )

    def test_unknown_future_version_is_rejected(self):
        lines = make_v1_trace()
        lines[0]["format_version"] = TRACE_FORMAT_VERSION + 1
        with pytest.raises(TraceSchemaError, match="unsupported format_version"):
            validate_trace_lines(lines)


class TestReadinessAttributesAreAdditive:
    def test_live_dag_threads_trace_validates_with_and_without_dag_attrs(
        self, tiny_tag, tiny_split, tiny_builder
    ):
        capture = run_scenario(
            Scenario(strategy="boost", num_queries=12),
            tiny_tag,
            tiny_split,
            tiny_builder,
            scheduler=QueryScheduler(
                max_batch_size=4, max_concurrency=3, mode="threads", dispatch="dag"
            ),
        )
        lines = capture.trace_raw
        assert lines[0]["format_version"] == 3
        assert readiness_attribute_count(lines) > 0, "pipelined run must annotate spans"
        validate_trace_lines(lines)
        # Strictly additive: the same trace with every dag_* attribute
        # removed is still a valid v3 file — no required attribute moved.
        validate_trace_lines(strip_readiness_attributes(copy.deepcopy(lines)))
