"""Tests for deterministic RNG derivation."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import derive_seed, spawn_rng, stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_distinct_parts_distinct_hash(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_order_matters(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_within_63_bits(self):
        assert 0 <= stable_hash("anything") < (1 << 63)

    @given(st.lists(st.text(max_size=20), min_size=1, max_size=5))
    def test_always_in_range(self, parts):
        assert 0 <= stable_hash(*parts) < (1 << 63)


class TestDeriveSeed:
    def test_same_scope_same_seed(self):
        assert derive_seed(7, "x", 1) == derive_seed(7, "x", 1)

    def test_different_base_different_seed(self):
        assert derive_seed(7, "x") != derive_seed(8, "x")

    def test_different_scope_different_seed(self):
        assert derive_seed(7, "x") != derive_seed(7, "y")


class TestSpawnRng:
    def test_reproducible_streams(self):
        a = spawn_rng(3, "stream").random(5)
        b = spawn_rng(3, "stream").random(5)
        assert (a == b).all()

    def test_independent_streams(self):
        a = spawn_rng(3, "one").random(5)
        b = spawn_rng(3, "two").random(5)
        assert (a != b).any()
