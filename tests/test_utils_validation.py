"""Tests for argument-validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.validation import (
    check_fraction,
    check_in,
    check_nonnegative,
    check_positive,
    check_probability_vector,
)


class TestNumericChecks:
    def test_positive_accepts(self):
        check_positive("x", 0.1)

    def test_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)

    def test_nonnegative_accepts_zero(self):
        check_nonnegative("x", 0)

    def test_nonnegative_rejects(self):
        with pytest.raises(ValueError):
            check_nonnegative("x", -1e-9)

    def test_fraction_bounds(self):
        check_fraction("f", 0.0)
        check_fraction("f", 1.0)
        with pytest.raises(ValueError):
            check_fraction("f", 1.0001)
        with pytest.raises(ValueError):
            check_fraction("f", -0.0001)


class TestCheckIn:
    def test_accepts_member(self):
        check_in("mode", "a", {"a", "b"})

    def test_rejects_nonmember(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            check_in("mode", "c", {"a", "b"})


class TestProbabilityVector:
    def test_accepts_valid(self):
        check_probability_vector("p", np.array([0.25, 0.75]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_probability_vector("p", np.array([-0.1, 1.1]))

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            check_probability_vector("p", np.array([0.4, 0.4]))

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="1-D"):
            check_probability_vector("p", np.ones((2, 2)) / 4)
