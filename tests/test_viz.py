"""Tests for ASCII chart rendering."""

from __future__ import annotations

import pytest

from repro.viz.ascii_charts import bar_chart, line_plot, sparkline


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series(self):
        s = sparkline([0, 1, 2, 3])
        assert s[0] == "▁" and s[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestBarChart:
    def test_contains_labels_and_values(self):
        out = bar_chart(["alpha", "b"], [10, 5], width=10)
        assert "alpha" in out and "10" in out and "5" in out

    def test_peak_fills_width(self):
        out = bar_chart(["a", "b"], [10, 5], width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_title_and_unit(self):
        out = bar_chart(["a"], [1], title="T", unit="%")
        assert out.splitlines()[0] == "T"
        assert "1%" in out

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1])

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a", "b"], [1])

    def test_all_zero(self):
        out = bar_chart(["a"], [0])
        assert "█" not in out


class TestLinePlot:
    def test_renders_all_series(self):
        out = line_plot({"ours": [1, 2, 3], "random": [3, 2, 1]}, height=5)
        assert "o" in out and "x" in out
        assert "legend: o=ours   x=random" in out

    def test_height_rows(self):
        out = line_plot({"s": [1, 2]}, height=6)
        rows = [line for line in out.splitlines() if "|" in line]
        assert len(rows) == 6

    def test_x_labels_row(self):
        out = line_plot({"s": [1, 2]}, x_labels=["lo", "hi"], height=3)
        assert out.splitlines()[-2].strip().startswith("l")

    def test_mismatched_series(self):
        with pytest.raises(ValueError):
            line_plot({"a": [1, 2], "b": [1]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_plot({})
        with pytest.raises(ValueError):
            line_plot({"a": []})
