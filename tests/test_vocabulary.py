"""Tests for word synthesis and class vocabularies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.text.vocabulary import ClassVocabulary, WordFactory


class TestWordFactory:
    def test_words_are_unique(self):
        words = WordFactory(seed=1).make_words(500)
        assert len(set(words)) == 500

    def test_deterministic(self):
        assert WordFactory(seed=2).make_words(50) == WordFactory(seed=2).make_words(50)

    def test_different_seeds_differ(self):
        assert WordFactory(seed=1).make_words(50) != WordFactory(seed=2).make_words(50)

    def test_words_are_lowercase_alpha(self):
        for word in WordFactory(seed=3).make_words(100):
            assert word.isalpha() and word == word.lower()

    def test_invalid_syllable_range(self):
        with pytest.raises(ValueError):
            WordFactory(seed=0, min_syllables=3, max_syllables=2)


class TestClassVocabulary:
    def test_build_shapes(self):
        vocab = ClassVocabulary.build(["A", "B", "C"], seed=0, words_per_class=10, background_size=20)
        assert vocab.num_classes == 3
        assert all(len(w) == 10 for w in vocab.class_words)
        assert len(vocab.background_words) == 20

    def test_class_of_word(self):
        vocab = ClassVocabulary.build(["A", "B"], seed=0, words_per_class=5, background_size=5)
        for k, words in enumerate(vocab.class_words):
            for w in words:
                assert vocab.class_of_word(w) == k
        for w in vocab.background_words:
            assert vocab.class_of_word(w) is None
        assert vocab.class_of_word("notaword") is None

    def test_evidence_counts(self):
        vocab = ClassVocabulary.build(["A", "B"], seed=0, words_per_class=5, background_size=5)
        words = [vocab.class_words[0][0]] * 3 + [vocab.class_words[1][0]] + vocab.background_words[:2]
        ev = vocab.evidence(words)
        assert np.array_equal(ev, [3.0, 1.0])

    def test_evidence_empty(self):
        vocab = ClassVocabulary.build(["A", "B"], seed=0)
        assert vocab.evidence([]).sum() == 0

    def test_duplicate_keyword_rejected(self):
        with pytest.raises(ValueError, match="two classes"):
            ClassVocabulary(["A", "B"], [["dup"], ["dup"]], ["bg"])

    def test_background_overlap_rejected(self):
        with pytest.raises(ValueError, match="background"):
            ClassVocabulary(["A"], [["dup"]], ["dup"])

    def test_misaligned_names_rejected(self):
        with pytest.raises(ValueError, match="align"):
            ClassVocabulary(["A", "B"], [["w"]], ["bg"])

    def test_requires_classes(self):
        with pytest.raises(ValueError):
            ClassVocabulary.build([], seed=0)
